//! Pretraining (Section III-B): the standard language-modeling objective
//! (Eq. 1) over unlabeled, permutation-augmented Eulerian sequences.
//!
//! [`pretrain`] is the one-shot entry point; [`PretrainRun`] is the
//! step-wise driver underneath it, which adds crash-safe periodic
//! checkpointing ([`PretrainRun::checkpoint`]) and bit-exact resume
//! ([`PretrainRun::resume`]): a killed run restarted from its last
//! checkpoint reproduces the uninterrupted loss trajectory exactly,
//! because the snapshot carries the parameters, AdamW moments, RNG state,
//! and the in-flight epoch shuffle.

use std::path::Path;

use eva_model::Transformer;
use eva_nn::ckpt::{moments_as_paramsets, restore_moments, CkptError, RngState, TrainCheckpoint};
use eva_nn::{AdamW, CosineSchedule, Tape};
use eva_tokenizer::{TokenId, Tokenizer};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Pretraining hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Optimizer steps.
    pub steps: usize,
    /// Sequences per step.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Warmup steps of the cosine schedule.
    pub warmup: usize,
}

impl Default for PretrainConfig {
    fn default() -> PretrainConfig {
        PretrainConfig {
            steps: 300,
            batch_size: 8,
            lr: 3e-4,
            warmup: 20,
        }
    }
}

/// Pretrain `model` on encoded sequences; returns the per-step training
/// loss curve.
///
/// Unlike typical LM pretraining, every batch row is one *complete*
/// circuit sequence (the paper is explicit about not cropping windows
/// across circuits); rows are right-padded to the batch maximum.
///
/// # Panics
///
/// Panics if `sequences` is empty or a sequence exceeds the model context.
pub fn pretrain<R: Rng + ?Sized>(
    model: &mut Transformer,
    sequences: &[Vec<TokenId>],
    config: &PretrainConfig,
    rng: &mut R,
) -> Vec<f32> {
    let mut run = PretrainRun::new(model, sequences, *config);
    while run.step(rng).is_some() {}
    run.into_losses()
}

/// Trainer-specific resume state stored in the checkpoint's `extra` slot.
/// Everything here is validated against the resuming run, so a checkpoint
/// from a different corpus or config is rejected instead of silently
/// diverging.
#[derive(Serialize, Deserialize)]
struct PretrainExtra {
    kind: String,
    config: PretrainConfig,
    n_sequences: usize,
    windows: Vec<usize>,
    cursor: usize,
    losses: Vec<f32>,
}

const PRETRAIN_KIND: &str = "pretrain";

/// A step-wise pretraining driver over one model and sequence set.
///
/// The cosine schedule spans the *full* `config.steps`, so loss values
/// depend only on the global step index — which is what makes
/// checkpoint/kill/resume reproduce an uninterrupted run bit-exactly.
pub struct PretrainRun<'a> {
    model: &'a mut Transformer,
    sequences: &'a [Vec<TokenId>],
    config: PretrainConfig,
    schedule: CosineSchedule,
    opt: AdamW,
    /// Sequence indices sorted by length (deterministic given `sequences`).
    by_len: Vec<usize>,
    /// Shuffled epoch order of length-bucketed batch windows.
    windows: Vec<usize>,
    cursor: usize,
    losses: Vec<f32>,
}

impl<'a> PretrainRun<'a> {
    /// Start a fresh run at step 0.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty or a sequence exceeds the model
    /// context (same contract as [`pretrain`]).
    pub fn new(
        model: &'a mut Transformer,
        sequences: &'a [Vec<TokenId>],
        config: PretrainConfig,
    ) -> PretrainRun<'a> {
        assert!(!sequences.is_empty(), "no pretraining sequences");
        let max_ctx = model.config().max_seq_len;
        for s in sequences {
            assert!(
                s.len() <= max_ctx,
                "sequence of {} exceeds context {max_ctx}",
                s.len()
            );
        }
        let opt = AdamW::new(config.lr, model.params().tensors());
        let schedule = CosineSchedule {
            base_lr: config.lr,
            warmup: config.warmup as u64,
            total: config.steps as u64,
            min_factor: 0.1,
        };
        // Length-bucketed batching: batches are contiguous windows of the
        // length-sorted order, so padding (and the O(T²) attention cost of
        // the longest row) is not wasted on short sequences. Window starts
        // are shuffled each epoch; `cursor == windows.len()` forces the
        // first shuffle at step 0.
        let mut by_len: Vec<usize> = (0..sequences.len()).collect();
        by_len.sort_by_key(|&i| sequences[i].len());
        let n_windows = sequences.len().div_ceil(config.batch_size);
        let windows: Vec<usize> = (0..n_windows).collect();
        let cursor = windows.len();
        PretrainRun {
            model,
            sequences,
            config,
            schedule,
            opt,
            by_len,
            windows,
            cursor,
            losses: Vec::with_capacity(config.steps),
        }
    }

    /// Resume from the committed checkpoint in `dir`, overwriting `rng`
    /// with the snapshot's RNG state. The model's weights are replaced by
    /// the checkpointed ones, so the caller only needs an
    /// identically-*shaped* model, not identical weights.
    pub fn resume(
        model: &'a mut Transformer,
        sequences: &'a [Vec<TokenId>],
        config: PretrainConfig,
        dir: &Path,
        rng: &mut ChaCha8Rng,
    ) -> Result<PretrainRun<'a>, CkptError> {
        let ck = TrainCheckpoint::load(dir)?;
        let extra: PretrainExtra =
            serde_json::from_value(ck.extra.clone()).map_err(|e| CkptError::Corrupt {
                file: eva_nn::ckpt::TRAIN_MANIFEST_FILE.to_owned(),
                detail: format!("pretrain extra state: {e}"),
            })?;
        if extra.kind != PRETRAIN_KIND {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint kind {:?}, expected {PRETRAIN_KIND:?}",
                    extra.kind
                ),
            });
        }
        if extra.config != config {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint config {:?} differs from requested {:?}",
                    extra.config, config
                ),
            });
        }
        if extra.n_sequences != sequences.len() {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint trained on {} sequences, this corpus has {}",
                    extra.n_sequences,
                    sequences.len()
                ),
            });
        }
        let mut run = PretrainRun::new(model, sequences, config);
        let n_windows = run.windows.len();
        let valid_shuffle = extra.windows.len() == n_windows && extra.cursor <= n_windows && {
            let mut seen = vec![false; n_windows];
            extra
                .windows
                .iter()
                .all(|&w| w < n_windows && !std::mem::replace(&mut seen[w], true))
        };
        if !valid_shuffle {
            return Err(CkptError::Corrupt {
                file: eva_nn::ckpt::TRAIN_MANIFEST_FILE.to_owned(),
                detail: "window order is not a permutation of the batch windows".to_owned(),
            });
        }
        if extra.losses.len() != ck.step as usize || extra.losses.len() > config.steps {
            return Err(CkptError::Corrupt {
                file: eva_nn::ckpt::TRAIN_MANIFEST_FILE.to_owned(),
                detail: format!(
                    "loss history length {} disagrees with step counter {} (of {})",
                    extra.losses.len(),
                    ck.step,
                    config.steps
                ),
            });
        }
        let copied = run.model.params_mut().copy_matching(&ck.params);
        if copied != run.model.params().len() {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint params cover {copied} of {} model tensors",
                    run.model.params().len()
                ),
            });
        }
        let (m, v) = restore_moments(run.model.params(), &ck)?;
        run.opt.restore_state(m, v, ck.opt_step);
        run.windows = extra.windows;
        run.cursor = extra.cursor;
        run.losses = extra.losses;
        *rng = ck.rng.restore();
        Ok(run)
    }

    /// Steps completed so far.
    pub fn completed_steps(&self) -> usize {
        self.losses.len()
    }

    /// Whether all `config.steps` steps have run.
    pub fn is_done(&self) -> bool {
        self.losses.len() >= self.config.steps
    }

    /// Per-step training losses so far.
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }

    /// Consume the run, returning the loss curve.
    pub fn into_losses(self) -> Vec<f32> {
        self.losses
    }

    /// Run one optimizer step; `None` once the run is complete.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f32> {
        if self.is_done() {
            return None;
        }
        let step = self.losses.len();
        if self.cursor >= self.windows.len() {
            self.windows.shuffle(rng);
            self.cursor = 0;
        }
        let w = self.windows[self.cursor];
        self.cursor += 1;
        let lo = w * self.config.batch_size;
        let hi = (lo + self.config.batch_size).min(self.sequences.len());
        let batch: Vec<&Vec<TokenId>> = self.by_len[lo..hi]
            .iter()
            .map(|&i| &self.sequences[i])
            .collect();
        let time = batch
            .iter()
            .map(|s| s.len())
            .max()
            .expect("non-empty batch");
        let mut ids = Vec::with_capacity(batch.len() * time);
        let mut mask = Vec::with_capacity(batch.len() * time);
        for s in &batch {
            ids.extend_from_slice(s);
            mask.extend(std::iter::repeat(true).take(s.len()));
            ids.extend(std::iter::repeat(Tokenizer::PAD).take(time - s.len()));
            mask.extend(std::iter::repeat(false).take(time - s.len()));
        }
        self.opt.lr = self.schedule.lr(step as u64);
        let mut tape = Tape::new();
        let (loss, bound) = self
            .model
            .lm_loss(&mut tape, &ids, batch.len(), time, &mask);
        let loss_value = tape.value(loss).item();
        self.losses.push(loss_value);
        let grads = tape.backward(loss);
        let g = bound.gradients(&grads);
        self.opt.step(self.model.params_mut().tensors_mut(), &g);
        Some(loss_value)
    }

    /// Atomically write a full training snapshot to `dir`. `rng` must be
    /// the generator driving [`PretrainRun::step`].
    pub fn checkpoint(&self, rng: &ChaCha8Rng, dir: &Path) -> Result<(), CkptError> {
        let (opt_m, opt_v) = moments_as_paramsets(self.model.params(), &self.opt);
        let extra = serde_json::to_value(PretrainExtra {
            kind: PRETRAIN_KIND.to_owned(),
            config: self.config,
            n_sequences: self.sequences.len(),
            windows: self.windows.clone(),
            cursor: self.cursor,
            losses: self.losses.clone(),
        })
        .expect("pretrain extra state is always serializable");
        TrainCheckpoint {
            step: self.losses.len() as u64,
            params: self.model.params().clone(),
            opt_m,
            opt_v,
            opt_step: self.opt.steps(),
            rng: RngState::capture(rng),
            extra,
        }
        .save(dir)
    }

    /// Drive the run to completion, checkpointing to `dir` every `every`
    /// steps (floor 1) and once more at the final step.
    pub fn run_checkpointed(
        &mut self,
        rng: &mut ChaCha8Rng,
        dir: &Path,
        every: usize,
    ) -> Result<(), CkptError> {
        let every = every.max(1);
        while self.step(rng).is_some() {
            let done = self.losses.len();
            if done % every == 0 || done == self.config.steps {
                self.checkpoint(rng, dir)?;
            }
        }
        Ok(())
    }
}

/// Mean validation loss over held-out sequences (no updates).
pub fn validation_loss(model: &Transformer, sequences: &[Vec<TokenId>]) -> f32 {
    if sequences.is_empty() {
        return f32::NAN;
    }
    let mut total = 0.0f32;
    for s in sequences {
        let mut tape = Tape::new();
        let mask = vec![true; s.len()];
        let (loss, _) = model.lm_loss(&mut tape, s, 1, s.len(), &mask);
        total += tape.value(loss).item();
    }
    total / sequences.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_model::ModelConfig;
    use rand::SeedableRng;

    fn toy_sequences() -> Vec<Vec<TokenId>> {
        // Deterministic patterns the model can memorize.
        vec![
            vec![
                TokenId(2),
                TokenId(3),
                TokenId(4),
                TokenId(3),
                TokenId(2),
                TokenId(1),
            ],
            vec![
                TokenId(2),
                TokenId(5),
                TokenId(6),
                TokenId(5),
                TokenId(2),
                TokenId(1),
            ],
        ]
    }

    #[test]
    fn loss_decreases() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = Transformer::new(ModelConfig::tiny(8, 8), &mut rng);
        let cfg = PretrainConfig {
            steps: 80,
            batch_size: 2,
            lr: 3e-3,
            warmup: 5,
        };
        let losses = pretrain(&mut model, &toy_sequences(), &cfg, &mut rng);
        assert_eq!(losses.len(), 80);
        let first: f32 = losses[..5].iter().sum::<f32>() / 5.0;
        let last: f32 = losses[75..].iter().sum::<f32>() / 5.0;
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn validation_loss_tracks_training() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut model = Transformer::new(ModelConfig::tiny(8, 8), &mut rng);
        let seqs = toy_sequences();
        let before = validation_loss(&model, &seqs);
        let cfg = PretrainConfig {
            steps: 60,
            batch_size: 2,
            lr: 3e-3,
            warmup: 5,
        };
        pretrain(&mut model, &seqs, &cfg, &mut rng);
        let after = validation_loss(&model, &seqs);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "no pretraining sequences")]
    fn empty_dataset_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model = Transformer::new(ModelConfig::tiny(8, 8), &mut rng);
        pretrain(&mut model, &[], &PretrainConfig::default(), &mut rng);
    }

    #[test]
    fn stepwise_driver_matches_one_shot_pretrain() {
        let seqs = toy_sequences();
        let cfg = PretrainConfig {
            steps: 24,
            batch_size: 2,
            lr: 3e-3,
            warmup: 4,
        };
        let mut model_a =
            Transformer::new(ModelConfig::tiny(8, 8), &mut ChaCha8Rng::seed_from_u64(3));
        let mut rng_a = ChaCha8Rng::seed_from_u64(4);
        let losses_a = pretrain(&mut model_a, &seqs, &cfg, &mut rng_a);

        let mut model_b =
            Transformer::new(ModelConfig::tiny(8, 8), &mut ChaCha8Rng::seed_from_u64(3));
        let mut rng_b = ChaCha8Rng::seed_from_u64(4);
        let mut run = PretrainRun::new(&mut model_b, &seqs, cfg);
        let mut losses_b = Vec::new();
        while let Some(loss) = run.step(&mut rng_b) {
            losses_b.push(loss);
        }
        assert!(run.is_done());
        assert_eq!(losses_a, losses_b);
        for i in 0..model_a.params().len() {
            assert_eq!(
                model_a.params().tensor(i).data(),
                model_b.params().tensor(i).data(),
                "param {} diverged",
                model_a.params().name(i)
            );
        }
    }
}
