//! Decode-time grammar levels and per-lane grammar state.
//!
//! The sampler supports three grammar levels:
//!
//! - [`Grammar::Off`] — only PAD is masked. Used by PPO rollouts, where
//!   the Eulerian grammar itself is the thing being learned.
//! - [`Grammar::Minimal`] — PAD always masked; the terminator masked
//!   until the walk has returned to the start token with at least two
//!   edges consumed (so an empty walk can never terminate).
//! - [`Grammar::Full`] — everything Minimal does, plus a per-lane
//!   [`IncrementalValidity`] automaton that masks every vocabulary token
//!   which cannot extend the walk to a legal, closable topology within
//!   the lane's remaining token budget.
//!
//! [`GrammarTable`] maps the tokenizer vocabulary onto circuit
//! [`Node`]s once; [`GrammarState`] is the cheap per-lane companion the
//! batch scheduler clones, replays, and stores alongside cached KV
//! prefixes. The state is a pure function of the token sequence, which
//! is what makes prefix-cache restore sound: restoring a stored state
//! and replaying the tokens produce identical masks.

use std::sync::Arc;

use eva_circuit::euler::IncrementalValidity;
use eva_circuit::Node;
use eva_tokenizer::TokenId;

/// Vocabulary → circuit-node table shared by every lane of a pool.
///
/// Built once per tokenizer; special tokens (PAD, END, anything that is
/// not a parseable [`Node`]) map to `None`. Holds a prototype automaton
/// so `fresh_automaton` is a clone, not a rebuild — the initial closing
/// plan is computed exactly once.
#[derive(Debug, Clone)]
pub struct GrammarTable {
    nodes: Vec<Option<Node>>,
    proto: IncrementalValidity,
}

impl GrammarTable {
    /// Build the table from `(id, text)` vocabulary pairs, e.g.
    /// `Tokenizer::iter()`. Token texts that parse as circuit nodes
    /// become the automaton's universe; the rest stay unmapped.
    pub fn from_vocab<'a, I>(vocab: I) -> GrammarTable
    where
        I: IntoIterator<Item = (TokenId, &'a str)>,
    {
        let mut nodes: Vec<Option<Node>> = Vec::new();
        for (id, text) in vocab {
            let idx = id.index();
            if nodes.len() <= idx {
                nodes.resize(idx + 1, None);
            }
            nodes[idx] = text.parse::<Node>().ok();
        }
        let proto = IncrementalValidity::new(nodes.iter().flatten().copied());
        GrammarTable { nodes, proto }
    }

    /// The circuit node a token stands for, if any.
    pub fn node(&self, token: TokenId) -> Option<Node> {
        self.nodes.get(token.index()).copied().flatten()
    }

    /// A fresh automaton positioned at the implicit leading `VSS`.
    pub fn fresh_automaton(&self) -> IncrementalValidity {
        self.proto.clone()
    }

    /// Number of vocabulary slots covered by the table.
    pub fn vocab_size(&self) -> usize {
        self.nodes.len()
    }
}

/// Grammar level attached to a [`SamplingPolicy`](crate::SamplingPolicy).
#[derive(Debug, Clone)]
pub enum Grammar {
    /// Mask PAD only.
    Off,
    /// Mask PAD; mask the terminator until the walk can close at all.
    Minimal,
    /// Full incremental-validity masking driven by the shared table.
    Full(Arc<GrammarTable>),
}

impl Grammar {
    /// Stable lowercase name, mirroring the serve `--grammar` values.
    pub fn name(&self) -> &'static str {
        match self {
            Grammar::Off => "off",
            Grammar::Minimal => "minimal",
            Grammar::Full(_) => "full",
        }
    }
}

/// Per-lane grammar state: a deterministic function of the sampled
/// token sequence. Cloned on prefix-cache insert and restored on a
/// full-prefix hit instead of being replayed token by token.
#[derive(Debug, Clone)]
pub enum GrammarState {
    /// No tracking.
    Off,
    /// Tokens observed since the start token.
    Minimal { steps: usize },
    /// Incremental automaton plus the observed-token count.
    Full {
        auto: IncrementalValidity,
        steps: usize,
    },
}

impl GrammarState {
    /// Tokens observed since the start token (always 0 for `Off`).
    pub fn steps(&self) -> usize {
        match self {
            GrammarState::Off => 0,
            GrammarState::Minimal { steps } => *steps,
            GrammarState::Full { steps, .. } => *steps,
        }
    }
}
