//! Fast autoregressive inference with a KV cache.
//!
//! Generation dominates EVA's experiment cost (thousands of sampled
//! circuits), so it gets a tape-free incremental path: one token in, one
//! logit row out, with cached keys/values per layer. Tests assert bitwise-
//! close agreement with the training-time forward pass.

use std::error::Error;
use std::fmt;

use eva_nn::Tensor;
use eva_tokenizer::TokenId;
use rand::Rng;

use crate::transformer::Transformer;

/// A decode step that cannot proceed. Serving workers rely on these being
/// ordinary values: one malformed request must never panic a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InferError {
    /// The KV cache already holds `max_seq_len` positions.
    SequenceTooLong {
        /// The model's configured context length.
        max_seq_len: usize,
    },
    /// The token id is outside the model's vocabulary.
    TokenOutOfVocab {
        /// The offending token.
        token: TokenId,
        /// The model's vocabulary size.
        vocab_size: usize,
    },
    /// Every logit in the row was masked to `-inf`: the grammar left no
    /// admissible token (e.g. a full-grammar lane whose length cap is too
    /// small to ever close a walk). The RNG is not consumed.
    NoAdmissibleToken,
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::SequenceTooLong { max_seq_len } => {
                write!(f, "sequence exceeds max_seq_len ({max_seq_len})")
            }
            InferError::TokenOutOfVocab { token, vocab_size } => {
                write!(f, "token {token} out of vocabulary (size {vocab_size})")
            }
            InferError::NoAdmissibleToken => {
                write!(f, "grammar masked every token in the logit row")
            }
        }
    }
}

impl Error for InferError {}

/// Incremental decoder state over one sequence.
#[derive(Debug)]
pub struct Generator<'m> {
    model: &'m Transformer,
    /// Per layer: cached keys, `t × d_model` flattened.
    k_cache: Vec<Vec<f32>>,
    /// Per layer: cached values.
    v_cache: Vec<Vec<f32>>,
    t: usize,
}

impl<'m> Generator<'m> {
    /// Start a fresh sequence.
    pub fn new(model: &'m Transformer) -> Generator<'m> {
        let layers = model.config().n_layers;
        Generator {
            model,
            k_cache: vec![Vec::new(); layers],
            v_cache: vec![Vec::new(); layers],
            t: 0,
        }
    }

    /// Tokens consumed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether nothing has been consumed.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Consume one token; returns the next-token logits `[vocab]`.
    ///
    /// # Errors
    ///
    /// [`InferError::SequenceTooLong`] if the sequence already fills the
    /// configured context, [`InferError::TokenOutOfVocab`] on a token id
    /// beyond the vocabulary. A failed step leaves the cache untouched, so
    /// the generator remains usable.
    pub fn step(&mut self, token: TokenId) -> Result<Vec<f32>, InferError> {
        let cfg = *self.model.config();
        if self.t >= cfg.max_seq_len {
            return Err(InferError::SequenceTooLong {
                max_seq_len: cfg.max_seq_len,
            });
        }
        if token.index() >= cfg.vocab_size {
            return Err(InferError::TokenOutOfVocab {
                token,
                vocab_size: cfg.vocab_size,
            });
        }
        let d = cfg.d_model;
        let p = self.model.params();
        let get = |name: &str| -> &Tensor {
            p.tensor(p.index_of(name).unwrap_or_else(|| panic!("param {name}")))
        };

        // Embeddings.
        let tok = get("tok_emb").data();
        let pos = get("pos_emb").data();
        let mut x: Vec<f32> = (0..d)
            .map(|j| tok[token.index() * d + j] + pos[self.t * d + j])
            .collect();

        let heads = cfg.n_heads;
        let dh = cfg.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        for l in 0..cfg.n_layers {
            // --- Attention.
            let normed = layer_norm_row(
                &x,
                get(&format!("l{l}.ln1.g")).data(),
                get(&format!("l{l}.ln1.b")).data(),
            );
            let q = vecmat(&normed, get(&format!("l{l}.attn.wq")).data(), d, d);
            let k = vecmat(&normed, get(&format!("l{l}.attn.wk")).data(), d, d);
            let v = vecmat(&normed, get(&format!("l{l}.attn.wv")).data(), d, d);
            self.k_cache[l].extend_from_slice(&k);
            self.v_cache[l].extend_from_slice(&v);
            let steps = self.t + 1;
            let mut ctx = vec![0.0f32; d];
            for h in 0..heads {
                let off = h * dh;
                // Scores over all cached positions.
                let mut scores = Vec::with_capacity(steps);
                let mut maxv = f32::NEG_INFINITY;
                for j in 0..steps {
                    let krow = &self.k_cache[l][j * d + off..j * d + off + dh];
                    let mut s = 0.0f32;
                    for c in 0..dh {
                        s += q[off + c] * krow[c];
                    }
                    s *= scale;
                    maxv = maxv.max(s);
                    scores.push(s);
                }
                let mut denom = 0.0f32;
                for s in &mut scores {
                    *s = (*s - maxv).exp();
                    denom += *s;
                }
                for j in 0..steps {
                    let w = scores[j] / denom;
                    let vrow = &self.v_cache[l][j * d + off..j * d + off + dh];
                    for c in 0..dh {
                        ctx[off + c] += w * vrow[c];
                    }
                }
            }
            let attn = vecmat(&ctx, get(&format!("l{l}.attn.wo")).data(), d, d);
            for j in 0..d {
                x[j] += attn[j];
            }

            // --- MLP.
            let normed2 = layer_norm_row(
                &x,
                get(&format!("l{l}.ln2.g")).data(),
                get(&format!("l{l}.ln2.b")).data(),
            );
            let mut h1 = vecmat(&normed2, get(&format!("l{l}.ff.w1")).data(), d, cfg.d_ff);
            let b1 = get(&format!("l{l}.ff.b1")).data();
            for (val, &b) in h1.iter_mut().zip(b1) {
                *val = gelu(*val + b);
            }
            let mut h2 = vecmat(&h1, get(&format!("l{l}.ff.w2")).data(), cfg.d_ff, d);
            let b2 = get(&format!("l{l}.ff.b2")).data();
            for j in 0..d {
                x[j] += h2[j] + b2[j];
                h2[j] = 0.0;
            }
        }

        let final_norm = layer_norm_row(&x, get("lnf.g").data(), get("lnf.b").data());
        self.t += 1;
        Ok(vecmat(&final_norm, get("head.w").data(), d, cfg.vocab_size))
    }
}

/// `y[n] = x[k] @ w[k, n]`.
pub(crate) fn vecmat(x: &[f32], w: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    for (kk, &xv) in x.iter().enumerate().take(k) {
        if xv == 0.0 {
            continue;
        }
        let row = &w[kk * n..kk * n + n];
        for j in 0..n {
            out[j] += xv * row[j];
        }
    }
    out
}

fn layer_norm_row(x: &[f32], g: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    layer_norm_row_into(x, g, b, &mut out);
    out
}

/// Allocation-free layer norm over one row; the exact arithmetic of
/// [`layer_norm_row`], shared with the batched decoder so both paths stay
/// bit-identical.
pub(crate) fn layer_norm_row_into(x: &[f32], g: &[f32], b: &[f32], out: &mut [f32]) {
    const EPS: f32 = 1e-5;
    let d = x.len();
    let mean = x.iter().sum::<f32>() / d as f32;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
    let inv = 1.0 / (var + EPS).sqrt();
    for j in 0..d {
        out[j] = (x[j] - mean) * inv * g[j] + b[j];
    }
}

pub(crate) fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Sample an index from logits with temperature and optional top-k.
///
/// Returns [`InferError::NoAdmissibleToken`] — without consuming the
/// RNG — when every logit is `-inf` (a fully-masked grammar row), since
/// the softmax weights would otherwise all be zero and the draw
/// undefined.
///
/// # Panics
///
/// Panics if `logits` is empty, `temperature <= 0`, or `top_k == Some(0)`.
pub fn sample_logits<R: Rng + ?Sized>(
    logits: &[f32],
    temperature: f32,
    top_k: Option<usize>,
    rng: &mut R,
) -> Result<usize, InferError> {
    assert!(!logits.is_empty(), "logits empty");
    assert!(temperature > 0.0, "temperature must be positive");
    if logits.iter().all(|&v| v == f32::NEG_INFINITY) {
        return Err(InferError::NoAdmissibleToken);
    }
    let mut order: Vec<usize> = (0..logits.len()).collect();
    order.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite logits"));
    let k = top_k.unwrap_or(logits.len()).min(logits.len());
    assert!(k > 0, "top_k must be positive");
    let kept = &order[..k];
    let maxv = logits[kept[0]];
    let weights: Vec<f64> = kept
        .iter()
        .map(|&i| f64::from(((logits[i] - maxv) / temperature).exp()))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen_range(0.0..total);
    for (w, &i) in weights.iter().zip(kept) {
        if pick < *w {
            return Ok(i);
        }
        pick -= w;
    }
    // Floating-point fallthrough: land on the least-likely index that
    // still carries probability mass, never a zero-weight (masked) one.
    let last = weights.iter().rposition(|&w| w > 0.0).expect("total > 0");
    Ok(kept[last])
}

/// Autoregressively generate a token sequence starting from `start`
/// (usually `VSS`), stopping after `end` is produced or `max_len` tokens.
/// The returned sequence includes `start` but not `end`.
///
/// # Panics
///
/// Panics if `start` is out of vocabulary or the model context is zero;
/// the sampled continuation itself cannot fail (the limit is clamped to
/// the context and sampled ids are always in-vocabulary). Callers that
/// need fallible decoding drive [`Generator::step`] directly.
pub fn generate<R: Rng + ?Sized>(
    model: &Transformer,
    start: TokenId,
    end: TokenId,
    max_len: usize,
    temperature: f32,
    top_k: Option<usize>,
    rng: &mut R,
) -> Vec<TokenId> {
    // One lane of the batched runtime: unconstrained sampling, terminator
    // dropped from the output — the decode loop this function used to
    // hand-roll.
    let policy = crate::batch::SamplingPolicy {
        start,
        end,
        pad: None,
        keep_end: false,
        grammar: crate::grammar::Grammar::Off,
    };
    let lane = crate::batch::LaneRequest {
        rng,
        temperature,
        top_k,
        max_len,
        prompt: Vec::new(),
    };
    let mut outputs = crate::batch::decode_batch(model, &policy, vec![lane]);
    let out = outputs.pop().expect("one lane in, one lane out");
    if let Some(e) = out.error {
        panic!("start token within vocabulary and context: {e}");
    }
    out.tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use eva_nn::Tape;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model() -> Transformer {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        Transformer::new(ModelConfig::tiny(13, 24), &mut rng)
    }

    #[test]
    fn incremental_matches_tape_forward() {
        let model = tiny_model();
        let toks: Vec<TokenId> = [2u32, 5, 3, 8, 11].iter().map(|&i| TokenId(i)).collect();

        // Tape path.
        let mut tape = Tape::new();
        let bound = model.bind(&mut tape);
        let h = model.hidden(&mut tape, &bound, &toks, 1, toks.len());
        let logits = model.lm_logits(&mut tape, &bound, h);
        let lt = tape.value(logits);

        // Incremental path.
        let mut gen = Generator::new(&model);
        for (i, &tok) in toks.iter().enumerate() {
            let row = gen.step(tok).expect("within context");
            let want = &lt.data()[i * 13..(i + 1) * 13];
            for (a, b) in row.iter().zip(want) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "position {i}: incremental {a} vs tape {b}"
                );
            }
        }
        assert_eq!(gen.len(), toks.len());
    }

    #[test]
    fn step_errors_are_typed_not_panics() {
        // tiny_model: vocab 13, context 24.
        let model = tiny_model();
        let mut gen = Generator::new(&model);
        assert_eq!(
            gen.step(TokenId(99)),
            Err(InferError::TokenOutOfVocab {
                token: TokenId(99),
                vocab_size: 13
            })
        );
        // A failed step leaves the generator usable.
        assert_eq!(gen.len(), 0);
        for _ in 0..24 {
            gen.step(TokenId(2)).expect("within context");
        }
        assert_eq!(
            gen.step(TokenId(2)),
            Err(InferError::SequenceTooLong { max_seq_len: 24 })
        );
        assert_eq!(gen.len(), 24);
    }

    #[test]
    fn sampling_greedy_at_low_temperature() {
        let logits = vec![0.0, 5.0, 1.0];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(sample_logits(&logits, 0.01, None, &mut rng), Ok(1));
        }
    }

    #[test]
    fn top_k_restricts_support() {
        let logits = vec![1.0, 0.9, -10.0, -10.0];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let i = sample_logits(&logits, 5.0, Some(2), &mut rng).expect("finite row");
            assert!(i < 2, "picked outside top-2: {i}");
        }
    }

    #[test]
    fn all_masked_row_is_a_typed_error_and_draws_nothing() {
        let logits = vec![f32::NEG_INFINITY; 4];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let before = rng.clone();
        assert_eq!(
            sample_logits(&logits, 1.0, None, &mut rng),
            Err(InferError::NoAdmissibleToken)
        );
        assert_eq!(
            rng.gen::<u64>(),
            before.clone().gen::<u64>(),
            "the failed draw must not consume RNG state"
        );
        // A single surviving logit is still sampleable.
        let mut one = vec![f32::NEG_INFINITY; 4];
        one[2] = 0.0;
        assert_eq!(
            sample_logits(&one, 1.0, Some(3), &mut before.clone()),
            Ok(2)
        );
    }

    #[test]
    fn generate_terminates_and_starts_correctly() {
        let model = tiny_model();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let seq = generate(&model, TokenId(2), TokenId(1), 16, 1.0, Some(5), &mut rng);
        assert_eq!(seq[0], TokenId(2));
        assert!(seq.len() <= 16);
        assert!(!seq.contains(&TokenId(1)), "end token excluded");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let model = tiny_model();
        let a = generate(
            &model,
            TokenId(2),
            TokenId(1),
            16,
            1.0,
            None,
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        let b = generate(
            &model,
            TokenId(2),
            TokenId(1),
            16,
            1.0,
            None,
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }
}
