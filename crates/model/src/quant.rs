//! Int8 decode weights for the batched runtime.
//!
//! [`QuantizedDecodeWeights`] quantizes exactly the matrices the decode
//! hot path streams through [`eva_nn::matmul_kouter_into`] every step —
//! per layer `wq`/`wk`/`wv`/`wo`/`ff.w1`/`ff.w2`, plus the logit head —
//! to int8 with per-output-channel scales ([`eva_nn::QuantizedMatrix`]).
//! Embeddings, layer norms, and biases stay f32: they are read per lane,
//! not streamed per weight, and cost nothing at decode.
//!
//! Quantized decode is **not** bit-identical to f32 decode (that is the
//! point — see the accuracy-budget test in `crates/serve/tests`), but it
//! is fully deterministic: the int8 kernel is bit-identical across thread
//! counts *and* SIMD modes, so a quantized request's output depends only
//! on its seed and the quantized weights, never on batch composition,
//! admission order, or the host's instruction set.

use eva_nn::{QuantizedMatrix, QuantizedParams};

use crate::transformer::Transformer;

/// Per-layer indices into the backing [`QuantizedParams`].
struct QuantLayerIdx {
    wq: usize,
    wk: usize,
    wv: usize,
    wo: usize,
    ff_w1: usize,
    ff_w2: usize,
}

/// The int8 form of every weight matrix [`crate::BatchGenerator`] streams
/// per decode step, indexed for string-free hot-loop access.
pub struct QuantizedDecodeWeights {
    params: QuantizedParams,
    layers: Vec<QuantLayerIdx>,
    head_w: usize,
}

impl QuantizedDecodeWeights {
    /// The parameter names quantized for an `n_layers` model, in storage
    /// order.
    pub fn decode_weight_names(n_layers: usize) -> Vec<String> {
        let mut names = Vec::with_capacity(6 * n_layers + 1);
        for l in 0..n_layers {
            for suffix in ["attn.wq", "attn.wk", "attn.wv", "attn.wo", "ff.w1", "ff.w2"] {
                names.push(format!("l{l}.{suffix}"));
            }
        }
        names.push("head.w".to_string());
        names
    }

    /// Quantize `model`'s decode weights (pure CPU pass over the f32
    /// parameters; the model itself is untouched).
    pub fn quantize(model: &Transformer) -> QuantizedDecodeWeights {
        let names = Self::decode_weight_names(model.config().n_layers);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let params = QuantizedParams::quantize_matrices(model.params(), &refs)
            .expect("decode weights exist and are 2-D");
        Self::from_params(model.config().n_layers, params)
            .expect("freshly quantized set is complete")
    }

    /// Wrap an already-loaded [`QuantizedParams`] set (e.g. read back from
    /// a CRC-verified artifact), checking that every decode weight of an
    /// `n_layers` model is present.
    pub fn from_params(
        n_layers: usize,
        params: QuantizedParams,
    ) -> Result<QuantizedDecodeWeights, String> {
        let idx = |name: &str| {
            params
                .index_of(name)
                .ok_or_else(|| format!("quantized set is missing {name:?}"))
        };
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            layers.push(QuantLayerIdx {
                wq: idx(&format!("l{l}.attn.wq"))?,
                wk: idx(&format!("l{l}.attn.wk"))?,
                wv: idx(&format!("l{l}.attn.wv"))?,
                wo: idx(&format!("l{l}.attn.wo"))?,
                ff_w1: idx(&format!("l{l}.ff.w1"))?,
                ff_w2: idx(&format!("l{l}.ff.w2"))?,
            });
        }
        let head_w = idx("head.w")?;
        Ok(QuantizedDecodeWeights {
            params,
            layers,
            head_w,
        })
    }

    /// The backing named set (for CRC'd artifact storage via
    /// [`QuantizedParams::save`]).
    pub fn params(&self) -> &QuantizedParams {
        &self.params
    }

    /// Layers covered.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    pub(crate) fn wq(&self, l: usize) -> &QuantizedMatrix {
        self.params.mat(self.layers[l].wq)
    }

    pub(crate) fn wk(&self, l: usize) -> &QuantizedMatrix {
        self.params.mat(self.layers[l].wk)
    }

    pub(crate) fn wv(&self, l: usize) -> &QuantizedMatrix {
        self.params.mat(self.layers[l].wv)
    }

    pub(crate) fn wo(&self, l: usize) -> &QuantizedMatrix {
        self.params.mat(self.layers[l].wo)
    }

    pub(crate) fn ff_w1(&self, l: usize) -> &QuantizedMatrix {
        self.params.mat(self.layers[l].ff_w1)
    }

    pub(crate) fn ff_w2(&self, l: usize) -> &QuantizedMatrix {
        self.params.mat(self.layers[l].ff_w2)
    }

    pub(crate) fn head_w(&self) -> &QuantizedMatrix {
        self.params.mat(self.head_w)
    }
}

impl std::fmt::Debug for QuantizedDecodeWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedDecodeWeights")
            .field("n_layers", &self.layers.len())
            .field("matrices", &self.params.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quantize_covers_every_decode_weight_and_round_trips_by_bytes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = Transformer::new(ModelConfig::tiny(13, 24), &mut rng);
        let qw = QuantizedDecodeWeights::quantize(&model);
        let cfg = model.config();
        assert_eq!(qw.n_layers(), cfg.n_layers);
        assert_eq!(qw.params().len(), 6 * cfg.n_layers + 1);
        assert_eq!(qw.head_w().k(), cfg.d_model);
        assert_eq!(qw.head_w().n(), cfg.vocab_size);
        assert_eq!(qw.ff_w1(0).n(), cfg.d_ff);

        let mut bytes = Vec::new();
        qw.params().save(&mut bytes).expect("in-memory save");
        let back = eva_nn::QuantizedParams::load(&bytes[..]).expect("load");
        let rebuilt =
            QuantizedDecodeWeights::from_params(cfg.n_layers, back).expect("complete set");
        assert_eq!(rebuilt.params(), qw.params());
    }

    #[test]
    fn from_params_rejects_an_incomplete_set() {
        let err = QuantizedDecodeWeights::from_params(1, eva_nn::QuantizedParams::default());
        assert!(err.is_err());
    }
}
