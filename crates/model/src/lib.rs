//! # eva-model
//!
//! EVA's decoder-only transformer (Section III-B): a GPT-2-style pre-norm
//! stack over the circuit-pin vocabulary, with a training-time tape forward
//! ([`Transformer`]), a KV-cached incremental generation path
//! ([`infer::Generator`]) that tests hold to agreement, and a lockstep
//! batched decoding runtime ([`batch::BatchGenerator`] /
//! [`batch::decode_batch`]) that is bit-identical per lane to the
//! sequential path and shared by the engine, RL rollouts, and serving.
//! [`quant::QuantizedDecodeWeights`] swaps the decode GEMMs to int8
//! weights ([`batch::decode_batch_quantized`]) under a gated accuracy
//! budget, without touching the f32 model.
//!
//! The paper-scale architecture (6 layers / 6 heads / 11.825 M params /
//! vocab 1029 / context 1024) is [`ModelConfig::paper`]; experiments run at
//! [`ModelConfig::repro`] scale on CPU.
//!
//! ## Example: score a token sequence
//!
//! ```
//! use eva_model::{ModelConfig, Transformer};
//! use eva_nn::Tape;
//! use eva_tokenizer::TokenId;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let model = Transformer::new(ModelConfig::tiny(16, 8), &mut rng);
//! let mut tape = Tape::new();
//! let ids: Vec<TokenId> = vec![TokenId(2), TokenId(3), TokenId(4)];
//! let mask = vec![true; 3];
//! let (loss, _bound) = model.lm_loss(&mut tape, &ids, 1, 3, &mask);
//! assert!(tape.value(loss).item() > 0.0);
//! ```

pub mod batch;
pub mod config;
pub mod grammar;
pub mod infer;
pub mod quant;
pub mod transformer;

pub use batch::{
    decode_batch, decode_batch_bounded, decode_batch_quantized, BatchGenerator, ContinuousBatch,
    LaneOutput, LaneRequest, SamplingPolicy, StepOutcome,
};
pub use config::ModelConfig;
pub use grammar::{Grammar, GrammarState, GrammarTable};
pub use infer::{generate, sample_logits, Generator, InferError};
pub use quant::QuantizedDecodeWeights;
pub use transformer::{Bound, Transformer};
