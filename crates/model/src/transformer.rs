//! The decoder-only transformer (GPT-2 style, pre-norm).
//!
//! Training-time forward passes run on an [`eva_nn::Tape`]; fast
//! generation uses the KV-cached inference path in [`crate::infer`], which
//! is asserted equivalent in tests.

use eva_nn::{Gradients, ParamSet, Tape, Tensor, Value};
use eva_tokenizer::TokenId;
use rand::Rng;

use crate::config::ModelConfig;

/// Tape bindings of every parameter for one forward pass; index-aligned
/// with the model's [`ParamSet`].
#[derive(Debug)]
pub struct Bound {
    values: Vec<Value>,
}

impl Bound {
    /// Tape value of parameter `index`.
    pub fn value(&self, index: usize) -> Value {
        self.values[index]
    }

    /// Collect per-parameter gradients in `ParamSet` order (for the
    /// optimizer).
    pub fn gradients<'g>(&self, grads: &'g Gradients) -> Vec<Option<&'g Tensor>> {
        self.values.iter().map(|&v| grads.of(v)).collect()
    }
}

/// A decoder-only transformer language model over circuit-pin tokens.
#[derive(Debug, Clone)]
pub struct Transformer {
    config: ModelConfig,
    params: ParamSet,
}

impl Transformer {
    /// Initialize with GPT-2-style random weights.
    pub fn new<R: Rng + ?Sized>(config: ModelConfig, rng: &mut R) -> Transformer {
        let d = config.d_model;
        let std = 0.02f32;
        // Residual-output projections scaled down by depth.
        let out_std = std / (2.0 * config.n_layers as f32).sqrt();
        let mut p = ParamSet::new();
        p.register(
            "tok_emb",
            Tensor::randn(vec![config.vocab_size, d], std, rng),
        );
        p.register(
            "pos_emb",
            Tensor::randn(vec![config.max_seq_len, d], std, rng),
        );
        for l in 0..config.n_layers {
            p.register(format!("l{l}.ln1.g"), Tensor::full(vec![d], 1.0));
            p.register(format!("l{l}.ln1.b"), Tensor::zeros(vec![d]));
            p.register(format!("l{l}.attn.wq"), Tensor::randn(vec![d, d], std, rng));
            p.register(format!("l{l}.attn.wk"), Tensor::randn(vec![d, d], std, rng));
            p.register(format!("l{l}.attn.wv"), Tensor::randn(vec![d, d], std, rng));
            p.register(
                format!("l{l}.attn.wo"),
                Tensor::randn(vec![d, d], out_std, rng),
            );
            p.register(format!("l{l}.ln2.g"), Tensor::full(vec![d], 1.0));
            p.register(format!("l{l}.ln2.b"), Tensor::zeros(vec![d]));
            p.register(
                format!("l{l}.ff.w1"),
                Tensor::randn(vec![d, config.d_ff], std, rng),
            );
            p.register(format!("l{l}.ff.b1"), Tensor::zeros(vec![config.d_ff]));
            p.register(
                format!("l{l}.ff.w2"),
                Tensor::randn(vec![config.d_ff, d], out_std, rng),
            );
            p.register(format!("l{l}.ff.b2"), Tensor::zeros(vec![d]));
        }
        p.register("lnf.g", Tensor::full(vec![d], 1.0));
        p.register("lnf.b", Tensor::zeros(vec![d]));
        p.register(
            "head.w",
            Tensor::randn(vec![d, config.vocab_size], std, rng),
        );
        Transformer { config, params: p }
    }

    /// The architecture.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable parameters (optimizer updates, checkpoint loads).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Register every parameter on a tape (cheap, `Arc`-shared).
    pub fn bind(&self, tape: &mut Tape) -> Bound {
        let values = (0..self.params.len())
            .map(|i| tape.leaf(self.params.tensor(i).clone(), true))
            .collect();
        Bound { values }
    }

    fn pv(&self, bound: &Bound, name: &str) -> Value {
        bound.value(
            self.params
                .index_of(name)
                .unwrap_or_else(|| panic!("param {name}")),
        )
    }

    /// Forward to the final hidden states.
    ///
    /// `ids` is a flattened `[batch, time]` token grid (right-padded).
    /// Returns hidden states `[batch, time, d_model]`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != batch * time`, `time` exceeds the
    /// configured maximum, or any id is outside the vocabulary.
    pub fn hidden(
        &self,
        tape: &mut Tape,
        bound: &Bound,
        ids: &[TokenId],
        batch: usize,
        time: usize,
    ) -> Value {
        assert_eq!(ids.len(), batch * time, "ids length");
        assert!(time <= self.config.max_seq_len, "sequence too long");
        let flat: Vec<usize> = ids.iter().map(|t| t.index()).collect();
        let positions: Vec<usize> = (0..batch).flat_map(|_| 0..time).collect();

        let tok_w = self.pv(bound, "tok_emb");
        let pos_w = self.pv(bound, "pos_emb");
        let te = tape.embedding(tok_w, &flat); // [b*t, d]
        let pe = tape.embedding(pos_w, &positions);
        let sum = tape.add(te, pe);
        let mut x = tape.reshape(sum, vec![batch, time, self.config.d_model]);

        let heads = self.config.n_heads;
        let scale = 1.0 / (self.config.d_head() as f32).sqrt();
        for l in 0..self.config.n_layers {
            // Attention sub-block (pre-norm).
            let g1 = self.pv(bound, &format!("l{l}.ln1.g"));
            let b1 = self.pv(bound, &format!("l{l}.ln1.b"));
            let normed = tape.layer_norm(x, g1, b1);
            let wq = self.pv(bound, &format!("l{l}.attn.wq"));
            let wk = self.pv(bound, &format!("l{l}.attn.wk"));
            let wv = self.pv(bound, &format!("l{l}.attn.wv"));
            let wo = self.pv(bound, &format!("l{l}.attn.wo"));
            let q = tape.linear(normed, wq, None);
            let k = tape.linear(normed, wk, None);
            let v = tape.linear(normed, wv, None);
            let qh = tape.split_heads(q, heads);
            let kh = tape.split_heads(k, heads);
            let vh = tape.split_heads(v, heads);
            let kt = tape.transpose12(kh);
            let scores = tape.bmm(qh, kt);
            let probs = tape.causal_softmax(scores, scale);
            let ctx = tape.bmm(probs, vh);
            let merged = tape.merge_heads(ctx, heads);
            let attn_out = tape.linear(merged, wo, None);
            x = tape.add(x, attn_out);

            // MLP sub-block.
            let g2 = self.pv(bound, &format!("l{l}.ln2.g"));
            let b2 = self.pv(bound, &format!("l{l}.ln2.b"));
            let normed2 = tape.layer_norm(x, g2, b2);
            let w1 = self.pv(bound, &format!("l{l}.ff.w1"));
            let bb1 = self.pv(bound, &format!("l{l}.ff.b1"));
            let w2 = self.pv(bound, &format!("l{l}.ff.w2"));
            let bb2 = self.pv(bound, &format!("l{l}.ff.b2"));
            let h = tape.linear(normed2, w1, Some(bb1));
            let a = tape.gelu(h);
            let ff_out = tape.linear(a, w2, Some(bb2));
            x = tape.add(x, ff_out);
        }
        let gf = self.pv(bound, "lnf.g");
        let bf = self.pv(bound, "lnf.b");
        tape.layer_norm(x, gf, bf)
    }

    /// Project hidden states to vocabulary logits, flattened `[b*t, v]`.
    pub fn lm_logits(&self, tape: &mut Tape, bound: &Bound, hidden: Value) -> Value {
        let w = self.pv(bound, "head.w");
        let logits = tape.linear(hidden, w, None); // [b, t, v]
        let shape = tape.value(logits).shape().to_vec();
        let rows: usize = shape[..shape.len() - 1].iter().product();
        tape.reshape(logits, vec![rows, self.config.vocab_size])
    }

    /// Standard next-token language-modeling loss (Eq. 1): position `j`
    /// predicts token `j+1`; targets equal to `pad_mask == false` positions
    /// and the final position are ignored.
    ///
    /// Returns `(loss, bound)`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or if nothing is unmasked.
    pub fn lm_loss(
        &self,
        tape: &mut Tape,
        ids: &[TokenId],
        batch: usize,
        time: usize,
        target_mask: &[bool],
    ) -> (Value, Bound) {
        assert_eq!(target_mask.len(), ids.len(), "mask length");
        let bound = self.bind(tape);
        let hidden = self.hidden(tape, &bound, ids, batch, time);
        let logits = self.lm_logits(tape, &bound, hidden);
        // Shifted targets: at [i, j] predict ids[i, j+1].
        let mut targets = vec![0usize; batch * time];
        let mut mask = vec![false; batch * time];
        for i in 0..batch {
            for j in 0..time.saturating_sub(1) {
                let src = i * time + j;
                let nxt = i * time + j + 1;
                targets[src] = ids[nxt].index();
                mask[src] = target_mask[nxt];
            }
        }
        let loss = tape.cross_entropy(logits, &targets, &mask);
        (loss, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_nn::AdamW;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> (Transformer, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let t = Transformer::new(ModelConfig::tiny(11, 16), &mut rng);
        (t, rng)
    }

    fn ids(v: &[u32]) -> Vec<TokenId> {
        v.iter().map(|&i| TokenId(i)).collect()
    }

    #[test]
    fn hidden_shape() {
        let (model, _) = tiny();
        let mut tape = Tape::new();
        let bound = model.bind(&mut tape);
        let h = model.hidden(&mut tape, &bound, &ids(&[2, 3, 4, 5, 2, 3, 4, 5]), 2, 4);
        assert_eq!(tape.value(h).shape(), &[2, 4, 32]);
    }

    #[test]
    fn logits_shape_and_finite() {
        let (model, _) = tiny();
        let mut tape = Tape::new();
        let bound = model.bind(&mut tape);
        let h = model.hidden(&mut tape, &bound, &ids(&[2, 3, 4, 5]), 1, 4);
        let l = model.lm_logits(&mut tape, &bound, h);
        assert_eq!(tape.value(l).shape(), &[4, 11]);
        assert!(tape.value(l).is_finite());
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past_logits() {
        let (model, _) = tiny();
        let run = |toks: &[u32]| -> Vec<f32> {
            let mut tape = Tape::new();
            let bound = model.bind(&mut tape);
            let h = model.hidden(&mut tape, &bound, &ids(toks), 1, toks.len());
            let l = model.lm_logits(&mut tape, &bound, h);
            // Logits at position 1.
            tape.value(l).data()[11..22].to_vec()
        };
        let a = run(&[2, 3, 4, 5]);
        let b = run(&[2, 3, 9, 9]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "future change leaked into past");
        }
    }

    #[test]
    fn overfits_single_sequence() {
        let (mut model, _) = tiny();
        let seq = ids(&[2, 5, 7, 5, 7, 5, 7, 1]);
        let mask = vec![true; seq.len()];
        let mut opt = AdamW::new(3e-3, model.params().tensors());
        opt.weight_decay = 0.0;
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..120 {
            let mut tape = Tape::new();
            let (loss, bound) = model.lm_loss(&mut tape, &seq, 1, seq.len(), &mask);
            let l = tape.value(loss).item();
            if step == 0 {
                first = l;
            }
            last = l;
            let grads = tape.backward(loss);
            let gvec = bound.gradients(&grads);
            opt.step(model.params_mut().tensors_mut(), &gvec);
        }
        assert!(last < first * 0.2, "loss {first} -> {last} should collapse");
        assert!(last < 0.5, "memorized: {last}");
    }

    #[test]
    fn lm_loss_ignores_padding() {
        let (model, _) = tiny();
        let seq = ids(&[2, 5, 7, 0, 0, 0]);
        let mask = vec![true, true, true, false, false, false];
        let mut tape = Tape::new();
        let (loss, _) = model.lm_loss(&mut tape, &seq, 1, 6, &mask);
        let l1 = tape.value(loss).item();
        // Changing pad content must not change the loss.
        let seq2 = ids(&[2, 5, 7, 9, 9, 9]);
        let mut tape2 = Tape::new();
        let (loss2, _) = model.lm_loss(&mut tape2, &seq2, 1, 6, &mask);
        let l2 = tape2.value(loss2).item();
        assert!((l1 - l2).abs() < 1e-5, "{l1} vs {l2}");
    }

    #[test]
    fn param_count_matches_config_estimate() {
        let (model, _) = tiny();
        let actual = model.params().scalar_count();
        let estimate = model.config().param_count();
        let diff = (actual as f64 - estimate as f64).abs() / estimate as f64;
        assert!(diff < 0.1, "actual {actual} vs estimate {estimate}");
    }
}
