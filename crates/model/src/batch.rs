//! Lockstep batched decoding — the shared runtime behind the engine's
//! evaluation sampling, PPO rollouts, and the serving worker loop.
//!
//! [`crate::Generator`] decodes one sequence at a time: every token of
//! every sequence re-streams all model weights through matrix-*vector*
//! products, so the loop is memory-bandwidth-bound and N sequences cost N
//! full weight sweeps per step. [`BatchGenerator`] decodes N lanes in
//! lockstep instead: one batched GEMM per projection per layer per step
//! (via [`eva_nn::matmul_kouter_into`], which streams each weight matrix
//! exactly once per step regardless of lane count), a single preallocated
//! KV-cache arena laid out `[layer][lane][pos][d_model]`, per-lane typed
//! [`InferError`]s, and lane retirement — finished sequences simply stop
//! being fed, so they cost nothing.
//!
//! **Determinism guarantee:** every per-row computation (embedding lookup,
//! layer norm, attention, GELU, and the per-element accumulation order of
//! the GEMMs) is bit-identical to the sequential [`crate::Generator`]
//! path. With per-lane RNGs, a lane's output is therefore token-for-token
//! identical to decoding that sequence alone — independent of batch
//! composition, lane order, or when neighbors retire. The equivalence
//! property tests in `tests/batch_equivalence.rs` pin this down.
//!
//! [`SamplingPolicy`] is the single source of truth for EVA's decode-time
//! grammar constraint (walks start at `VSS`, the terminator is only
//! admissible right after a `VSS` token, padding is never sampled),
//! previously re-implemented by the engine, the RL rollout loop, and the
//! serve worker; [`decode_batch`] drives any mix of prompted/unprompted
//! lanes with per-lane seed, temperature, top-k and length caps.

use eva_nn::{fault, matmul_kouter_into, par_rows_mut, pool, Tensor};
use eva_tokenizer::TokenId;
use rand::Rng;

use crate::infer::{layer_norm_row_into, sample_logits, InferError};
use crate::transformer::Transformer;

/// Decode-time sampling rules shared by every EVA call site.
///
/// The grammar constraint is deliberately minimal (the paper leaves
/// structural validity to the model): a constrained policy only removes
/// token choices that could never parse — padding, and a terminator
/// anywhere but right after `VSS`, where every valid Eulerian circuit
/// closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPolicy {
    /// Start-of-walk token (`VSS`); every decode begins here.
    pub start: TokenId,
    /// Sequence terminator.
    pub end: TokenId,
    /// Padding token masked out of every sampling step, when present.
    pub pad: Option<TokenId>,
    /// Grammar constraint: the terminator is only admissible immediately
    /// after a `start` token.
    pub end_only_after_start: bool,
    /// Whether an emitted terminator is kept in the output tokens (RL
    /// rollouts score it; evaluation and serving drop it).
    pub keep_end: bool,
}

impl SamplingPolicy {
    /// The evaluation/serving policy: terminator only after `start`,
    /// padding never sampled, terminator excluded from the output.
    pub fn constrained(start: TokenId, end: TokenId, pad: TokenId) -> SamplingPolicy {
        SamplingPolicy {
            start,
            end,
            pad: Some(pad),
            end_only_after_start: true,
            keep_end: false,
        }
    }

    /// The RL rollout policy: no masking (the policy must learn the
    /// grammar), terminator kept in the trajectory so it can be scored.
    pub fn unconstrained(start: TokenId, end: TokenId) -> SamplingPolicy {
        SamplingPolicy {
            start,
            end,
            pad: None,
            end_only_after_start: false,
            keep_end: true,
        }
    }

    /// Apply the grammar mask to one logit row, given the last token of
    /// the sequence so far. A no-op for unconstrained policies.
    pub fn mask_logits(&self, last: TokenId, logits: &mut [f32]) {
        if let Some(pad) = self.pad {
            logits[pad.index()] = f32::NEG_INFINITY;
        }
        if self.end_only_after_start && last != self.start {
            logits[self.end.index()] = f32::NEG_INFINITY;
        }
    }

    /// Resolve a requested length cap against the model context: `0`
    /// means "use the full context", anything else is clamped to it.
    pub fn clamp_len(requested: usize, context: usize) -> usize {
        if requested == 0 {
            context
        } else {
            requested.min(context)
        }
    }
}

/// Resolved parameter-index table so the hot loop never does string
/// lookups (the sequential path re-resolves names every step; here the
/// cost is paid once per batch).
struct ParamIdx {
    tok_emb: usize,
    pos_emb: usize,
    lnf_g: usize,
    lnf_b: usize,
    head_w: usize,
    layers: Vec<LayerIdx>,
}

struct LayerIdx {
    ln1_g: usize,
    ln1_b: usize,
    wq: usize,
    wk: usize,
    wv: usize,
    wo: usize,
    ln2_g: usize,
    ln2_b: usize,
    ff_w1: usize,
    ff_b1: usize,
    ff_w2: usize,
    ff_b2: usize,
}

impl ParamIdx {
    fn resolve(model: &Transformer) -> ParamIdx {
        let p = model.params();
        let idx = |name: &str| p.index_of(name).unwrap_or_else(|| panic!("param {name}"));
        ParamIdx {
            tok_emb: idx("tok_emb"),
            pos_emb: idx("pos_emb"),
            lnf_g: idx("lnf.g"),
            lnf_b: idx("lnf.b"),
            head_w: idx("head.w"),
            layers: (0..model.config().n_layers)
                .map(|l| LayerIdx {
                    ln1_g: idx(&format!("l{l}.ln1.g")),
                    ln1_b: idx(&format!("l{l}.ln1.b")),
                    wq: idx(&format!("l{l}.attn.wq")),
                    wk: idx(&format!("l{l}.attn.wk")),
                    wv: idx(&format!("l{l}.attn.wv")),
                    wo: idx(&format!("l{l}.attn.wo")),
                    ln2_g: idx(&format!("l{l}.ln2.g")),
                    ln2_b: idx(&format!("l{l}.ln2.b")),
                    ff_w1: idx(&format!("l{l}.ff.w1")),
                    ff_b1: idx(&format!("l{l}.ff.b1")),
                    ff_w2: idx(&format!("l{l}.ff.w2")),
                    ff_b2: idx(&format!("l{l}.ff.b2")),
                })
                .collect(),
        }
    }
}

/// Incremental decoder state over N lockstep lanes.
///
/// Feed at most one token per lane per [`BatchGenerator::step`]; lanes
/// advance independently (different lengths are fine) and a lane that is
/// not fed costs nothing. Per-lane failures are ordinary values: one bad
/// lane never poisons its batch, and a failed step leaves that lane's
/// cache untouched and usable, exactly like [`crate::Generator::step`].
pub struct BatchGenerator<'m> {
    model: &'m Transformer,
    idx: ParamIdx,
    lanes: usize,
    ctx: usize,
    /// Per layer: key arena, `lanes × ctx × d_model`, lane-major.
    k_arena: Vec<Vec<f32>>,
    /// Per layer: value arena, same layout.
    v_arena: Vec<Vec<f32>>,
    /// Per-lane tokens consumed so far.
    t: Vec<usize>,
    // Step scratch, allocated once at lane capacity and reused; every
    // GEMM destination is zeroed over its active prefix before use.
    x: Vec<f32>,
    normed: Vec<f32>,
    qb: Vec<f32>,
    kb: Vec<f32>,
    vb: Vec<f32>,
    ctxb: Vec<f32>,
    attnb: Vec<f32>,
    h1: Vec<f32>,
    h2: Vec<f32>,
    logitsb: Vec<f32>,
}

impl<'m> BatchGenerator<'m> {
    /// Allocate a decoder for up to `lanes` concurrent sequences, with the
    /// KV arena sized for the model's full context.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(model: &'m Transformer, lanes: usize) -> BatchGenerator<'m> {
        assert!(lanes > 0, "at least one lane");
        let cfg = *model.config();
        let (d, ctx) = (cfg.d_model, cfg.max_seq_len);
        let arena = || vec![vec![0.0f32; lanes * ctx * d]; cfg.n_layers];
        BatchGenerator {
            idx: ParamIdx::resolve(model),
            model,
            lanes,
            ctx,
            k_arena: arena(),
            v_arena: arena(),
            t: vec![0; lanes],
            x: vec![0.0; lanes * d],
            normed: vec![0.0; lanes * d],
            qb: vec![0.0; lanes * d],
            kb: vec![0.0; lanes * d],
            vb: vec![0.0; lanes * d],
            ctxb: vec![0.0; lanes * d],
            attnb: vec![0.0; lanes * d],
            h1: vec![0.0; lanes * cfg.d_ff],
            h2: vec![0.0; lanes * d],
            logitsb: vec![0.0; lanes * cfg.vocab_size],
        }
    }

    /// Lane capacity.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Tokens consumed by `lane` so far.
    pub fn len(&self, lane: usize) -> usize {
        self.t[lane]
    }

    /// Whether `lane` has consumed nothing yet.
    pub fn is_empty(&self, lane: usize) -> bool {
        self.t[lane] == 0
    }

    /// Advance the fed lanes by one token each, in lockstep. Returns one
    /// result per `feed` entry, in order: the lane's next-token logits
    /// `[vocab]`, or the typed error that left its cache untouched.
    ///
    /// # Panics
    ///
    /// Panics if a lane index is out of range or appears twice in `feed` —
    /// caller bugs, unlike the per-lane `InferError`s which model bad
    /// *sequences*.
    pub fn step(&mut self, feed: &[(usize, TokenId)]) -> Vec<Result<Vec<f32>, InferError>> {
        // Chaos seam: stall (latency only — the computed values below are
        // untouched) when a `decode_slow` fault plan is installed.
        fault::sleep(fault::FaultPoint::DecodeSlow);
        let cfg = *self.model.config();
        let d = cfg.d_model;
        let p = self.model.params();
        let tensor = |i: usize| -> &Tensor { p.tensor(i) };

        // Admission: typed per-lane errors now, so the compute below only
        // ever sees valid (lane, token) pairs.
        let mut results: Vec<Result<Vec<f32>, InferError>> = Vec::with_capacity(feed.len());
        let mut active: Vec<(usize, TokenId)> = Vec::with_capacity(feed.len());
        let mut seen = vec![false; self.lanes];
        for &(lane, token) in feed {
            assert!(
                lane < self.lanes,
                "lane {lane} out of range ({})",
                self.lanes
            );
            assert!(!seen[lane], "lane {lane} fed twice in one step");
            seen[lane] = true;
            if self.t[lane] >= cfg.max_seq_len {
                results.push(Err(InferError::SequenceTooLong {
                    max_seq_len: cfg.max_seq_len,
                }));
            } else if token.index() >= cfg.vocab_size {
                results.push(Err(InferError::TokenOutOfVocab {
                    token,
                    vocab_size: cfg.vocab_size,
                }));
            } else {
                // Placeholder, overwritten with logits below.
                results.push(Ok(Vec::new()));
                active.push((lane, token));
            }
        }
        let a = active.len();
        if a == 0 {
            return results;
        }

        // Embeddings, one row per active lane.
        let tok = tensor(self.idx.tok_emb).data();
        let pos = tensor(self.idx.pos_emb).data();
        for (row, &(lane, token)) in active.iter().enumerate() {
            let xr = &mut self.x[row * d..row * d + d];
            let tr = &tok[token.index() * d..token.index() * d + d];
            let pr = &pos[self.t[lane] * d..self.t[lane] * d + d];
            for j in 0..d {
                xr[j] = tr[j] + pr[j];
            }
        }

        let heads = cfg.n_heads;
        let dh = cfg.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        for (l, li) in self.idx.layers.iter().enumerate() {
            // --- Attention.
            let g1 = tensor(li.ln1_g).data();
            let b1 = tensor(li.ln1_b).data();
            for row in 0..a {
                layer_norm_row_into(
                    &self.x[row * d..row * d + d],
                    g1,
                    b1,
                    &mut self.normed[row * d..row * d + d],
                );
            }
            self.qb[..a * d].fill(0.0);
            self.kb[..a * d].fill(0.0);
            self.vb[..a * d].fill(0.0);
            let nm = &self.normed[..a * d];
            matmul_kouter_into(nm, tensor(li.wq).data(), &mut self.qb[..a * d], a, d, d);
            matmul_kouter_into(nm, tensor(li.wk).data(), &mut self.kb[..a * d], a, d, d);
            matmul_kouter_into(nm, tensor(li.wv).data(), &mut self.vb[..a * d], a, d, d);
            // Scatter this step's keys/values into the arena.
            for (row, &(lane, _)) in active.iter().enumerate() {
                let slot = (lane * self.ctx + self.t[lane]) * d;
                self.k_arena[l][slot..slot + d].copy_from_slice(&self.kb[row * d..row * d + d]);
                self.v_arena[l][slot..slot + d].copy_from_slice(&self.vb[row * d..row * d + d]);
            }
            // Per-lane causal attention over the arena (O(t·d) per lane;
            // the weight-streaming cost this module batches lives in the
            // GEMMs, not here). (row, head) slots are independent and the
            // ctxb window of slot `row*heads + h` is exactly the dh-wide
            // stripe `[row*d + h*dh, row*d + (h+1)*dh)` (d = heads·dh), so
            // slot-parallel execution writes disjoint rows and keeps every
            // per-slot accumulation order — bit-identical to the serial
            // loop and to the sequential generator.
            self.ctxb[..a * d].fill(0.0);
            let tmax = active
                .iter()
                .map(|&(lane, _)| self.t[lane])
                .max()
                .unwrap_or(0);
            let min_slots = (16 * 1024 / ((tmax + 1) * dh).max(1)).max(1);
            let k_l: &[f32] = &self.k_arena[l];
            let v_l: &[f32] = &self.v_arena[l];
            let qb: &[f32] = &self.qb;
            let t: &[usize] = &self.t;
            let ctx = self.ctx;
            let active_s: &[(usize, TokenId)] = &active;
            par_rows_mut(
                pool::global(),
                &mut self.ctxb[..a * d],
                dh,
                min_slots,
                |slot, ctxs| {
                    let row = slot / heads;
                    let off = slot % heads * dh;
                    let (lane, _) = active_s[row];
                    let steps = t[lane] + 1;
                    let base = lane * ctx;
                    let q = &qb[row * d + off..row * d + off + dh];
                    let mut scores = Vec::with_capacity(steps);
                    let mut maxv = f32::NEG_INFINITY;
                    for j in 0..steps {
                        let krow = &k_l[(base + j) * d + off..(base + j) * d + off + dh];
                        let mut s = 0.0f32;
                        for c in 0..dh {
                            s += q[c] * krow[c];
                        }
                        s *= scale;
                        maxv = maxv.max(s);
                        scores.push(s);
                    }
                    let mut denom = 0.0f32;
                    for s in &mut scores {
                        *s = (*s - maxv).exp();
                        denom += *s;
                    }
                    for j in 0..steps {
                        let w = scores[j] / denom;
                        let vrow = &v_l[(base + j) * d + off..(base + j) * d + off + dh];
                        for c in 0..dh {
                            ctxs[c] += w * vrow[c];
                        }
                    }
                },
            );
            self.attnb[..a * d].fill(0.0);
            matmul_kouter_into(
                &self.ctxb[..a * d],
                tensor(li.wo).data(),
                &mut self.attnb[..a * d],
                a,
                d,
                d,
            );
            for i in 0..a * d {
                self.x[i] += self.attnb[i];
            }

            // --- MLP.
            let g2 = tensor(li.ln2_g).data();
            let b2 = tensor(li.ln2_b).data();
            for row in 0..a {
                layer_norm_row_into(
                    &self.x[row * d..row * d + d],
                    g2,
                    b2,
                    &mut self.normed[row * d..row * d + d],
                );
            }
            self.h1[..a * cfg.d_ff].fill(0.0);
            matmul_kouter_into(
                &self.normed[..a * d],
                tensor(li.ff_w1).data(),
                &mut self.h1[..a * cfg.d_ff],
                a,
                d,
                cfg.d_ff,
            );
            let bias1 = tensor(li.ff_b1).data();
            for row in 0..a {
                let hr = &mut self.h1[row * cfg.d_ff..(row + 1) * cfg.d_ff];
                for (val, &b) in hr.iter_mut().zip(bias1) {
                    *val = crate::infer::gelu(*val + b);
                }
            }
            self.h2[..a * d].fill(0.0);
            matmul_kouter_into(
                &self.h1[..a * cfg.d_ff],
                tensor(li.ff_w2).data(),
                &mut self.h2[..a * d],
                a,
                cfg.d_ff,
                d,
            );
            let bias2 = tensor(li.ff_b2).data();
            for row in 0..a {
                let xr = &mut self.x[row * d..row * d + d];
                let hr = &self.h2[row * d..row * d + d];
                for j in 0..d {
                    xr[j] += hr[j] + bias2[j];
                }
            }
        }

        // Final norm + logit head.
        let gf = tensor(self.idx.lnf_g).data();
        let bf = tensor(self.idx.lnf_b).data();
        for row in 0..a {
            layer_norm_row_into(
                &self.x[row * d..row * d + d],
                gf,
                bf,
                &mut self.normed[row * d..row * d + d],
            );
        }
        let v = cfg.vocab_size;
        self.logitsb[..a * v].fill(0.0);
        matmul_kouter_into(
            &self.normed[..a * d],
            tensor(self.idx.head_w).data(),
            &mut self.logitsb[..a * v],
            a,
            d,
            v,
        );

        // Commit: advance fed lanes and hand out their logit rows.
        let mut row = 0usize;
        for res in results.iter_mut() {
            if res.is_ok() {
                let (lane, _) = active[row];
                self.t[lane] += 1;
                *res = Ok(self.logitsb[row * v..(row + 1) * v].to_vec());
                row += 1;
            }
        }
        results
    }
}

/// One lane of work for [`decode_batch`]: its RNG (seed it per lane for
/// deterministic, batch-independent output) and sampling parameters.
#[derive(Debug)]
pub struct LaneRequest<R> {
    /// Per-lane RNG; one draw per sampled token, so a lane's stream never
    /// depends on its neighbors.
    pub rng: R,
    /// Sampling temperature (> 0).
    pub temperature: f32,
    /// Top-k cutoff (`None` = full vocabulary).
    pub top_k: Option<usize>,
    /// Sequence length cap, counting the start token and prompt; clamped
    /// to the model context. (`0` is honored literally — resolve "0 means
    /// full context" conventions with [`SamplingPolicy::clamp_len`].)
    pub max_len: usize,
    /// Tokens fed after the implicit policy start token, before sampling.
    pub prompt: Vec<TokenId>,
}

impl<R> LaneRequest<R> {
    /// A lane with no prompt and the given cap, using policy-free
    /// defaults the callers override as needed.
    pub fn new(rng: R, temperature: f32, top_k: Option<usize>, max_len: usize) -> LaneRequest<R> {
        LaneRequest {
            rng,
            temperature,
            top_k,
            max_len,
            prompt: Vec::new(),
        }
    }
}

/// What one lane produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneOutput {
    /// The decoded walk: the policy start token, the prompt, then sampled
    /// tokens; the terminator is included iff the policy keeps it.
    pub tokens: Vec<TokenId>,
    /// Tokens actually sampled (excludes the start token and prompt).
    pub sampled: usize,
    /// The typed error that retired this lane early, if any. `tokens`
    /// holds everything accumulated before the failure.
    pub error: Option<InferError>,
}

impl LaneOutput {
    /// Whether the lane finished without an inference error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

struct LaneState {
    tokens: Vec<TokenId>,
    /// Tokens fed to the model so far (prefix of `tokens`).
    fed: usize,
    limit: usize,
    sampled: usize,
    error: Option<InferError>,
    done: bool,
}

/// Decode every lane to completion in lockstep and return the outputs in
/// lane order.
///
/// Each iteration feeds one pending token per unfinished lane through a
/// single [`BatchGenerator::step`], then samples (or keeps prefilling the
/// prompt) per lane. Lanes retire independently — on their terminator,
/// their length cap, or a typed error — and stop costing compute the
/// moment they do. Output is token-for-token identical to running each
/// lane alone through [`crate::Generator`] with the same RNG.
pub fn decode_batch<R: Rng>(
    model: &Transformer,
    policy: &SamplingPolicy,
    lanes: Vec<LaneRequest<R>>,
) -> Vec<LaneOutput> {
    if lanes.is_empty() {
        return Vec::new();
    }
    let ctx = model.config().max_seq_len;
    let mut gen = BatchGenerator::new(model, lanes.len());
    let mut rngs: Vec<R> = Vec::with_capacity(lanes.len());
    let mut states: Vec<LaneState> = Vec::with_capacity(lanes.len());
    let mut temps: Vec<(f32, Option<usize>)> = Vec::with_capacity(lanes.len());
    for req in lanes {
        let mut tokens = Vec::with_capacity(1 + req.prompt.len());
        tokens.push(policy.start);
        tokens.extend_from_slice(&req.prompt);
        states.push(LaneState {
            tokens,
            fed: 0,
            limit: req.max_len.min(ctx),
            sampled: 0,
            error: None,
            done: false,
        });
        temps.push((req.temperature, req.top_k));
        rngs.push(req.rng);
    }

    let mut feed: Vec<(usize, TokenId)> = Vec::with_capacity(states.len());
    loop {
        feed.clear();
        for (lane, s) in states.iter().enumerate() {
            if !s.done {
                feed.push((lane, s.tokens[s.fed]));
            }
        }
        if feed.is_empty() {
            break;
        }
        let results = gen.step(&feed);
        for (&(lane, _), result) in feed.iter().zip(results) {
            let s = &mut states[lane];
            let mut logits = match result {
                Ok(logits) => logits,
                Err(e) => {
                    s.error = Some(e);
                    s.done = true;
                    continue;
                }
            };
            s.fed += 1;
            if s.fed < s.tokens.len() {
                continue; // still prefilling the prompt
            }
            if s.tokens.len() >= s.limit {
                s.done = true;
                continue;
            }
            let last = *s.tokens.last().expect("lane starts non-empty");
            policy.mask_logits(last, &mut logits);
            let (temperature, top_k) = temps[lane];
            let next = TokenId(sample_logits(&logits, temperature, top_k, &mut rngs[lane]) as u32);
            if next == policy.end {
                if policy.keep_end {
                    s.tokens.push(next);
                    s.sampled += 1;
                }
                s.done = true;
                continue;
            }
            s.tokens.push(next);
            s.sampled += 1;
            if s.tokens.len() >= s.limit {
                s.done = true;
            }
        }
    }

    states
        .into_iter()
        .map(|s| LaneOutput {
            tokens: s.tokens,
            sampled: s.sampled,
            error: s.error,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::infer::Generator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model() -> Transformer {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        Transformer::new(ModelConfig::tiny(13, 24), &mut rng)
    }

    #[test]
    fn batched_logits_bit_identical_to_sequential() {
        let model = tiny_model();
        // Three lanes stepping different token streams of different
        // lengths; every returned logit row must equal the sequential
        // generator's bit for bit.
        let streams: [&[u32]; 3] = [&[2, 5, 3, 8, 11], &[4, 4, 4], &[12, 0, 7, 1]];
        let mut gen = BatchGenerator::new(&model, 3);
        let mut refs: Vec<Generator<'_>> = (0..3).map(|_| Generator::new(&model)).collect();
        for step in 0..5 {
            let feed: Vec<(usize, TokenId)> = streams
                .iter()
                .enumerate()
                .filter(|(_, s)| step < s.len())
                .map(|(lane, s)| (lane, TokenId(s[step])))
                .collect();
            if feed.is_empty() {
                break;
            }
            let results = gen.step(&feed);
            for (&(lane, token), res) in feed.iter().zip(results) {
                let batched = res.expect("within vocab and context");
                let sequential = refs[lane].step(token).expect("within vocab and context");
                assert_eq!(batched.len(), sequential.len());
                for (a, b) in batched.iter().zip(&sequential) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "lane {lane} step {step}: {a} vs {b}"
                    );
                }
            }
        }
        for (lane, s) in streams.iter().enumerate() {
            assert_eq!(gen.len(lane), s.len());
        }
    }

    #[test]
    fn per_lane_errors_are_typed_and_isolated() {
        let model = tiny_model(); // vocab 13, context 24
        let mut gen = BatchGenerator::new(&model, 2);
        let results = gen.step(&[(0, TokenId(99)), (1, TokenId(2))]);
        assert_eq!(
            results[0],
            Err(InferError::TokenOutOfVocab {
                token: TokenId(99),
                vocab_size: 13
            })
        );
        assert!(results[1].is_ok(), "healthy lane unaffected");
        assert_eq!(gen.len(0), 0, "failed lane's cache untouched");
        assert_eq!(gen.len(1), 1);
        // Fill lane 1 to the context limit; lane 0 stays usable.
        for _ in 1..24 {
            let r = gen.step(&[(1, TokenId(2))]);
            assert!(r[0].is_ok());
        }
        let results = gen.step(&[(0, TokenId(3)), (1, TokenId(2))]);
        assert!(results[0].is_ok(), "lane 0 still decodes");
        assert_eq!(
            results[1],
            Err(InferError::SequenceTooLong { max_seq_len: 24 })
        );
    }

    #[test]
    fn retired_lanes_cost_nothing_and_feed_panics_on_reuse() {
        let model = tiny_model();
        let mut gen = BatchGenerator::new(&model, 4);
        // Only feed two of four lanes; the others must stay empty.
        let results = gen.step(&[(1, TokenId(2)), (3, TokenId(5))]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(gen.len(0), 0);
        assert_eq!(gen.len(1), 1);
        assert_eq!(gen.len(2), 0);
        assert_eq!(gen.len(3), 1);
    }

    #[test]
    #[should_panic(expected = "fed twice")]
    fn duplicate_lane_in_feed_panics() {
        let model = tiny_model();
        let mut gen = BatchGenerator::new(&model, 2);
        let _ = gen.step(&[(0, TokenId(2)), (0, TokenId(3))]);
    }

    #[test]
    fn sampling_policy_masks_as_documented() {
        let policy = SamplingPolicy::constrained(TokenId(2), TokenId(1), TokenId(0));
        let mut logits = vec![1.0f32; 5];
        policy.mask_logits(TokenId(2), &mut logits);
        assert_eq!(logits[0], f32::NEG_INFINITY, "pad always masked");
        assert_eq!(logits[1], 1.0, "end admissible right after start");
        let mut logits = vec![1.0f32; 5];
        policy.mask_logits(TokenId(4), &mut logits);
        assert_eq!(logits[1], f32::NEG_INFINITY, "end masked elsewhere");

        let free = SamplingPolicy::unconstrained(TokenId(2), TokenId(1));
        let mut logits = vec![1.0f32; 5];
        free.mask_logits(TokenId(4), &mut logits);
        assert!(logits.iter().all(|&v| v == 1.0), "unconstrained is a no-op");
    }

    #[test]
    fn clamp_len_resolves_zero_to_context() {
        assert_eq!(SamplingPolicy::clamp_len(0, 128), 128);
        assert_eq!(SamplingPolicy::clamp_len(64, 128), 64);
        assert_eq!(SamplingPolicy::clamp_len(999, 128), 128);
    }

    #[test]
    fn decode_batch_prompt_prefill_and_caps() {
        let model = tiny_model();
        let policy = SamplingPolicy {
            start: TokenId(2),
            end: TokenId(1),
            pad: Some(TokenId(0)),
            end_only_after_start: true,
            keep_end: false,
        };
        let lanes = vec![
            LaneRequest {
                rng: ChaCha8Rng::seed_from_u64(1),
                temperature: 1.0,
                top_k: Some(5),
                max_len: 6,
                prompt: vec![TokenId(5), TokenId(7)],
            },
            LaneRequest {
                rng: ChaCha8Rng::seed_from_u64(2),
                temperature: 1.0,
                top_k: Some(5),
                max_len: 12,
                prompt: Vec::new(),
            },
        ];
        let out = decode_batch(&model, &policy, lanes);
        assert_eq!(out.len(), 2);
        assert!(out[0].is_ok() && out[1].is_ok());
        assert_eq!(&out[0].tokens[..3], &[TokenId(2), TokenId(5), TokenId(7)]);
        assert!(out[0].tokens.len() <= 6);
        assert_eq!(out[0].sampled, out[0].tokens.len() - 3);
        assert_eq!(out[1].tokens[0], TokenId(2));
        assert!(out[1].tokens.len() <= 12);
        for o in &out {
            assert!(!o.tokens.contains(&TokenId(1)), "terminator dropped");
            assert!(!o.tokens[1..].contains(&TokenId(0)), "pad never sampled");
        }
    }
}
