//! Continuous batched decoding — the shared runtime behind the engine's
//! evaluation sampling, PPO rollouts, and the serving worker loop.
//!
//! [`crate::Generator`] decodes one sequence at a time: every token of
//! every sequence re-streams all model weights through matrix-*vector*
//! products, so the loop is memory-bandwidth-bound and N sequences cost N
//! full weight sweeps per step. [`BatchGenerator`] decodes N lanes
//! jointly instead: one batched GEMM per projection per layer per step
//! (via [`eva_nn::matmul_kouter_into`], which streams each weight matrix
//! exactly once per step regardless of lane count), a single preallocated
//! KV-cache arena laid out `[layer][lane][pos][d_model]`, per-lane
//! position tracking, per-lane typed [`InferError`]s, and O(1) lane
//! reclamation ([`BatchGenerator::reset_lane`]) — a retired lane's KV
//! slot is immediately reusable by a new sequence.
//!
//! [`ContinuousBatch`] turns that arena into an iteration-level
//! scheduler (continuous batching, vLLM-style): the lanes form a slot
//! pool, [`ContinuousBatch::admit`] joins a new request mid-flight at
//! any decode step — the moment a neighbor retires and frees its slot —
//! and [`ContinuousBatch::step`] advances every occupied lane by one
//! token. A bounded copy-on-admit prefix cache reuses the KV rows (and
//! final next-token logits) of previously decoded prompt prefixes: at
//! minimum the universal `VSS` start token every EVA walk begins with,
//! generally the longest cached common prefix of the lane's prompt.
//!
//! **Determinism guarantee:** every per-row computation (embedding lookup,
//! layer norm, attention, GELU, and the per-element accumulation order of
//! the GEMMs) is bit-identical to the sequential [`crate::Generator`]
//! path, and cached prefix KV rows are bit-identical to the rows the lane
//! would have recomputed (causal attention at position `j` reads only
//! positions `0..=j`, which the prefix pins). With per-lane RNGs (one
//! draw per sampled token — prefix reuse skips feeds, never draws), a
//! lane's output is therefore token-for-token identical to decoding that
//! sequence alone — independent of batch composition, admission order,
//! mid-flight joins, or prefix-cache state. The equivalence property
//! tests in `tests/batch_equivalence.rs` and the adversarial admission
//! proptests in `tests/continuous.rs` pin this down. An int8-quantized
//! pool ([`BatchGenerator::new_quantized`], [`decode_batch_quantized`])
//! keeps every clause of this guarantee *relative to quantized solo
//! decode*; only the f32-vs-int8 delta — gated by the accuracy-budget
//! test in `crates/serve/tests` — is new.
//!
//! [`SamplingPolicy`] is the single source of truth for EVA's decode-time
//! grammar constraint. Padding is never sampled under any policy; the
//! grammar level ([`crate::Grammar`]) then decides how much more is
//! masked — nothing (`Off`, PPO rollouts), the terminator until the walk
//! can close at all (`Minimal`), or every token the per-lane
//! [`eva_circuit::euler::IncrementalValidity`] automaton proves cannot
//! extend the walk to a legal, closable topology within the lane's
//! remaining budget (`Full`, ~100% first-try validity). Grammar state is
//! a pure function of the token sequence, so a prefix-cache hit restores
//! the stored automaton instead of replaying tokens and the determinism
//! guarantee above carries over unchanged: masks, draws, and outputs are
//! identical to solo decode. [`decode_batch`] / [`decode_batch_bounded`]
//! drive any mix of prompted/unprompted lanes with per-lane seed,
//! temperature, top-k and length caps.

use std::sync::Arc;

use eva_nn::{
    fault, matmul_kouter_into, matmul_q8_kouter_into, par_rows_mut, pool, QuantizedMatrix, Tensor,
};
use eva_tokenizer::TokenId;
use rand::Rng;

use crate::grammar::{Grammar, GrammarState};
use crate::infer::{layer_norm_row_into, sample_logits, InferError};
use crate::quant::QuantizedDecodeWeights;
use crate::transformer::Transformer;

/// One decode GEMM: the int8 k-outer kernel when quantized weights are
/// installed, the f32 k-outer kernel otherwise. Both stream the weight
/// matrix once per step regardless of lane count.
fn decode_mm(
    q: Option<&QuantizedMatrix>,
    w: &[f32],
    a_rows: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match q {
        Some(qm) => {
            debug_assert_eq!((qm.k(), qm.n()), (k, n), "quantized shape");
            matmul_q8_kouter_into(a_rows, qm, out, m);
        }
        None => matmul_kouter_into(a_rows, w, out, m, k, n),
    }
}

/// Decode-time sampling rules shared by every EVA call site.
///
/// Padding is a data artifact, not a grammar symbol: it is masked under
/// every policy, including the RL rollout one (the Eulerian grammar
/// stays learnable; PAD does not). Beyond that, [`Grammar`] sets the
/// constraint level: `Off` for PPO rollouts, `Minimal` for the
/// historical two-rule mask, `Full` for the incremental-validity
/// automaton that makes constrained decode ~100% first-try valid.
///
/// A policy with `Grammar::Full` carries an [`Arc`]-shared vocabulary
/// table, so the struct is `Clone` but no longer `Copy`.
#[derive(Debug, Clone)]
pub struct SamplingPolicy {
    /// Start-of-walk token (`VSS`); every decode begins here.
    pub start: TokenId,
    /// Sequence terminator.
    pub end: TokenId,
    /// Padding token masked out of every sampling step, when present.
    pub pad: Option<TokenId>,
    /// Whether an emitted terminator is kept in the output tokens (RL
    /// rollouts score it; evaluation and serving drop it).
    pub keep_end: bool,
    /// Grammar constraint level (see [`Grammar`]).
    pub grammar: Grammar,
}

impl SamplingPolicy {
    /// The evaluation/serving policy: minimal grammar (terminator only
    /// once the walk can close), padding never sampled, terminator
    /// excluded from the output. Upgrade with [`SamplingPolicy::with_grammar`]
    /// for full automaton masking.
    pub fn constrained(start: TokenId, end: TokenId, pad: TokenId) -> SamplingPolicy {
        SamplingPolicy {
            start,
            end,
            pad: Some(pad),
            keep_end: false,
            grammar: Grammar::Minimal,
        }
    }

    /// The RL rollout policy: no grammar masking (the policy must learn
    /// the grammar) — but PAD is still masked, because PAD is a data
    /// artifact the reward can never see past — and the terminator is
    /// kept in the trajectory so it can be scored.
    pub fn unconstrained(start: TokenId, end: TokenId, pad: TokenId) -> SamplingPolicy {
        SamplingPolicy {
            start,
            end,
            pad: Some(pad),
            keep_end: true,
            grammar: Grammar::Off,
        }
    }

    /// Replace the grammar level, keeping everything else.
    pub fn with_grammar(mut self, grammar: Grammar) -> SamplingPolicy {
        self.grammar = grammar;
        self
    }

    /// A fresh per-lane grammar state positioned right after the start
    /// token (the implicit leading `VSS`).
    pub fn fresh_state(&self) -> GrammarState {
        match &self.grammar {
            Grammar::Off => GrammarState::Off,
            Grammar::Minimal => GrammarState::Minimal { steps: 0 },
            Grammar::Full(table) => GrammarState::Full {
                auto: table.fresh_automaton(),
                steps: 0,
            },
        }
    }

    /// Advance the grammar state past one token appended to the lane —
    /// prompt tokens at admit time and sampled tokens alike. The
    /// terminator itself is never observed (the lane retires instead).
    pub fn observe(&self, state: &mut GrammarState, token: TokenId) {
        match state {
            GrammarState::Off => {}
            GrammarState::Minimal { steps } => *steps += 1,
            GrammarState::Full { auto, steps } => {
                *steps += 1;
                let node = match &self.grammar {
                    Grammar::Full(table) => table.node(token),
                    _ => None,
                };
                match node {
                    // An illegal append poisons the automaton itself.
                    Some(node) => {
                        auto.append(node);
                    }
                    // Unmappable token (adversarial prompt): degrade to
                    // permissive minimal-style masking for this lane.
                    None => auto.poison(),
                }
            }
        }
    }

    /// Apply the grammar mask to one logit row, given the lane's grammar
    /// state, the last token of the sequence so far, and the number of
    /// tokens the lane may still emit (terminator included — emitting
    /// `end` consumes no budget beyond its own slot). Returns how many
    /// logit entries this call newly set to `-inf`.
    pub fn mask_logits(
        &self,
        state: &GrammarState,
        last: TokenId,
        logits: &mut [f32],
        budget: usize,
    ) -> usize {
        let mut masked = 0;
        if let Some(pad) = self.pad {
            masked += mask_index(logits, pad.index());
        }
        match (state, &self.grammar) {
            (GrammarState::Off, _) => {}
            (GrammarState::Full { auto, .. }, Grammar::Full(table)) if !auto.is_poisoned() => {
                for i in 0..logits.len() {
                    if Some(i) == self.pad.map(TokenId::index) {
                        continue;
                    }
                    if i == self.end.index() {
                        if !auto.can_terminate() {
                            masked += mask_index(logits, i);
                        }
                    } else {
                        let ok = table
                            .node(TokenId(i as u32))
                            .is_some_and(|node| auto.admissible(node, budget));
                        if !ok {
                            masked += mask_index(logits, i);
                        }
                    }
                }
            }
            // Minimal grammar, and the permissive fallback for poisoned
            // automata or a state/policy mismatch: the terminator is
            // inadmissible until the walk has returned to `start` with
            // at least one edge consumed (two walk nodes), so an empty
            // walk can never terminate.
            (GrammarState::Minimal { steps }, _) | (GrammarState::Full { steps, .. }, _) => {
                if last != self.start || *steps < 2 {
                    masked += mask_index(logits, self.end.index());
                }
            }
        }
        masked
    }

    /// Resolve a requested length cap against the model context: `0`
    /// means "use the full context", anything else is clamped to it.
    pub fn clamp_len(requested: usize, context: usize) -> usize {
        if requested == 0 {
            context
        } else {
            requested.min(context)
        }
    }
}

/// Set one logit to `-inf`, reporting 1 if it was not already masked
/// (so the `masked_tokens` metric counts decisions, not re-masks).
fn mask_index(logits: &mut [f32], i: usize) -> usize {
    if i < logits.len() && logits[i] != f32::NEG_INFINITY {
        logits[i] = f32::NEG_INFINITY;
        1
    } else {
        0
    }
}

/// Resolved parameter-index table so the hot loop never does string
/// lookups (the sequential path re-resolves names every step; here the
/// cost is paid once per batch).
struct ParamIdx {
    tok_emb: usize,
    pos_emb: usize,
    lnf_g: usize,
    lnf_b: usize,
    head_w: usize,
    layers: Vec<LayerIdx>,
}

struct LayerIdx {
    ln1_g: usize,
    ln1_b: usize,
    wq: usize,
    wk: usize,
    wv: usize,
    wo: usize,
    ln2_g: usize,
    ln2_b: usize,
    ff_w1: usize,
    ff_b1: usize,
    ff_w2: usize,
    ff_b2: usize,
}

impl ParamIdx {
    fn resolve(model: &Transformer) -> ParamIdx {
        let p = model.params();
        let idx = |name: &str| p.index_of(name).unwrap_or_else(|| panic!("param {name}"));
        ParamIdx {
            tok_emb: idx("tok_emb"),
            pos_emb: idx("pos_emb"),
            lnf_g: idx("lnf.g"),
            lnf_b: idx("lnf.b"),
            head_w: idx("head.w"),
            layers: (0..model.config().n_layers)
                .map(|l| LayerIdx {
                    ln1_g: idx(&format!("l{l}.ln1.g")),
                    ln1_b: idx(&format!("l{l}.ln1.b")),
                    wq: idx(&format!("l{l}.attn.wq")),
                    wk: idx(&format!("l{l}.attn.wk")),
                    wv: idx(&format!("l{l}.attn.wv")),
                    wo: idx(&format!("l{l}.attn.wo")),
                    ln2_g: idx(&format!("l{l}.ln2.g")),
                    ln2_b: idx(&format!("l{l}.ln2.b")),
                    ff_w1: idx(&format!("l{l}.ff.w1")),
                    ff_b1: idx(&format!("l{l}.ff.b1")),
                    ff_w2: idx(&format!("l{l}.ff.w2")),
                    ff_b2: idx(&format!("l{l}.ff.b2")),
                })
                .collect(),
        }
    }
}

/// Incremental decoder state over N lockstep lanes.
///
/// Feed at most one token per lane per [`BatchGenerator::step`]; lanes
/// advance independently (different lengths are fine) and a lane that is
/// not fed costs nothing. Per-lane failures are ordinary values: one bad
/// lane never poisons its batch, and a failed step leaves that lane's
/// cache untouched and usable, exactly like [`crate::Generator::step`].
pub struct BatchGenerator<'m> {
    model: &'m Transformer,
    idx: ParamIdx,
    /// Int8 decode weights; when set, every per-step GEMM uses the
    /// quantized kernel instead of the f32 one. Logits then differ from
    /// f32 decode (by the gated quantization budget) but remain
    /// deterministic across thread counts, SIMD modes, and batch shapes.
    quant: Option<Arc<QuantizedDecodeWeights>>,
    lanes: usize,
    ctx: usize,
    /// Per layer: key arena, `lanes × ctx × d_model`, lane-major.
    k_arena: Vec<Vec<f32>>,
    /// Per layer: value arena, same layout.
    v_arena: Vec<Vec<f32>>,
    /// Per-lane tokens consumed so far.
    t: Vec<usize>,
    // Step scratch, allocated once at lane capacity and reused; every
    // GEMM destination is zeroed over its active prefix before use.
    x: Vec<f32>,
    normed: Vec<f32>,
    qb: Vec<f32>,
    kb: Vec<f32>,
    vb: Vec<f32>,
    ctxb: Vec<f32>,
    attnb: Vec<f32>,
    h1: Vec<f32>,
    h2: Vec<f32>,
    logitsb: Vec<f32>,
}

impl<'m> BatchGenerator<'m> {
    /// Allocate a decoder for up to `lanes` concurrent sequences, with the
    /// KV arena sized for the model's full context.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(model: &'m Transformer, lanes: usize) -> BatchGenerator<'m> {
        Self::new_quantized(model, lanes, None)
    }

    /// [`BatchGenerator::new`], optionally decoding through int8 weights.
    /// The quantized set must cover the same model (checked lazily via the
    /// per-GEMM shape asserts).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new_quantized(
        model: &'m Transformer,
        lanes: usize,
        quant: Option<Arc<QuantizedDecodeWeights>>,
    ) -> BatchGenerator<'m> {
        assert!(lanes > 0, "at least one lane");
        let cfg = *model.config();
        let (d, ctx) = (cfg.d_model, cfg.max_seq_len);
        let arena = || vec![vec![0.0f32; lanes * ctx * d]; cfg.n_layers];
        BatchGenerator {
            idx: ParamIdx::resolve(model),
            model,
            quant,
            lanes,
            ctx,
            k_arena: arena(),
            v_arena: arena(),
            t: vec![0; lanes],
            x: vec![0.0; lanes * d],
            normed: vec![0.0; lanes * d],
            qb: vec![0.0; lanes * d],
            kb: vec![0.0; lanes * d],
            vb: vec![0.0; lanes * d],
            ctxb: vec![0.0; lanes * d],
            attnb: vec![0.0; lanes * d],
            h1: vec![0.0; lanes * cfg.d_ff],
            h2: vec![0.0; lanes * d],
            logitsb: vec![0.0; lanes * cfg.vocab_size],
        }
    }

    /// Lane capacity.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether decode runs through int8 weights.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Tokens consumed by `lane` so far.
    pub fn len(&self, lane: usize) -> usize {
        self.t[lane]
    }

    /// Whether `lane` has consumed nothing yet.
    pub fn is_empty(&self, lane: usize) -> bool {
        self.t[lane] == 0
    }

    /// Advance the fed lanes by one token each, in lockstep. Returns one
    /// result per `feed` entry, in order: the lane's next-token logits
    /// `[vocab]`, or the typed error that left its cache untouched.
    ///
    /// # Panics
    ///
    /// Panics if a lane index is out of range or appears twice in `feed` —
    /// caller bugs, unlike the per-lane `InferError`s which model bad
    /// *sequences*.
    pub fn step(&mut self, feed: &[(usize, TokenId)]) -> Vec<Result<Vec<f32>, InferError>> {
        // Chaos seam: stall (latency only — the computed values below are
        // untouched) when a `decode_slow` fault plan is installed.
        fault::sleep(fault::FaultPoint::DecodeSlow);
        let cfg = *self.model.config();
        let d = cfg.d_model;
        let p = self.model.params();
        let tensor = |i: usize| -> &Tensor { p.tensor(i) };
        let qw = self.quant.as_deref();

        // Admission: typed per-lane errors now, so the compute below only
        // ever sees valid (lane, token) pairs.
        let mut results: Vec<Result<Vec<f32>, InferError>> = Vec::with_capacity(feed.len());
        let mut active: Vec<(usize, TokenId)> = Vec::with_capacity(feed.len());
        let mut seen = vec![false; self.lanes];
        for &(lane, token) in feed {
            assert!(
                lane < self.lanes,
                "lane {lane} out of range ({})",
                self.lanes
            );
            assert!(!seen[lane], "lane {lane} fed twice in one step");
            seen[lane] = true;
            if self.t[lane] >= cfg.max_seq_len {
                results.push(Err(InferError::SequenceTooLong {
                    max_seq_len: cfg.max_seq_len,
                }));
            } else if token.index() >= cfg.vocab_size {
                results.push(Err(InferError::TokenOutOfVocab {
                    token,
                    vocab_size: cfg.vocab_size,
                }));
            } else {
                // Placeholder, overwritten with logits below.
                results.push(Ok(Vec::new()));
                active.push((lane, token));
            }
        }
        let a = active.len();
        if a == 0 {
            return results;
        }

        // Embeddings, one row per active lane.
        let tok = tensor(self.idx.tok_emb).data();
        let pos = tensor(self.idx.pos_emb).data();
        for (row, &(lane, token)) in active.iter().enumerate() {
            let xr = &mut self.x[row * d..row * d + d];
            let tr = &tok[token.index() * d..token.index() * d + d];
            let pr = &pos[self.t[lane] * d..self.t[lane] * d + d];
            for j in 0..d {
                xr[j] = tr[j] + pr[j];
            }
        }

        let heads = cfg.n_heads;
        let dh = cfg.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        for (l, li) in self.idx.layers.iter().enumerate() {
            // --- Attention.
            let g1 = tensor(li.ln1_g).data();
            let b1 = tensor(li.ln1_b).data();
            for row in 0..a {
                layer_norm_row_into(
                    &self.x[row * d..row * d + d],
                    g1,
                    b1,
                    &mut self.normed[row * d..row * d + d],
                );
            }
            self.qb[..a * d].fill(0.0);
            self.kb[..a * d].fill(0.0);
            self.vb[..a * d].fill(0.0);
            let nm = &self.normed[..a * d];
            let q = |pick: fn(&QuantizedDecodeWeights, usize) -> &QuantizedMatrix| {
                qw.map(|w| pick(w, l))
            };
            decode_mm(
                q(QuantizedDecodeWeights::wq),
                tensor(li.wq).data(),
                nm,
                &mut self.qb[..a * d],
                a,
                d,
                d,
            );
            decode_mm(
                q(QuantizedDecodeWeights::wk),
                tensor(li.wk).data(),
                nm,
                &mut self.kb[..a * d],
                a,
                d,
                d,
            );
            decode_mm(
                q(QuantizedDecodeWeights::wv),
                tensor(li.wv).data(),
                nm,
                &mut self.vb[..a * d],
                a,
                d,
                d,
            );
            // Scatter this step's keys/values into the arena.
            for (row, &(lane, _)) in active.iter().enumerate() {
                let slot = (lane * self.ctx + self.t[lane]) * d;
                self.k_arena[l][slot..slot + d].copy_from_slice(&self.kb[row * d..row * d + d]);
                self.v_arena[l][slot..slot + d].copy_from_slice(&self.vb[row * d..row * d + d]);
            }
            // Per-lane causal attention over the arena (O(t·d) per lane;
            // the weight-streaming cost this module batches lives in the
            // GEMMs, not here). (row, head) slots are independent and the
            // ctxb window of slot `row*heads + h` is exactly the dh-wide
            // stripe `[row*d + h*dh, row*d + (h+1)*dh)` (d = heads·dh), so
            // slot-parallel execution writes disjoint rows and keeps every
            // per-slot accumulation order — bit-identical to the serial
            // loop and to the sequential generator.
            self.ctxb[..a * d].fill(0.0);
            let tmax = active
                .iter()
                .map(|&(lane, _)| self.t[lane])
                .max()
                .unwrap_or(0);
            let min_slots = (16 * 1024 / ((tmax + 1) * dh).max(1)).max(1);
            let k_l: &[f32] = &self.k_arena[l];
            let v_l: &[f32] = &self.v_arena[l];
            let qb: &[f32] = &self.qb;
            let t: &[usize] = &self.t;
            let ctx = self.ctx;
            let active_s: &[(usize, TokenId)] = &active;
            par_rows_mut(
                pool::global(),
                &mut self.ctxb[..a * d],
                dh,
                min_slots,
                |slot, ctxs| {
                    let row = slot / heads;
                    let off = slot % heads * dh;
                    let (lane, _) = active_s[row];
                    let steps = t[lane] + 1;
                    let base = lane * ctx;
                    let q = &qb[row * d + off..row * d + off + dh];
                    let mut scores = Vec::with_capacity(steps);
                    let mut maxv = f32::NEG_INFINITY;
                    for j in 0..steps {
                        let krow = &k_l[(base + j) * d + off..(base + j) * d + off + dh];
                        let mut s = 0.0f32;
                        for c in 0..dh {
                            s += q[c] * krow[c];
                        }
                        s *= scale;
                        maxv = maxv.max(s);
                        scores.push(s);
                    }
                    let mut denom = 0.0f32;
                    for s in &mut scores {
                        *s = (*s - maxv).exp();
                        denom += *s;
                    }
                    for j in 0..steps {
                        let w = scores[j] / denom;
                        let vrow = &v_l[(base + j) * d + off..(base + j) * d + off + dh];
                        for c in 0..dh {
                            ctxs[c] += w * vrow[c];
                        }
                    }
                },
            );
            self.attnb[..a * d].fill(0.0);
            decode_mm(
                q(QuantizedDecodeWeights::wo),
                tensor(li.wo).data(),
                &self.ctxb[..a * d],
                &mut self.attnb[..a * d],
                a,
                d,
                d,
            );
            for i in 0..a * d {
                self.x[i] += self.attnb[i];
            }

            // --- MLP.
            let g2 = tensor(li.ln2_g).data();
            let b2 = tensor(li.ln2_b).data();
            for row in 0..a {
                layer_norm_row_into(
                    &self.x[row * d..row * d + d],
                    g2,
                    b2,
                    &mut self.normed[row * d..row * d + d],
                );
            }
            self.h1[..a * cfg.d_ff].fill(0.0);
            decode_mm(
                q(QuantizedDecodeWeights::ff_w1),
                tensor(li.ff_w1).data(),
                &self.normed[..a * d],
                &mut self.h1[..a * cfg.d_ff],
                a,
                d,
                cfg.d_ff,
            );
            let bias1 = tensor(li.ff_b1).data();
            for row in 0..a {
                let hr = &mut self.h1[row * cfg.d_ff..(row + 1) * cfg.d_ff];
                for (val, &b) in hr.iter_mut().zip(bias1) {
                    *val = crate::infer::gelu(*val + b);
                }
            }
            self.h2[..a * d].fill(0.0);
            decode_mm(
                q(QuantizedDecodeWeights::ff_w2),
                tensor(li.ff_w2).data(),
                &self.h1[..a * cfg.d_ff],
                &mut self.h2[..a * d],
                a,
                cfg.d_ff,
                d,
            );
            let bias2 = tensor(li.ff_b2).data();
            for row in 0..a {
                let xr = &mut self.x[row * d..row * d + d];
                let hr = &self.h2[row * d..row * d + d];
                for j in 0..d {
                    xr[j] += hr[j] + bias2[j];
                }
            }
        }

        // Final norm + logit head.
        let gf = tensor(self.idx.lnf_g).data();
        let bf = tensor(self.idx.lnf_b).data();
        for row in 0..a {
            layer_norm_row_into(
                &self.x[row * d..row * d + d],
                gf,
                bf,
                &mut self.normed[row * d..row * d + d],
            );
        }
        let v = cfg.vocab_size;
        self.logitsb[..a * v].fill(0.0);
        decode_mm(
            qw.map(QuantizedDecodeWeights::head_w),
            tensor(self.idx.head_w).data(),
            &self.normed[..a * d],
            &mut self.logitsb[..a * v],
            a,
            d,
            v,
        );

        // Commit: advance fed lanes and hand out their logit rows.
        let mut row = 0usize;
        for res in results.iter_mut() {
            if res.is_ok() {
                let (lane, _) = active[row];
                self.t[lane] += 1;
                *res = Ok(self.logitsb[row * v..(row + 1) * v].to_vec());
                row += 1;
            }
        }
        results
    }

    /// Reclaim `lane` for a new sequence: O(1), no arena clearing needed.
    ///
    /// Attention only ever reads positions `0..t[lane]` and a feed fully
    /// overwrites its position's K/V rows, so stale rows from the previous
    /// occupant are never observed. This is what lets a retired lane's KV
    /// slot be handed to a queued request within the same decode
    /// iteration instead of sitting occupied until the whole batch drains.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn reset_lane(&mut self, lane: usize) {
        assert!(
            lane < self.lanes,
            "lane {lane} out of range ({})",
            self.lanes
        );
        self.t[lane] = 0;
    }

    /// Copy `lane`'s first `len` cached K/V rows out of the arena, one
    /// `len × d_model` block per layer — the raw material of a prefix
    /// cache entry.
    pub(crate) fn read_prefix(&self, lane: usize, len: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        debug_assert!(len <= self.t[lane], "prefix longer than lane contents");
        let d = self.model.config().d_model;
        let base = lane * self.ctx * d;
        let grab = |arena: &[Vec<f32>]| -> Vec<Vec<f32>> {
            arena
                .iter()
                .map(|layer| layer[base..base + len * d].to_vec())
                .collect()
        };
        (grab(&self.k_arena), grab(&self.v_arena))
    }

    /// Copy-on-admit: install `len` cached K/V rows as `lane`'s first
    /// `len` positions and mark them consumed, so decoding resumes at
    /// position `len` without recomputing the prefix. The rows must have
    /// been produced by [`BatchGenerator::read_prefix`] on the same model;
    /// bit-identical per-row compute makes them interchangeable with the
    /// rows this lane would have computed itself.
    pub(crate) fn write_prefix(&mut self, lane: usize, k: &[Vec<f32>], v: &[Vec<f32>], len: usize) {
        assert!(len <= self.ctx, "prefix exceeds model context");
        let d = self.model.config().d_model;
        let base = lane * self.ctx * d;
        for (dst, src) in self.k_arena.iter_mut().zip(k) {
            dst[base..base + len * d].copy_from_slice(&src[..len * d]);
        }
        for (dst, src) in self.v_arena.iter_mut().zip(v) {
            dst[base..base + len * d].copy_from_slice(&src[..len * d]);
        }
        self.t[lane] = len;
    }
}

/// One lane of work for [`decode_batch`]: its RNG (seed it per lane for
/// deterministic, batch-independent output) and sampling parameters.
#[derive(Debug)]
pub struct LaneRequest<R> {
    /// Per-lane RNG; one draw per sampled token, so a lane's stream never
    /// depends on its neighbors.
    pub rng: R,
    /// Sampling temperature (> 0).
    pub temperature: f32,
    /// Top-k cutoff (`None` = full vocabulary).
    pub top_k: Option<usize>,
    /// Sequence length cap, counting the start token and prompt; clamped
    /// to the model context. (`0` is honored literally — resolve "0 means
    /// full context" conventions with [`SamplingPolicy::clamp_len`].)
    pub max_len: usize,
    /// Tokens fed after the implicit policy start token, before sampling.
    pub prompt: Vec<TokenId>,
}

impl<R> LaneRequest<R> {
    /// A lane with no prompt and the given cap, using policy-free
    /// defaults the callers override as needed.
    pub fn new(rng: R, temperature: f32, top_k: Option<usize>, max_len: usize) -> LaneRequest<R> {
        LaneRequest {
            rng,
            temperature,
            top_k,
            max_len,
            prompt: Vec::new(),
        }
    }
}

/// What one lane produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneOutput {
    /// The decoded walk: the policy start token, the prompt, then sampled
    /// tokens; the terminator is included iff the policy keeps it.
    pub tokens: Vec<TokenId>,
    /// Tokens actually sampled (excludes the start token and prompt).
    pub sampled: usize,
    /// The typed error that retired this lane early, if any. `tokens`
    /// holds everything accumulated before the failure.
    pub error: Option<InferError>,
}

impl LaneOutput {
    /// Whether the lane finished without an inference error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// One cached prompt prefix: its tokens, the per-layer K/V rows those
/// tokens produced, and the unmasked next-token logits after the last
/// prefix token (so a full-prefix match skips the entire prefill,
/// including the final forward pass).
struct PrefixEntry {
    tokens: Vec<TokenId>,
    /// Per layer: `tokens.len() × d_model` key rows.
    k: Vec<Vec<f32>>,
    /// Per layer: value rows, same layout.
    v: Vec<Vec<f32>>,
    /// Unmasked logits after feeding the full prefix (masking depends on
    /// the reusing lane's own last token, so it is applied at use time).
    logits: Vec<f32>,
    /// Grammar state after observing the full prefix. A full-prefix hit
    /// restores this instead of replaying the tokens; both routes agree
    /// because the state is a pure function of the token sequence.
    grammar: GrammarState,
}

/// Bounded copy-on-admit prefix cache.
///
/// Entries are keyed by exact token sequence but *matched* by longest
/// common prefix: a cached `[VSS, A, B]` serves the first two positions
/// of a lane prompting `[VSS, A, C]`, because causal K/V rows at position
/// `j` depend only on tokens `0..=j`. Cache state never changes output
/// values — only which positions are copied instead of recomputed — so
/// the determinism contract survives any hit/miss/eviction pattern.
struct PrefixCache {
    entries: Vec<PrefixEntry>,
    capacity: usize,
    hits: u64,
    tokens_reused: u64,
}

impl PrefixCache {
    fn new(capacity: usize) -> PrefixCache {
        PrefixCache {
            entries: Vec::new(),
            capacity,
            hits: 0,
            tokens_reused: 0,
        }
    }

    /// Whether `key` is worth inserting (cache enabled, not already held).
    fn wants(&self, key: &[TokenId]) -> bool {
        self.capacity > 0 && !self.entries.iter().any(|e| e.tokens == key)
    }

    /// The entry sharing the longest common prefix with `seq`, as
    /// `(entry index, matched length)`; ties keep the oldest entry.
    fn longest_match(&self, seq: &[TokenId]) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let m = e.tokens.iter().zip(seq).take_while(|(a, b)| a == b).count();
            if m > 0 && best.is_none_or(|(_, bm)| m > bm) {
                best = Some((i, m));
            }
        }
        best
    }

    fn insert(
        &mut self,
        tokens: Vec<TokenId>,
        k: Vec<Vec<f32>>,
        v: Vec<Vec<f32>>,
        logits: Vec<f32>,
        grammar: GrammarState,
    ) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0); // FIFO: oldest prefix goes first
        }
        self.entries.push(PrefixEntry {
            tokens,
            k,
            v,
            logits,
            grammar,
        });
    }
}

/// One occupied slot of a [`ContinuousBatch`]: the request's sampling
/// state plus the bookkeeping that lets it join and leave mid-flight.
struct Slot<R> {
    tokens: Vec<TokenId>,
    /// Tokens consumed by the model so far (feeds + injected prefix rows).
    fed: usize,
    /// Length of the prefill (start token + prompt) — the cache-insert
    /// point: the iteration `fed` first reaches this, the prefix's K/V
    /// rows and logits are complete and cacheable.
    prefill: usize,
    limit: usize,
    sampled: usize,
    temperature: f32,
    top_k: Option<usize>,
    rng: R,
    /// Logits carried over from a full-prefix cache hit: the slot's first
    /// step samples from these instead of feeding anything.
    pending_logits: Option<Vec<f32>>,
    /// Grammar state after observing every token in `tokens` (restored
    /// from the cache on a full-prefix hit, replayed otherwise).
    grammar: GrammarState,
    /// Whether this slot has drawn its first sampled token (TTFT edge).
    first_drawn: bool,
    /// Set at admit when the request is already at its length cap and
    /// needs no compute at all; the next [`ContinuousBatch::step`]
    /// retires it.
    complete: bool,
    error: Option<InferError>,
}

/// What one [`ContinuousBatch::step`] did.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Slots that retired this iteration, with their finished outputs.
    /// The slot index is free for re-admission the moment this returns.
    pub completed: Vec<(usize, LaneOutput)>,
    /// Slots that drew their *first* sampled token this iteration
    /// (time-to-first-token instrumentation point).
    pub first_tokens: Vec<usize>,
    /// Slots occupied while this iteration ran (lane-occupancy numerator;
    /// capacity is the denominator).
    pub active: usize,
}

/// Iteration-level scheduler over a [`BatchGenerator`] slot pool.
///
/// Unlike the run-to-completion [`decode_batch`] loop of old, the pool
/// never restarts: [`ContinuousBatch::admit`] installs a request into any
/// free slot — including one freed by a retirement in the immediately
/// preceding [`ContinuousBatch::step`] — and each `step` advances every
/// occupied slot by one token. Callers alternate `admit` (until full or
/// out of work) with `step`, collecting completions as they surface.
///
/// Admission consults the prefix cache: the longest cached common prefix
/// of the lane's prefill is copied into its KV slot instead of being
/// recomputed, and a full-prefill match skips straight to sampling via
/// the entry's stored logits. Outputs remain bit-identical to solo decode
/// regardless (see the module docs for the argument).
pub struct ContinuousBatch<'m, R> {
    gen: BatchGenerator<'m>,
    policy: SamplingPolicy,
    ctx: usize,
    slots: Vec<Option<Slot<R>>>,
    /// Free slot indices, LIFO.
    free: Vec<usize>,
    cache: PrefixCache,
    /// Logit entries newly masked by the grammar across this pool's
    /// lifetime (the serve `masked_tokens` metric).
    masked_tokens: u64,
}

impl<'m, R: Rng> ContinuousBatch<'m, R> {
    /// A pool of `max_lanes` KV slots decoding under `policy`, with a
    /// prefix cache holding up to `prefix_cache_entries` cached prompt
    /// prefixes (`0` disables prefix reuse).
    ///
    /// # Panics
    ///
    /// Panics if `max_lanes` is zero.
    pub fn new(
        model: &'m Transformer,
        max_lanes: usize,
        policy: SamplingPolicy,
        prefix_cache_entries: usize,
    ) -> ContinuousBatch<'m, R> {
        Self::new_quantized(model, max_lanes, policy, prefix_cache_entries, None)
    }

    /// [`ContinuousBatch::new`], optionally decoding through int8 weights.
    ///
    /// Prefix-cache entries are computed and reused within one pool, so a
    /// quantized pool's cached K/V rows are quantized-consistent — the
    /// reuse argument in the module docs holds unchanged, just relative to
    /// quantized solo decode instead of f32 solo decode.
    ///
    /// # Panics
    ///
    /// Panics if `max_lanes` is zero.
    pub fn new_quantized(
        model: &'m Transformer,
        max_lanes: usize,
        policy: SamplingPolicy,
        prefix_cache_entries: usize,
        quant: Option<Arc<QuantizedDecodeWeights>>,
    ) -> ContinuousBatch<'m, R> {
        let gen = BatchGenerator::new_quantized(model, max_lanes, quant);
        ContinuousBatch {
            ctx: model.config().max_seq_len,
            gen,
            policy,
            slots: (0..max_lanes).map(|_| None).collect(),
            // Reverse so the first admissions take slots 0, 1, 2, …
            free: (0..max_lanes).rev().collect(),
            cache: PrefixCache::new(prefix_cache_entries),
            masked_tokens: 0,
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether decode runs through int8 weights.
    pub fn is_quantized(&self) -> bool {
        self.gen.is_quantized()
    }

    /// Slots currently decoding.
    pub fn occupied(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Slots available for [`ContinuousBatch::admit`] right now.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Prefix-cache hits across this pool's lifetime.
    pub fn prefix_hits(&self) -> u64 {
        self.cache.hits
    }

    /// Total KV positions served from the prefix cache instead of being
    /// recomputed.
    pub fn prefix_tokens_reused(&self) -> u64 {
        self.cache.tokens_reused
    }

    /// Logit entries the grammar newly masked across this pool's
    /// lifetime (one count per token choice removed per sampling step).
    pub fn masked_tokens(&self) -> u64 {
        self.masked_tokens
    }

    /// Join `req` into the running batch mid-flight. Returns the slot
    /// index it occupies, or gives the request back when the pool is
    /// full. The slot starts decoding on the next [`ContinuousBatch::step`].
    pub fn admit(&mut self, req: LaneRequest<R>) -> Result<usize, LaneRequest<R>> {
        let Some(lane) = self.free.pop() else {
            return Err(req);
        };
        let LaneRequest {
            rng,
            temperature,
            top_k,
            max_len,
            prompt,
        } = req;
        let mut tokens = Vec::with_capacity(1 + prompt.len());
        tokens.push(self.policy.start);
        tokens.extend_from_slice(&prompt);
        let prefill = tokens.len();
        let limit = max_len.min(self.ctx);
        self.gen.reset_lane(lane);

        // Copy-on-admit prefix reuse. A full-prefill match against a
        // same-length entry restores the stored logits too and skips the
        // prefill entirely; a partial match (or a longer entry, which has
        // no logits for our cut point) injects all but the last prefill
        // position and feeds the rest normally. Either way the injected
        // rows are bit-identical to what this lane would have computed.
        let mut fed = 0usize;
        let mut pending_logits = None;
        let mut grammar = None;
        if let Some((idx, matched)) = self.cache.longest_match(&tokens) {
            let full = matched == prefill && matched == self.cache.entries[idx].tokens.len();
            let inject = if full {
                prefill
            } else {
                matched.min(prefill.saturating_sub(1))
            };
            if inject > 0 {
                let entry = &self.cache.entries[idx];
                self.gen.write_prefix(lane, &entry.k, &entry.v, inject);
                if full {
                    pending_logits = Some(entry.logits.clone());
                    // Restore the stored automaton with the KV rows: same
                    // token sequence, same state, no replay needed.
                    grammar = Some(entry.grammar.clone());
                }
                fed = inject;
                self.cache.hits += 1;
                self.cache.tokens_reused += inject as u64;
            }
        }
        // Cache miss (or partial hit): replay the prefill through the
        // grammar. The start token is the automaton's implicit origin.
        let grammar = grammar.unwrap_or_else(|| {
            let mut state = self.policy.fresh_state();
            for &t in &tokens[1..] {
                self.policy.observe(&mut state, t);
            }
            state
        });

        // A request already at its cap needs no compute; mirror
        // decode_batch semantics (no samples, no RNG draws) but only when
        // the model never has to see the sequence — otherwise the prefill
        // still runs so errors surface identically to solo decode.
        let complete = pending_logits.is_some() && prefill >= limit;

        self.slots[lane] = Some(Slot {
            tokens,
            fed,
            prefill,
            limit,
            sampled: 0,
            temperature,
            top_k,
            rng,
            pending_logits: if complete { None } else { pending_logits },
            grammar,
            first_drawn: false,
            complete,
            error: None,
        });
        Ok(lane)
    }

    /// Advance every occupied slot by one token: retire slots admitted at
    /// their cap, sample slots holding cached prefix logits, and feed one
    /// pending token per remaining slot through a single batched
    /// [`BatchGenerator::step`]. Retired slots are back on the free list
    /// when this returns — the same iteration, not the end of the batch.
    pub fn step(&mut self) -> StepOutcome {
        let mut outcome = StepOutcome {
            active: self.occupied(),
            ..StepOutcome::default()
        };

        // Slots finished at admission (full prefix hit at the length cap).
        for lane in 0..self.slots.len() {
            if self.slots[lane].as_ref().is_some_and(|s| s.complete) {
                Self::retire(&mut self.slots, &mut self.free, lane, &mut outcome);
            }
        }

        // Slots whose full prefill came out of the prefix cache sample
        // from the stored logits — no feed, no recompute.
        let pending: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(lane, s)| {
                s.as_ref()
                    .and_then(|s| s.pending_logits.is_some().then_some(lane))
            })
            .collect();
        for lane in pending {
            let logits = self.slots[lane]
                .as_mut()
                .expect("pending lane occupied")
                .pending_logits
                .take()
                .expect("pending logits present");
            self.advance(lane, logits, false, &mut outcome);
        }

        // Everyone else feeds one token in lockstep.
        let feed: Vec<(usize, TokenId)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(lane, s)| s.as_ref().map(|s| (lane, s.tokens[s.fed])))
            .collect();
        if feed.is_empty() {
            return outcome;
        }
        let results = self.gen.step(&feed);
        for ((lane, _), result) in feed.into_iter().zip(results) {
            match result {
                Err(e) => {
                    self.slots[lane].as_mut().expect("fed lane occupied").error = Some(e);
                    Self::retire(&mut self.slots, &mut self.free, lane, &mut outcome);
                }
                Ok(logits) => self.advance(lane, logits, true, &mut outcome),
            }
        }
        outcome
    }

    /// Post-forward bookkeeping for one slot: prefill accounting (and the
    /// cache-insert point), then the sampling step — byte-for-byte the
    /// decision sequence of the old run-to-completion loop, so outputs
    /// stay pinned to solo decode.
    fn advance(
        &mut self,
        lane: usize,
        mut logits: Vec<f32>,
        fed_now: bool,
        outcome: &mut StepOutcome,
    ) {
        let policy = self.policy.clone();
        if fed_now {
            let key = {
                let s = self.slots[lane].as_mut().expect("advancing occupied lane");
                s.fed += 1;
                if s.fed < s.tokens.len() {
                    return; // still prefilling the prompt
                }
                (s.fed == s.prefill).then(|| (s.tokens[..s.prefill].to_vec(), s.grammar.clone()))
            };
            // Prefill just completed through the model: its K/V rows,
            // these (unmasked) logits, and the grammar state after the
            // prefill are exactly a cache entry.
            if let Some((key, grammar)) = key {
                if self.cache.wants(&key) {
                    let (k, v) = self.gen.read_prefix(lane, key.len());
                    self.cache.insert(key, k, v, logits.clone(), grammar);
                }
            }
        }

        let mut masked_now = 0u64;
        let retire_now = {
            let s = self.slots[lane].as_mut().expect("advancing occupied lane");
            if s.tokens.len() >= s.limit {
                true
            } else {
                let last = *s.tokens.last().expect("lane starts non-empty");
                // Budget: slots left before the cap. The terminator only
                // ever consumes the final slot, so a closing plan that
                // exactly fills the budget still terminates legally.
                let budget = s.limit - s.tokens.len();
                masked_now = policy.mask_logits(&s.grammar, last, &mut logits, budget) as u64;
                match sample_logits(&logits, s.temperature, s.top_k, &mut s.rng) {
                    // Fully-masked row: retire with the typed error and
                    // no RNG draw, exactly like solo decode.
                    Err(e) => {
                        s.error = Some(e);
                        true
                    }
                    Ok(next) => {
                        let next = TokenId(next as u32);
                        if !s.first_drawn {
                            s.first_drawn = true;
                            outcome.first_tokens.push(lane);
                        }
                        if next == policy.end {
                            if policy.keep_end {
                                s.tokens.push(next);
                                s.sampled += 1;
                            }
                            true
                        } else {
                            policy.observe(&mut s.grammar, next);
                            s.tokens.push(next);
                            s.sampled += 1;
                            s.tokens.len() >= s.limit
                        }
                    }
                }
            }
        };
        self.masked_tokens += masked_now;
        if retire_now {
            Self::retire(&mut self.slots, &mut self.free, lane, outcome);
        }
    }

    fn retire(
        slots: &mut [Option<Slot<R>>],
        free: &mut Vec<usize>,
        lane: usize,
        outcome: &mut StepOutcome,
    ) {
        let s = slots[lane].take().expect("retiring an occupied lane");
        free.push(lane);
        outcome.completed.push((
            lane,
            LaneOutput {
                tokens: s.tokens,
                sampled: s.sampled,
                error: s.error,
            },
        ));
    }
}

/// Prefix-cache entries [`decode_batch_bounded`] gives its internal pool:
/// enough for the universal start-token prefix plus a handful of hot
/// prompts, cheap enough to be free for unprompted lanes.
const DECODE_PREFIX_ENTRIES: usize = 8;

/// Decode every lane to completion and return the outputs in lane order.
///
/// Equivalent to [`decode_batch_bounded`] with the pool sized to the lane
/// count: all lanes are admitted up front and decode jointly. Lanes
/// retire independently — on their terminator, their length cap, or a
/// typed error — and their slots stop costing compute the moment they do.
/// Output is token-for-token identical to running each lane alone through
/// [`crate::Generator`] with the same RNG.
pub fn decode_batch<R: Rng>(
    model: &Transformer,
    policy: &SamplingPolicy,
    lanes: Vec<LaneRequest<R>>,
) -> Vec<LaneOutput> {
    decode_batch_bounded(model, policy, lanes, 0)
}

/// Decode every lane to completion through a bounded continuous-batching
/// pool of at most `max_lanes` concurrent KV slots (`0` means one slot
/// per lane), returning outputs in request order.
///
/// With fewer slots than lanes, queued requests join mid-flight as
/// earlier lanes retire — the KV arena stays small and fully utilized
/// while every weight sweep is still amortized over every occupied slot.
/// Per-request outputs are bit-identical to [`decode_batch`] and to solo
/// decode, whatever the admission interleaving.
pub fn decode_batch_bounded<R: Rng>(
    model: &Transformer,
    policy: &SamplingPolicy,
    lanes: Vec<LaneRequest<R>>,
    max_lanes: usize,
) -> Vec<LaneOutput> {
    decode_batch_quantized(model, policy, lanes, max_lanes, None)
}

/// [`decode_batch_bounded`], optionally decoding through int8 weights —
/// the batch driver behind `--quantize int8` benches and the f32-vs-int8
/// accuracy-budget test. With `quant: None` this *is*
/// [`decode_batch_bounded`]; with a quantized set, outputs are
/// deterministic but carry the quantization error budget instead of
/// f32-bit-identity to solo decode.
pub fn decode_batch_quantized<R: Rng>(
    model: &Transformer,
    policy: &SamplingPolicy,
    lanes: Vec<LaneRequest<R>>,
    max_lanes: usize,
    quant: Option<Arc<QuantizedDecodeWeights>>,
) -> Vec<LaneOutput> {
    let n = lanes.len();
    if n == 0 {
        return Vec::new();
    }
    let cap = if max_lanes == 0 { n } else { max_lanes.min(n) };
    let mut pool: ContinuousBatch<'_, R> =
        ContinuousBatch::new_quantized(model, cap, policy.clone(), DECODE_PREFIX_ENTRIES, quant);
    let mut queue: std::collections::VecDeque<(usize, LaneRequest<R>)> =
        lanes.into_iter().enumerate().collect();
    let mut origin = vec![usize::MAX; cap];
    let mut out: Vec<Option<LaneOutput>> = (0..n).map(|_| None).collect();
    while pool.occupied() > 0 || !queue.is_empty() {
        while pool.free_slots() > 0 {
            let Some((i, req)) = queue.pop_front() else {
                break;
            };
            match pool.admit(req) {
                Ok(slot) => origin[slot] = i,
                Err(_) => unreachable!("free slot was checked"),
            }
        }
        for (slot, output) in pool.step().completed {
            out[origin[slot]] = Some(output);
        }
    }
    out.into_iter()
        .map(|o| o.expect("every admitted lane completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::infer::Generator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model() -> Transformer {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        Transformer::new(ModelConfig::tiny(13, 24), &mut rng)
    }

    #[test]
    fn batched_logits_bit_identical_to_sequential() {
        let model = tiny_model();
        // Three lanes stepping different token streams of different
        // lengths; every returned logit row must equal the sequential
        // generator's bit for bit.
        let streams: [&[u32]; 3] = [&[2, 5, 3, 8, 11], &[4, 4, 4], &[12, 0, 7, 1]];
        let mut gen = BatchGenerator::new(&model, 3);
        let mut refs: Vec<Generator<'_>> = (0..3).map(|_| Generator::new(&model)).collect();
        for step in 0..5 {
            let feed: Vec<(usize, TokenId)> = streams
                .iter()
                .enumerate()
                .filter(|(_, s)| step < s.len())
                .map(|(lane, s)| (lane, TokenId(s[step])))
                .collect();
            if feed.is_empty() {
                break;
            }
            let results = gen.step(&feed);
            for (&(lane, token), res) in feed.iter().zip(results) {
                let batched = res.expect("within vocab and context");
                let sequential = refs[lane].step(token).expect("within vocab and context");
                assert_eq!(batched.len(), sequential.len());
                for (a, b) in batched.iter().zip(&sequential) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "lane {lane} step {step}: {a} vs {b}"
                    );
                }
            }
        }
        for (lane, s) in streams.iter().enumerate() {
            assert_eq!(gen.len(lane), s.len());
        }
    }

    #[test]
    fn per_lane_errors_are_typed_and_isolated() {
        let model = tiny_model(); // vocab 13, context 24
        let mut gen = BatchGenerator::new(&model, 2);
        let results = gen.step(&[(0, TokenId(99)), (1, TokenId(2))]);
        assert_eq!(
            results[0],
            Err(InferError::TokenOutOfVocab {
                token: TokenId(99),
                vocab_size: 13
            })
        );
        assert!(results[1].is_ok(), "healthy lane unaffected");
        assert_eq!(gen.len(0), 0, "failed lane's cache untouched");
        assert_eq!(gen.len(1), 1);
        // Fill lane 1 to the context limit; lane 0 stays usable.
        for _ in 1..24 {
            let r = gen.step(&[(1, TokenId(2))]);
            assert!(r[0].is_ok());
        }
        let results = gen.step(&[(0, TokenId(3)), (1, TokenId(2))]);
        assert!(results[0].is_ok(), "lane 0 still decodes");
        assert_eq!(
            results[1],
            Err(InferError::SequenceTooLong { max_seq_len: 24 })
        );
    }

    #[test]
    fn retired_lanes_cost_nothing_and_feed_panics_on_reuse() {
        let model = tiny_model();
        let mut gen = BatchGenerator::new(&model, 4);
        // Only feed two of four lanes; the others must stay empty.
        let results = gen.step(&[(1, TokenId(2)), (3, TokenId(5))]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(gen.len(0), 0);
        assert_eq!(gen.len(1), 1);
        assert_eq!(gen.len(2), 0);
        assert_eq!(gen.len(3), 1);
    }

    #[test]
    #[should_panic(expected = "fed twice")]
    fn duplicate_lane_in_feed_panics() {
        let model = tiny_model();
        let mut gen = BatchGenerator::new(&model, 2);
        let _ = gen.step(&[(0, TokenId(2)), (0, TokenId(3))]);
    }

    #[test]
    fn sampling_policy_masks_as_documented() {
        let policy = SamplingPolicy::constrained(TokenId(2), TokenId(1), TokenId(0));
        let mut state = policy.fresh_state();
        let mut logits = vec![1.0f32; 5];
        let masked = policy.mask_logits(&state, TokenId(2), &mut logits, 16);
        assert_eq!(logits[0], f32::NEG_INFINITY, "pad always masked");
        assert_eq!(
            logits[1],
            f32::NEG_INFINITY,
            "end masked on the empty walk (regression: zero-device termination)"
        );
        assert_eq!(masked, 2, "two choices removed, both counted");

        // Walk start -> X -> start: back home with an edge consumed.
        policy.observe(&mut state, TokenId(4));
        policy.observe(&mut state, TokenId(2));
        let mut logits = vec![1.0f32; 5];
        policy.mask_logits(&state, TokenId(2), &mut logits, 16);
        assert_eq!(logits[1], 1.0, "end admissible once the walk can close");
        let mut logits = vec![1.0f32; 5];
        policy.mask_logits(&state, TokenId(4), &mut logits, 16);
        assert_eq!(logits[1], f32::NEG_INFINITY, "end masked away from start");

        let free = SamplingPolicy::unconstrained(TokenId(2), TokenId(1), TokenId(0));
        let state = free.fresh_state();
        let mut logits = vec![1.0f32; 5];
        let masked = free.mask_logits(&state, TokenId(4), &mut logits, 16);
        assert_eq!(
            logits[0],
            f32::NEG_INFINITY,
            "pad masked even unconstrained (regression: PAD in PPO rollouts)"
        );
        assert_eq!(masked, 1);
        assert!(logits[1..].iter().all(|&v| v == 1.0), "grammar untouched");
    }

    #[test]
    fn clamp_len_resolves_zero_to_context() {
        assert_eq!(SamplingPolicy::clamp_len(0, 128), 128);
        assert_eq!(SamplingPolicy::clamp_len(64, 128), 64);
        assert_eq!(SamplingPolicy::clamp_len(999, 128), 128);
    }

    #[test]
    fn reset_lane_reuses_slot_bit_identically() {
        let model = tiny_model();
        let mut gen = BatchGenerator::new(&model, 2);
        // Occupy lane 0 with one stream, then reclaim it for another
        // while lane 1 keeps decoding; the reused slot must produce the
        // same bits as a fresh generator fed the second stream alone.
        for &tok in &[2u32, 5, 3] {
            let r = gen.step(&[(0, TokenId(tok)), (1, TokenId(4))]);
            assert!(r.iter().all(Result::is_ok));
        }
        gen.reset_lane(0);
        assert_eq!(gen.len(0), 0);
        assert_eq!(gen.len(1), 3, "neighbor untouched by reclamation");

        let mut fresh = BatchGenerator::new(&model, 1);
        for &tok in &[7u32, 1, 9, 6] {
            let reused = gen.step(&[(0, TokenId(tok)), (1, TokenId(4))]);
            let solo = fresh.step(&[(0, TokenId(tok))]);
            let a = reused[0].as_ref().expect("reused lane ok");
            let b = solo[0].as_ref().expect("fresh lane ok");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "stale arena rows leaked");
            }
        }
    }

    #[test]
    fn prefix_rows_round_trip_through_the_arena() {
        let model = tiny_model();
        let mut gen = BatchGenerator::new(&model, 2);
        let stream = [2u32, 5, 3, 8];
        for &tok in &stream {
            assert!(gen.step(&[(0, TokenId(tok))])[0].is_ok());
        }
        // Copy lane 0's first three positions into lane 1; feeding the
        // fourth token must match lane 0's fourth-step logits bit for bit.
        let (k, v) = gen.read_prefix(0, 3);
        gen.write_prefix(1, &k, &v, 3);
        assert_eq!(gen.len(1), 3);
        let mut replay = BatchGenerator::new(&model, 1);
        for &tok in &stream {
            let _ = replay.step(&[(0, TokenId(tok))]);
        }
        let via_prefix = gen.step(&[(1, TokenId(8))]);
        // Note: lane 0 already consumed token 8, so compare against the
        // dedicated replay generator.
        let a = via_prefix[0].as_ref().expect("prefix lane ok");
        let mut solo = BatchGenerator::new(&model, 1);
        for &tok in &stream[..3] {
            let _ = solo.step(&[(0, TokenId(tok))]);
        }
        let b_res = solo.step(&[(0, TokenId(8))]);
        let b = b_res[0].as_ref().expect("solo lane ok");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "injected prefix drifted");
        }
    }

    #[test]
    fn retired_slot_is_reused_within_one_iteration() {
        // Regression for the documented retired-lane waste: a two-slot
        // pool serving three requests must hand the short request's slot
        // to the queued one the same iteration it retires, while the long
        // lane keeps decoding mid-flight.
        let model = tiny_model();
        let policy = SamplingPolicy {
            start: TokenId(2),
            end: TokenId(1),
            pad: Some(TokenId(0)),
            keep_end: false,
            grammar: Grammar::Minimal,
        };
        let mut pool: ContinuousBatch<'_, ChaCha8Rng> = ContinuousBatch::new(&model, 2, policy, 0);
        let req = |seed: u64, max_len: usize| LaneRequest {
            rng: ChaCha8Rng::seed_from_u64(seed),
            temperature: 1.0,
            top_k: Some(5),
            max_len,
            prompt: Vec::new(),
        };
        let short = pool.admit(req(1, 3)).ok().expect("slot for short");
        // A ten-token prompt keeps the long lane prefilling (it cannot
        // retire) while the short lane runs out — no sampling luck
        // involved in who frees first.
        let long_req = LaneRequest {
            rng: ChaCha8Rng::seed_from_u64(2),
            temperature: 1.0,
            top_k: Some(5),
            max_len: 20,
            prompt: (3u32..13).map(TokenId).collect(),
        };
        let long = pool.admit(long_req).ok().expect("slot for long");
        assert_eq!(pool.free_slots(), 0);
        assert!(pool.admit(req(3, 3)).is_err(), "pool full gives it back");

        let mut freed_at = None;
        for _ in 0..8 {
            let outcome = pool.step();
            if outcome.completed.iter().any(|(slot, _)| *slot == short) {
                freed_at = Some(pool.free_slots());
                break;
            }
        }
        assert_eq!(
            freed_at,
            Some(1),
            "short lane's slot back on the free list in its retiring iteration"
        );
        let reused = pool.admit(req(3, 3)).ok().expect("freed slot admits");
        assert_eq!(reused, short, "the retired slot itself is handed out");
        assert!(
            pool.slots[long].is_some(),
            "long lane still decoding mid-flight"
        );
        // Drain: everything completes, nothing deadlocks.
        let mut left = 2;
        while left > 0 {
            left -= pool.step().completed.len();
        }
        assert_eq!(pool.occupied(), 0);
    }

    #[test]
    fn full_prefix_hit_skips_prefill_and_matches_solo() {
        let model = tiny_model();
        let policy = SamplingPolicy {
            start: TokenId(2),
            end: TokenId(1),
            pad: Some(TokenId(0)),
            keep_end: false,
            grammar: Grammar::Minimal,
        };
        let prompt = vec![TokenId(5), TokenId(7), TokenId(3)];
        let req = |seed: u64| LaneRequest {
            rng: ChaCha8Rng::seed_from_u64(seed),
            temperature: 0.9,
            top_k: Some(6),
            max_len: 12,
            prompt: prompt.clone(),
        };
        let solo = |seed: u64| {
            decode_batch(&model, &policy, vec![req(seed)])
                .pop()
                .expect("one lane")
        };

        let mut pool: ContinuousBatch<'_, ChaCha8Rng> =
            ContinuousBatch::new(&model, 1, policy.clone(), 4);
        let mut run = |seed: u64, pool: &mut ContinuousBatch<'_, ChaCha8Rng>| {
            pool.admit(req(seed)).ok().expect("slot free");
            loop {
                let outcome = pool.step();
                if let Some((_, out)) = outcome.completed.into_iter().next() {
                    return out;
                }
            }
        };
        let first = run(11, &mut pool);
        assert_eq!(pool.prefix_hits(), 0, "cold cache");
        let second = run(12, &mut pool);
        assert_eq!(pool.prefix_hits(), 1, "warm cache hit");
        assert_eq!(
            pool.prefix_tokens_reused(),
            (1 + prompt.len()) as u64,
            "full prefill served from cache"
        );
        assert_eq!(first, solo(11), "cold pass matches solo decode");
        assert_eq!(second, solo(12), "cache-served pass matches solo decode");
    }

    #[test]
    fn bounded_pool_matches_unbounded_decode() {
        let model = tiny_model();
        let policy = SamplingPolicy {
            start: TokenId(2),
            end: TokenId(1),
            pad: Some(TokenId(0)),
            keep_end: false,
            grammar: Grammar::Minimal,
        };
        let make = || -> Vec<LaneRequest<ChaCha8Rng>> {
            (0..5)
                .map(|i| LaneRequest {
                    rng: ChaCha8Rng::seed_from_u64(40 + i),
                    temperature: 1.0,
                    top_k: Some(5),
                    max_len: 6 + i as usize * 3,
                    prompt: if i % 2 == 0 {
                        vec![TokenId(5)]
                    } else {
                        Vec::new()
                    },
                })
                .collect()
        };
        let wide = decode_batch(&model, &policy, make());
        let narrow = decode_batch_bounded(&model, &policy, make(), 2);
        assert_eq!(wide, narrow, "slot starvation must not change outputs");

        // The quantized pool keeps the same batch-shape independence: wide
        // vs starved vs one-at-a-time all agree token for token (with each
        // other — not with the f32 outputs above, which carry no
        // quantization error).
        let quant = Arc::new(QuantizedDecodeWeights::quantize(&model));
        let q_wide = decode_batch_quantized(&model, &policy, make(), 0, Some(quant.clone()));
        let q_narrow = decode_batch_quantized(&model, &policy, make(), 2, Some(quant.clone()));
        let q_solo = decode_batch_quantized(&model, &policy, make(), 1, Some(quant));
        assert_eq!(q_wide, q_narrow, "quantized outputs are batch-independent");
        assert_eq!(
            q_wide, q_solo,
            "quantized outputs match quantized solo decode"
        );
        for o in &q_wide {
            assert!(o.is_ok(), "quantized decode stays well-formed");
        }
    }

    #[test]
    fn decode_batch_prompt_prefill_and_caps() {
        let model = tiny_model();
        let policy = SamplingPolicy {
            start: TokenId(2),
            end: TokenId(1),
            pad: Some(TokenId(0)),
            keep_end: false,
            grammar: Grammar::Minimal,
        };
        let lanes = vec![
            LaneRequest {
                rng: ChaCha8Rng::seed_from_u64(1),
                temperature: 1.0,
                top_k: Some(5),
                max_len: 6,
                prompt: vec![TokenId(5), TokenId(7)],
            },
            LaneRequest {
                rng: ChaCha8Rng::seed_from_u64(2),
                temperature: 1.0,
                top_k: Some(5),
                max_len: 12,
                prompt: Vec::new(),
            },
        ];
        let out = decode_batch(&model, &policy, lanes);
        assert_eq!(out.len(), 2);
        assert!(out[0].is_ok() && out[1].is_ok());
        assert_eq!(&out[0].tokens[..3], &[TokenId(2), TokenId(5), TokenId(7)]);
        assert!(out[0].tokens.len() <= 6);
        assert_eq!(out[0].sampled, out[0].tokens.len() - 3);
        assert_eq!(out[1].tokens[0], TokenId(2));
        assert!(out[1].tokens.len() <= 12);
        for o in &out {
            assert!(!o.tokens.contains(&TokenId(1)), "terminator dropped");
            assert!(!o.tokens[1..].contains(&TokenId(0)), "pad never sampled");
        }
    }
}
