//! Transformer hyperparameters.

use serde::{Deserialize, Serialize};

/// Architecture of the decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size (paper: 1029).
    pub vocab_size: usize,
    /// Maximum sequence length (paper: 1024).
    pub max_seq_len: usize,
    /// Number of transformer blocks (paper: 6).
    pub n_layers: usize,
    /// Attention heads per block (paper: 6).
    pub n_heads: usize,
    /// Residual width (paper scale: 384, giving ≈ 11.8 M parameters).
    pub d_model: usize,
    /// Feed-forward inner width (4 × d_model by convention).
    pub d_ff: usize,
}

impl ModelConfig {
    /// The paper's architecture: 6 layers / 6 heads / 11.825 M parameters,
    /// vocabulary 1029, sequences up to 1024.
    pub fn paper() -> ModelConfig {
        ModelConfig {
            vocab_size: 1029,
            max_seq_len: 1024,
            n_layers: 6,
            n_heads: 6,
            d_model: 384,
            d_ff: 1536,
        }
    }

    /// A CPU-scale configuration for the reproduced experiments.
    pub fn repro(vocab_size: usize, max_seq_len: usize) -> ModelConfig {
        ModelConfig {
            vocab_size,
            max_seq_len,
            n_layers: 4,
            n_heads: 4,
            d_model: 128,
            d_ff: 512,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(vocab_size: usize, max_seq_len: usize) -> ModelConfig {
        ModelConfig {
            vocab_size,
            max_seq_len,
            n_layers: 2,
            n_heads: 2,
            d_model: 32,
            d_ff: 64,
        }
    }

    /// Head width.
    ///
    /// # Panics
    ///
    /// Panics unless `d_model` divides by `n_heads`.
    pub fn d_head(&self) -> usize {
        assert_eq!(self.d_model % self.n_heads, 0, "d_model divisible by heads");
        self.d_model / self.n_heads
    }

    /// Approximate trainable parameter count (embeddings + blocks + heads).
    pub fn param_count(&self) -> usize {
        let d = self.d_model;
        let per_layer = 4 * d * d + 4 * d // attention (wq wk wv wo + biases folded)
            + 2 * d * self.d_ff + self.d_ff + d // mlp
            + 4 * d; // two layer norms
        self.vocab_size * d // token embedding
            + self.max_seq_len * d // positions
            + self.n_layers * per_layer
            + 2 * d // final norm
            + d * self.vocab_size // untied output head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_abstract() {
        let c = ModelConfig::paper();
        let m = c.param_count() as f64 / 1e6;
        assert!(
            (10.0..14.0).contains(&m),
            "paper config ≈ 11.8M params, got {m:.2}M"
        );
        assert_eq!(c.d_head(), 64);
    }

    #[test]
    fn tiny_is_small() {
        let c = ModelConfig::tiny(50, 32);
        assert!(c.param_count() < 200_000);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_heads_panics() {
        let c = ModelConfig {
            n_heads: 3,
            ..ModelConfig::tiny(10, 8)
        };
        let _ = c.d_head();
    }
}
