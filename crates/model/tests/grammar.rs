//! The grammar-masked decoding contract, end to end: with
//! [`Grammar::Full`], every decode that completes — lockstep or
//! continuous, prefix-cache hit or miss, whatever the admission order or
//! pool composition — parses as an Eulerian walk whose topology passes
//! the full `eva_spice::check_validity` oracle on the first try, and is
//! bit-identical to the same request decoded alone through the
//! sequential [`Generator`].
//!
//! Budget exhaustion is the one legal alternative: a prompt can open more
//! floating-pin debt than the request's length cap can repay, in which
//! case the very first sampled position has every token masked and the
//! lane retires with the typed [`InferError::NoAdmissibleToken`] —
//! never a truncated or invalid walk. The certificate-carrying planner
//! guarantees this split: once one token samples successfully, a closing
//! plan fits the remaining budget at every later step, so mid-decode
//! dead ends cannot happen.

use std::collections::VecDeque;
use std::sync::Arc;

use eva_model::{
    decode_batch, sample_logits, ContinuousBatch, Generator, Grammar, GrammarTable, InferError,
    LaneOutput, LaneRequest, ModelConfig, SamplingPolicy, Transformer,
};
use eva_tokenizer::{TokenId, Tokenizer};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Tokenizer over a DC-safe device mix (one NMOS, one PMOS, a resistor,
/// a capacitor, plus the VDD/VIN1/VOUT1 ports): every structurally valid
/// topology over this vocabulary also converges at DC, so the structural
/// automaton implies full oracle validity.
fn fixture_tokenizer() -> Tokenizer {
    let corpus: Vec<String> = [
        "VSS", "VDD", "VIN1", "VOUT1", "NM1_G", "PM1_G", "R1_P", "C1_P",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    Tokenizer::fit([corpus.as_slice()])
}

fn fixture_model(tok: &Tokenizer, seed: u64) -> Transformer {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Transformer::new(ModelConfig::tiny(tok.vocab_size(), 32), &mut rng)
}

/// The serve-shaped policy with the full validity automaton switched on.
fn full_policy(tok: &Tokenizer) -> SamplingPolicy {
    let table = Arc::new(GrammarTable::from_vocab(tok.iter()));
    SamplingPolicy::constrained(tok.vss(), Tokenizer::END, Tokenizer::PAD)
        .with_grammar(Grammar::Full(table))
}

/// Ground truth: decode the walk and run the full validity oracle.
fn oracle_valid(tok: &Tokenizer, tokens: &[TokenId]) -> bool {
    let Ok(seq) = tok.to_sequence(tokens) else {
        return false;
    };
    let Ok(topo) = seq.to_topology() else {
        return false;
    };
    eva_spice::check_validity(&topo).is_valid()
}

/// The per-output contract under `Grammar::Full`: either the walk passes
/// the oracle first try, or the lane died on the typed all-masked error
/// before sampling anything (prompt debt exceeding the length budget).
fn assert_output_contract(tok: &Tokenizer, out: &LaneOutput, context: &str) {
    match out.error {
        None => assert!(
            oracle_valid(tok, &out.tokens),
            "{context}: completed decode failed the validity oracle: {:?}",
            tok.decode(&out.tokens)
        ),
        Some(InferError::NoAdmissibleToken) => assert_eq!(
            out.sampled, 0,
            "{context}: the grammar may only dry up at the first sampled \
             position (prompt debt > budget), never mid-decode"
        ),
        Some(e) => panic!("{context}: unexpected decode error {e}"),
    }
}

/// One request plus its adversarial admission delay (mirrors the
/// continuous-batching equivalence suite).
#[derive(Debug, Clone)]
struct Arrival {
    seed: u64,
    temperature: f32,
    top_k: Option<usize>,
    max_len: usize,
    prompt: Vec<TokenId>,
    delay: usize,
}

fn lane(a: &Arrival) -> LaneRequest<ChaCha8Rng> {
    LaneRequest {
        rng: ChaCha8Rng::seed_from_u64(a.seed),
        temperature: a.temperature,
        top_k: a.top_k,
        max_len: a.max_len,
        prompt: a.prompt.clone(),
    }
}

/// Reference implementation: one lane decoded alone with the sequential
/// [`Generator`], applying the same stateful grammar masking the batch
/// layer documents.
fn decode_one_sequential<R: Rng>(
    model: &Transformer,
    policy: &SamplingPolicy,
    mut lane: LaneRequest<R>,
) -> LaneOutput {
    let ctx = model.config().max_seq_len;
    let limit = lane.max_len.min(ctx);
    let mut gen = Generator::new(model);
    let mut tokens = vec![policy.start];
    tokens.append(&mut lane.prompt);
    let mut grammar = policy.fresh_state();
    for &t in &tokens[1..] {
        policy.observe(&mut grammar, t);
    }
    let mut fed = 0usize;
    let mut sampled = 0usize;
    loop {
        let mut logits = match gen.step(tokens[fed]) {
            Ok(logits) => logits,
            Err(e) => {
                return LaneOutput {
                    tokens,
                    sampled,
                    error: Some(e),
                }
            }
        };
        fed += 1;
        if fed < tokens.len() {
            continue;
        }
        if tokens.len() >= limit {
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
        let budget = limit - tokens.len();
        policy.mask_logits(&grammar, *tokens.last().unwrap(), &mut logits, budget);
        let next = match sample_logits(&logits, lane.temperature, lane.top_k, &mut lane.rng) {
            Ok(i) => TokenId(i as u32),
            Err(e) => {
                return LaneOutput {
                    tokens,
                    sampled,
                    error: Some(e),
                }
            }
        };
        if next == policy.end {
            if policy.keep_end {
                tokens.push(next);
                sampled += 1;
            }
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
        policy.observe(&mut grammar, next);
        tokens.push(next);
        sampled += 1;
        if tokens.len() >= limit {
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
    }
}

/// Drive a pool through an adversarial admission schedule (delays, slot
/// reuse, mid-flight joins); returns outputs in arrival order.
fn run_adversarial(
    model: &Transformer,
    policy: SamplingPolicy,
    arrivals: &[Arrival],
    capacity: usize,
    prefix_cache_entries: usize,
) -> Vec<LaneOutput> {
    let mut pool: ContinuousBatch<'_, ChaCha8Rng> =
        ContinuousBatch::new(model, capacity, policy, prefix_cache_entries);
    let mut queue: VecDeque<(usize, &Arrival)> = arrivals.iter().enumerate().collect();
    let mut origin = vec![usize::MAX; capacity];
    let mut out: Vec<Option<LaneOutput>> = vec![None; arrivals.len()];
    let mut iter = 0usize;
    while out.iter().any(Option::is_none) {
        while let Some(&(index, arrival)) = queue.front() {
            if iter < arrival.delay || pool.free_slots() == 0 {
                break;
            }
            let slot = pool.admit(lane(arrival)).expect("a slot was free");
            origin[slot] = index;
            queue.pop_front();
        }
        if pool.occupied() == 0 {
            let next = queue.front().expect("undone work remains").1.delay;
            iter = next.max(iter + 1);
            continue;
        }
        let outcome = pool.step();
        iter += 1;
        for (slot, output) in outcome.completed {
            out[origin[slot]] = Some(output);
        }
    }
    out.into_iter().map(|o| o.expect("all completed")).collect()
}

/// Legal prompt continuations of the implicit `VSS` start, by index:
/// nothing, a resistor pin, a through-resistor hop, the NMOS gate (which
/// opens the full 4-pin floating debt).
fn prompt_menu(tok: &Tokenizer, choice: usize) -> Vec<TokenId> {
    let id = |t: &str| tok.id(t).expect("fixture vocab");
    match choice % 4 {
        0 => Vec::new(),
        1 => vec![id("R1_P")],
        2 => vec![id("R1_P"), id("R1_N")],
        _ => vec![id("NM1_G")],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Lockstep batched decode under the full grammar: across seeds,
    /// temperatures, top-k cutoffs, budgets, prompts, and batch
    /// compositions, every completed output passes the oracle first try
    /// and is bit-identical to the solo sequential decode.
    #[test]
    fn lockstep_full_grammar_is_first_try_valid_and_solo_identical(
        specs in prop::collection::vec(
            (0u64..1000, 0usize..3, 0usize..3, 7usize..32, 0usize..4),
            1..6,
        ),
    ) {
        let tok = fixture_tokenizer();
        let model = fixture_model(&tok, 17);
        let policy = full_policy(&tok);
        let arrivals: Vec<Arrival> = specs
            .into_iter()
            .map(|(seed, t, k, max_len, p)| Arrival {
                seed,
                temperature: [0.7, 1.0, 1.4][t],
                top_k: [None, Some(4), Some(12)][k],
                max_len,
                prompt: prompt_menu(&tok, p),
                delay: 0,
            })
            .collect();
        let outputs = decode_batch(&model, &policy, arrivals.iter().map(lane).collect());
        for (i, (arrival, out)) in arrivals.iter().zip(&outputs).enumerate() {
            assert_output_contract(&tok, out, &format!("lockstep lane {i}"));
            let alone = decode_one_sequential(&model, &policy, lane(arrival));
            prop_assert_eq!(out, &alone, "lane {} diverged from solo decode", i);
        }
    }

    /// Continuous batching under the full grammar: adversarial admission
    /// orders, delays, capacities, and prefix-cache sizes never change an
    /// output, and every completed output passes the oracle first try.
    #[test]
    fn continuous_full_grammar_is_first_try_valid_and_solo_identical(
        specs in prop::collection::vec(
            (0u64..1000, 0usize..3, 0usize..3, 7usize..32, 0usize..4, 0usize..5),
            1..6,
        ),
        capacity in 1usize..4,
        prefix_cache_entries in 0usize..5,
    ) {
        let tok = fixture_tokenizer();
        let model = fixture_model(&tok, 19);
        let policy = full_policy(&tok);
        let arrivals: Vec<Arrival> = specs
            .into_iter()
            .map(|(seed, t, k, max_len, p, delay)| Arrival {
                seed,
                temperature: [0.7, 1.0, 1.4][t],
                top_k: [None, Some(4), Some(12)][k],
                max_len,
                prompt: prompt_menu(&tok, p),
                delay,
            })
            .collect();
        let outputs =
            run_adversarial(&model, policy.clone(), &arrivals, capacity, prefix_cache_entries);
        for (i, (arrival, out)) in arrivals.iter().zip(&outputs).enumerate() {
            assert_output_contract(&tok, out, &format!("continuous arrival {i}"));
            let alone = decode_one_sequential(&model, &policy, lane(arrival));
            prop_assert_eq!(out, &alone, "arrival {} diverged from solo decode", i);
        }
    }
}

/// A full-prefill prefix-cache hit must restore the *grammar state*
/// alongside the KV rows: the same shared prompt decoded with and without
/// a cache produces identical, oracle-valid outputs.
#[test]
fn prefix_cache_hits_restore_grammar_state() {
    let tok = fixture_tokenizer();
    let model = fixture_model(&tok, 23);
    let policy = full_policy(&tok);
    let prompt = prompt_menu(&tok, 2);
    let arrivals: Vec<Arrival> = (0..5)
        .map(|i| Arrival {
            seed: 500 + i,
            temperature: 1.0,
            top_k: Some(8),
            max_len: 24,
            prompt: prompt.clone(),
            delay: 0,
        })
        .collect();
    let cached = run_adversarial(&model, policy.clone(), &arrivals, 2, 8);
    let uncached = run_adversarial(&model, policy.clone(), &arrivals, 2, 0);
    assert_eq!(
        cached, uncached,
        "prefix-cache state must never leak into outputs"
    );
    for (i, (arrival, out)) in arrivals.iter().zip(&cached).enumerate() {
        assert_output_contract(&tok, out, &format!("cached arrival {i}"));
        assert_eq!(
            out,
            &decode_one_sequential(&model, &policy, lane(arrival)),
            "cached arrival {i} diverged from solo decode"
        );
    }
}

/// The pool's `masked_tokens` counter (the serve metric's source) grows
/// whenever the grammar actually masks: under the full automaton on a
/// tiny vocabulary, that is every decode step.
#[test]
fn pool_counts_masked_tokens() {
    let tok = fixture_tokenizer();
    let model = fixture_model(&tok, 29);
    let mut pool: ContinuousBatch<'_, ChaCha8Rng> =
        ContinuousBatch::new(&model, 1, full_policy(&tok), 0);
    assert_eq!(pool.masked_tokens(), 0);
    pool.admit(lane(&Arrival {
        seed: 3,
        temperature: 1.0,
        top_k: None,
        max_len: 16,
        prompt: Vec::new(),
        delay: 0,
    }))
    .expect("slot free");
    while pool.occupied() > 0 {
        pool.step();
    }
    assert!(
        pool.masked_tokens() > 0,
        "full grammar on a tiny vocab must mask at least one logit"
    );
}

/// A length budget below the minimal closing walk (7 tokens: `VSS` plus
/// the 6-node VDD loop) leaves no admissible token at the first sampled
/// position: the lane retires with the typed error, sampling nothing.
#[test]
fn budget_below_minimal_walk_is_a_typed_error() {
    let tok = fixture_tokenizer();
    let model = fixture_model(&tok, 31);
    let policy = full_policy(&tok);
    let request = Arrival {
        seed: 11,
        temperature: 1.0,
        top_k: None,
        max_len: 5,
        prompt: Vec::new(),
        delay: 0,
    };
    let out = &decode_batch(&model, &policy, vec![lane(&request)])[0];
    assert_eq!(out.error, Some(InferError::NoAdmissibleToken));
    assert_eq!(out.sampled, 0);
    assert_eq!(out.tokens, vec![tok.vss()]);
}

/// A prompt token outside the circuit vocabulary (here: PAD itself)
/// poisons the lane's automaton, degrading it to the minimal END rule —
/// outputs stay deterministic and solo-identical, they just lose the
/// validity guarantee.
#[test]
fn unmappable_prompt_degrades_to_minimal_and_stays_solo_identical() {
    let tok = fixture_tokenizer();
    let model = fixture_model(&tok, 37);
    let policy = full_policy(&tok);
    let arrivals: Vec<Arrival> = (0..4)
        .map(|i| Arrival {
            seed: 900 + i,
            temperature: 1.0,
            top_k: Some(6),
            max_len: 20,
            prompt: vec![Tokenizer::PAD],
            delay: i as usize,
        })
        .collect();
    let outputs = run_adversarial(&model, policy.clone(), &arrivals, 2, 4);
    for (i, (arrival, out)) in arrivals.iter().zip(&outputs).enumerate() {
        assert!(out.error.is_none(), "poisoned lane {i} must not error");
        assert_eq!(
            out,
            &decode_one_sequential(&model, &policy, lane(arrival)),
            "poisoned arrival {i} diverged from solo decode"
        );
    }
}

/// Satellite regression: the minimal grammar must forbid terminating the
/// empty walk — no decode may emit the bare `[VSS]` via an immediate END.
#[test]
fn minimal_grammar_never_terminates_the_empty_walk() {
    let tok = fixture_tokenizer();
    let model = fixture_model(&tok, 41);
    let policy = SamplingPolicy::constrained(tok.vss(), Tokenizer::END, Tokenizer::PAD);
    let lanes: Vec<LaneRequest<ChaCha8Rng>> = (0..24u64)
        .map(|seed| LaneRequest {
            rng: ChaCha8Rng::seed_from_u64(seed),
            temperature: 1.4,
            top_k: None,
            max_len: 16,
            prompt: Vec::new(),
        })
        .collect();
    for (i, out) in decode_batch(&model, &policy, lanes).iter().enumerate() {
        assert!(out.is_ok(), "lane {i} errored");
        assert!(
            out.tokens.len() >= 2,
            "lane {i} terminated the empty walk: {:?}",
            out.tokens
        );
    }
}

/// Satellite regression: the unconstrained (PPO rollout) policy must mask
/// PAD — no trajectory may contain it mid-sequence.
#[test]
fn unconstrained_decode_never_emits_pad() {
    let tok = fixture_tokenizer();
    let model = fixture_model(&tok, 43);
    let policy = SamplingPolicy::unconstrained(tok.vss(), Tokenizer::END, Tokenizer::PAD);
    let lanes: Vec<LaneRequest<ChaCha8Rng>> = (0..24u64)
        .map(|seed| LaneRequest {
            rng: ChaCha8Rng::seed_from_u64(seed),
            temperature: 1.4,
            top_k: None,
            max_len: 16,
            prompt: Vec::new(),
        })
        .collect();
    for (i, out) in decode_batch(&model, &policy, lanes).iter().enumerate() {
        assert!(out.is_ok(), "lane {i} errored");
        assert!(
            !out.tokens.contains(&Tokenizer::PAD),
            "lane {i} sampled PAD mid-trajectory: {:?}",
            out.tokens
        );
    }
}
