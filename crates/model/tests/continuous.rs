//! The continuous-batching determinism contract: a request admitted into
//! a [`eva_model::ContinuousBatch`] slot pool produces **token-for-token**
//! the same output as decoding it alone through the sequential
//! [`eva_model::Generator`] — independent of admission order, mid-flight
//! joins into a half-finished batch, slot reuse after retirements, pool
//! capacity, and prefix-cache state.
//!
//! The serving worker relies on this: a request's output depends only on
//! its own seed and parameters, never on which requests happened to share
//! the pool or when the scheduler admitted it.

use std::collections::VecDeque;

use eva_model::{
    sample_logits, ContinuousBatch, Generator, LaneOutput, LaneRequest, ModelConfig,
    SamplingPolicy, Transformer,
};
use eva_tokenizer::TokenId;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn tiny_model(seed: u64) -> Transformer {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Transformer::new(ModelConfig::tiny(13, 24), &mut rng)
}

/// The constrained policy the engine and the serve worker use: tokenizer
/// layout PAD=0, END=1, VSS=2 (see `eva_tokenizer`).
fn constrained() -> SamplingPolicy {
    SamplingPolicy::constrained(TokenId(2), TokenId(1), TokenId(0))
}

/// One request plus its adversarial admission delay: the request only
/// becomes available to the scheduler at decode iteration `delay`.
#[derive(Debug, Clone)]
struct Arrival {
    seed: u64,
    max_len: usize,
    prompt: Vec<TokenId>,
    delay: usize,
}

fn lane(a: &Arrival) -> LaneRequest<ChaCha8Rng> {
    LaneRequest {
        rng: ChaCha8Rng::seed_from_u64(a.seed),
        temperature: 0.9,
        top_k: Some(8),
        max_len: a.max_len,
        prompt: a.prompt.clone(),
    }
}

/// Reference implementation: one lane decoded alone with the sequential
/// `Generator`, applying the exact state machine the batch layer
/// documents (prefill `[start] + prompt`, mask, sample, retire on
/// end/cap/error).
fn decode_one_sequential<R: Rng>(
    model: &Transformer,
    policy: &SamplingPolicy,
    mut lane: LaneRequest<R>,
) -> LaneOutput {
    let ctx = model.config().max_seq_len;
    let limit = lane.max_len.min(ctx);
    let mut gen = Generator::new(model);
    let mut tokens = vec![policy.start];
    tokens.append(&mut lane.prompt);
    let mut grammar = policy.fresh_state();
    for &t in &tokens[1..] {
        policy.observe(&mut grammar, t);
    }
    let mut fed = 0usize;
    let mut sampled = 0usize;
    loop {
        let mut logits = match gen.step(tokens[fed]) {
            Ok(logits) => logits,
            Err(e) => {
                return LaneOutput {
                    tokens,
                    sampled,
                    error: Some(e),
                }
            }
        };
        fed += 1;
        if fed < tokens.len() {
            continue;
        }
        if tokens.len() >= limit {
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
        let budget = limit - tokens.len();
        policy.mask_logits(&grammar, *tokens.last().unwrap(), &mut logits, budget);
        let next = match sample_logits(&logits, lane.temperature, lane.top_k, &mut lane.rng) {
            Ok(i) => TokenId(i as u32),
            Err(e) => {
                return LaneOutput {
                    tokens,
                    sampled,
                    error: Some(e),
                }
            }
        };
        if next == policy.end {
            if policy.keep_end {
                tokens.push(next);
                sampled += 1;
            }
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
        policy.observe(&mut grammar, next);
        tokens.push(next);
        sampled += 1;
        if tokens.len() >= limit {
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
    }
}

/// Drive a pool through an adversarial schedule: arrivals are admitted in
/// order, each no earlier than its `delay` iteration and only when a slot
/// is free — so requests routinely join a batch that is already
/// mid-decode, and retired slots are reused while neighbors keep going.
/// Returns each arrival's output, in arrival order.
fn run_adversarial(
    model: &Transformer,
    policy: SamplingPolicy,
    arrivals: &[Arrival],
    capacity: usize,
    prefix_cache_entries: usize,
) -> Vec<LaneOutput> {
    let mut pool: ContinuousBatch<'_, ChaCha8Rng> =
        ContinuousBatch::new(model, capacity, policy, prefix_cache_entries);
    let mut queue: VecDeque<(usize, &Arrival)> = arrivals.iter().enumerate().collect();
    let mut origin = vec![usize::MAX; capacity];
    let mut out: Vec<Option<LaneOutput>> = vec![None; arrivals.len()];
    let mut iter = 0usize;
    while out.iter().any(Option::is_none) {
        while let Some(&(index, arrival)) = queue.front() {
            if iter < arrival.delay || pool.free_slots() == 0 {
                break;
            }
            let slot = pool.admit(lane(arrival)).expect("a slot was free");
            origin[slot] = index;
            queue.pop_front();
        }
        if pool.occupied() == 0 {
            // Nothing decoding and the next arrival is in the future:
            // fast-forward the clock instead of stepping an empty pool.
            let next = queue.front().expect("undone work remains").1.delay;
            iter = next.max(iter + 1);
            continue;
        }
        let outcome = pool.step();
        iter += 1;
        for (slot, output) in outcome.completed {
            out[origin[slot]] = Some(output);
        }
    }
    out.into_iter().map(|o| o.expect("all completed")).collect()
}

fn assert_matches_solo(model: &Transformer, policy: &SamplingPolicy, arrivals: &[Arrival]) {
    for (capacity, cache) in [(1, 0), (2, 4), (3, 0), (4, 8)] {
        let outputs = run_adversarial(model, policy.clone(), arrivals, capacity, cache);
        for (i, (arrival, out)) in arrivals.iter().zip(&outputs).enumerate() {
            let alone = decode_one_sequential(model, policy, lane(arrival));
            assert_eq!(
                out, &alone,
                "arrival {i} (seed {}) diverged under capacity {capacity} \
                 prefix-cache {cache}",
                arrival.seed
            );
        }
    }
}

#[test]
fn mid_flight_joins_match_solo_decode() {
    let model = tiny_model(7);
    let policy = constrained();
    // Staggered arrivals into a 2-slot pool: every admission after the
    // first two joins a batch that is already decoding.
    let arrivals: Vec<Arrival> = (0..6)
        .map(|i| Arrival {
            seed: 100 + i as u64,
            max_len: [24, 3, 11, 24, 5, 17][i],
            prompt: if i % 2 == 0 {
                vec![TokenId(5), TokenId(7)]
            } else {
                Vec::new()
            },
            delay: i * 2,
        })
        .collect();
    assert_matches_solo(&model, &policy, &arrivals);
}

#[test]
fn prefix_cache_hits_do_not_change_outputs() {
    let model = tiny_model(11);
    let policy = constrained();
    // Same shared prompt over and over: after the first admission every
    // later one is a full-prefill cache hit that skips prefill entirely.
    let arrivals: Vec<Arrival> = (0..5)
        .map(|i| Arrival {
            seed: 40 + i,
            max_len: 20,
            prompt: vec![TokenId(5), TokenId(9)],
            delay: 0,
        })
        .collect();
    let cached = run_adversarial(&model, policy.clone(), &arrivals, 2, 8);
    let uncached = run_adversarial(&model, policy.clone(), &arrivals, 2, 0);
    assert_eq!(cached, uncached, "cache state must never leak into outputs");
    for (arrival, out) in arrivals.iter().zip(&cached) {
        assert_eq!(out, &decode_one_sequential(&model, &policy, lane(arrival)));
    }
}

#[test]
fn pool_reports_prefix_reuse() {
    let model = tiny_model(13);
    let mut pool: ContinuousBatch<'_, ChaCha8Rng> =
        ContinuousBatch::new(&model, 1, constrained(), 4);
    let arrival = Arrival {
        seed: 3,
        max_len: 8,
        prompt: Vec::new(),
        delay: 0,
    };
    for expected_hits in [0u64, 1, 2] {
        assert_eq!(pool.prefix_hits(), expected_hits);
        pool.admit(lane(&arrival)).expect("slot free");
        while pool.occupied() > 0 {
            pool.step();
        }
    }
    // Every hit reused the 1-token universal `VSS` start prefix.
    assert_eq!(pool.prefix_tokens_reused(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary admission orders, delays, prompts, pool capacities, and
    /// cache sizes never change any request's output.
    #[test]
    fn adversarial_admission_reproduces_solo_decodes(
        specs in prop::collection::vec(
            (0u64..1000, 2usize..28, prop::collection::vec(3u32..13, 0usize..4), 0usize..6),
            1..8,
        ),
        capacity in 1usize..5,
        prefix_cache_entries in 0usize..5,
        constrained_policy in any::<bool>(),
    ) {
        let model = tiny_model(31);
        let policy = if constrained_policy {
            constrained()
        } else {
            SamplingPolicy::unconstrained(TokenId(2), TokenId(1), TokenId(0))
        };
        let arrivals: Vec<Arrival> = specs
            .into_iter()
            .map(|(seed, max_len, prompt, delay)| Arrival {
                seed,
                max_len,
                prompt: prompt.into_iter().map(TokenId).collect(),
                delay,
            })
            .collect();
        let outputs =
            run_adversarial(&model, policy.clone(), &arrivals, capacity, prefix_cache_entries);
        for (i, (arrival, out)) in arrivals.iter().zip(&outputs).enumerate() {
            let alone = decode_one_sequential(&model, &policy, lane(arrival));
            prop_assert_eq!(out, &alone, "arrival {} diverged", i);
        }
    }
}
