//! The batched-decode determinism contract: a lane of
//! [`eva_model::decode_batch`] produces **token-for-token** the same
//! sequence as decoding it alone through the sequential
//! [`eva_model::Generator`] with the same RNG — independent of batch
//! size, lane order, neighbors' lengths, or early lane retirement.
//!
//! The engine, the PPO rollout loop, and the serving worker all rely on
//! this: a served request's output depends only on its own seed and
//! parameters, never on which requests happened to share its micro-batch.

use eva_model::{
    decode_batch, sample_logits, Generator, LaneOutput, LaneRequest, ModelConfig, SamplingPolicy,
    Transformer,
};
use eva_tokenizer::TokenId;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn tiny_model(seed: u64) -> Transformer {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Transformer::new(ModelConfig::tiny(13, 24), &mut rng)
}

/// Reference implementation: one lane decoded alone with the sequential
/// `Generator`, applying the exact state machine `decode_batch` documents
/// (prefill `[start] + prompt`, mask, sample, retire on end/cap/error).
fn decode_one_sequential<R: Rng>(
    model: &Transformer,
    policy: &SamplingPolicy,
    mut lane: LaneRequest<R>,
) -> LaneOutput {
    let ctx = model.config().max_seq_len;
    let limit = lane.max_len.min(ctx);
    let mut gen = Generator::new(model);
    let mut tokens = vec![policy.start];
    tokens.append(&mut lane.prompt);
    let mut grammar = policy.fresh_state();
    for &t in &tokens[1..] {
        policy.observe(&mut grammar, t);
    }
    let mut fed = 0usize;
    let mut sampled = 0usize;
    loop {
        let mut logits = match gen.step(tokens[fed]) {
            Ok(logits) => logits,
            Err(e) => {
                return LaneOutput {
                    tokens,
                    sampled,
                    error: Some(e),
                }
            }
        };
        fed += 1;
        if fed < tokens.len() {
            continue;
        }
        if tokens.len() >= limit {
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
        let budget = limit - tokens.len();
        policy.mask_logits(&grammar, *tokens.last().unwrap(), &mut logits, budget);
        let next = match sample_logits(&logits, lane.temperature, lane.top_k, &mut lane.rng) {
            Ok(i) => TokenId(i as u32),
            Err(e) => {
                return LaneOutput {
                    tokens,
                    sampled,
                    error: Some(e),
                }
            }
        };
        if next == policy.end {
            if policy.keep_end {
                tokens.push(next);
                sampled += 1;
            }
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
        policy.observe(&mut grammar, next);
        tokens.push(next);
        sampled += 1;
        if tokens.len() >= limit {
            return LaneOutput {
                tokens,
                sampled,
                error: None,
            };
        }
    }
}

fn lanes_for(
    seeds: &[u64],
    max_lens: &[usize],
    temperature: f32,
    top_k: Option<usize>,
) -> Vec<LaneRequest<ChaCha8Rng>> {
    seeds
        .iter()
        .zip(max_lens)
        .map(|(&seed, &max_len)| LaneRequest {
            rng: ChaCha8Rng::seed_from_u64(seed),
            temperature,
            top_k,
            max_len,
            prompt: Vec::new(),
        })
        .collect()
}

fn assert_batch_matches_sequential(
    model: &Transformer,
    policy: &SamplingPolicy,
    seeds: &[u64],
    max_lens: &[usize],
    temperature: f32,
    top_k: Option<usize>,
) {
    let batched = decode_batch(
        model,
        policy,
        lanes_for(seeds, max_lens, temperature, top_k),
    );
    for (lane, out) in batched.iter().enumerate() {
        let alone = decode_one_sequential(
            model,
            policy,
            LaneRequest {
                rng: ChaCha8Rng::seed_from_u64(seeds[lane]),
                temperature,
                top_k,
                max_len: max_lens[lane],
                prompt: Vec::new(),
            },
        );
        assert_eq!(
            out, &alone,
            "lane {lane} (seed {}) diverged from sequential decode",
            seeds[lane]
        );
    }
}

/// The constrained policy the engine and the serve worker use: tokenizer
/// layout PAD=0, END=1, VSS=2 (see `eva_tokenizer`).
fn constrained() -> SamplingPolicy {
    SamplingPolicy::constrained(TokenId(2), TokenId(1), TokenId(0))
}

#[test]
fn batch_sizes_1_3_8_match_sequential() {
    let model = tiny_model(7);
    let policy = constrained();
    assert_batch_matches_sequential(&model, &policy, &[11], &[24], 0.9, Some(8));
    assert_batch_matches_sequential(&model, &policy, &[1, 2, 3], &[24, 24, 24], 0.9, Some(8));
    assert_batch_matches_sequential(
        &model,
        &policy,
        &[10, 20, 30, 40, 50, 60, 70, 80],
        &[24; 8],
        0.9,
        Some(8),
    );
}

#[test]
fn mixed_lengths_and_early_retirement_match_sequential() {
    let model = tiny_model(13);
    let policy = constrained();
    // Wildly different caps force lanes to retire at different rounds; the
    // survivors must keep decoding exactly as if the batch never shrank.
    assert_batch_matches_sequential(
        &model,
        &policy,
        &[5, 6, 7, 8],
        &[2, 24, 5, 11],
        1.1,
        Some(6),
    );
}

#[test]
fn unconstrained_ppo_style_policy_matches_sequential() {
    let model = tiny_model(19);
    // The PPO rollout shape: no grammar mask, terminator kept for scoring.
    let policy = SamplingPolicy::unconstrained(TokenId(2), TokenId(1), TokenId(0));
    assert_batch_matches_sequential(
        &model,
        &policy,
        &[100, 200, 300],
        &[16, 24, 9],
        1.0,
        Some(10),
    );
}

#[test]
fn prompted_lanes_match_sequential() {
    let model = tiny_model(23);
    let policy = constrained();
    let mk = |seed: u64, prompt: Vec<u32>| LaneRequest {
        rng: ChaCha8Rng::seed_from_u64(seed),
        temperature: 0.85,
        top_k: Some(8),
        max_len: 24,
        prompt: prompt.into_iter().map(TokenId).collect(),
    };
    let batched = decode_batch(
        &model,
        &policy,
        vec![mk(1, vec![5, 7, 9]), mk(2, vec![]), mk(3, vec![12])],
    );
    let prompts: [&[u32]; 3] = [&[5, 7, 9], &[], &[12]];
    for (lane, out) in batched.iter().enumerate() {
        let alone =
            decode_one_sequential(&model, &policy, mk(lane as u64 + 1, prompts[lane].to_vec()));
        assert_eq!(out, &alone, "prompted lane {lane} diverged");
        // The prompt survives verbatim after the start token.
        let expect: Vec<TokenId> = prompts[lane].iter().copied().map(TokenId).collect();
        assert_eq!(&out.tokens[1..1 + expect.len()], expect.as_slice());
    }
}

#[test]
fn lane_error_is_isolated_and_typed() {
    let model = tiny_model(29);
    let policy = constrained();
    // Lane 1's prompt overruns the 24-token context mid-prefill; lanes 0
    // and 2 must finish untouched and identical to solo decodes.
    let long_prompt: Vec<TokenId> = (0..30).map(|_| TokenId(5)).collect();
    let mk = |seed: u64, prompt: Vec<TokenId>, max_len: usize| LaneRequest {
        rng: ChaCha8Rng::seed_from_u64(seed),
        temperature: 0.9,
        top_k: Some(8),
        max_len,
        prompt,
    };
    let batched = decode_batch(
        &model,
        &policy,
        vec![
            mk(1, Vec::new(), 24),
            // max_len 0 is honored literally, so the over-long prompt is
            // fed regardless of the cap and trips SequenceTooLong.
            mk(2, long_prompt.clone(), 0),
            mk(3, Vec::new(), 10),
        ],
    );
    assert!(batched[0].is_ok());
    assert!(batched[2].is_ok());
    let err = batched[1].error.expect("over-long prompt must error");
    assert_eq!(format!("{err}"), "sequence exceeds max_seq_len (24)");
    for &lane in &[0usize, 2] {
        let alone = decode_one_sequential(
            &model,
            &policy,
            mk(lane as u64 + 1, Vec::new(), if lane == 0 { 24 } else { 10 }),
        );
        assert_eq!(&batched[lane], &alone, "healthy lane {lane} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary batch composition never changes any lane's output.
    #[test]
    fn any_batch_reproduces_solo_decodes(
        seeds in prop::collection::vec(0u64..1000, 1..8),
        lens in prop::collection::vec(1usize..30, 8),
        constrained_policy in any::<bool>(),
        temp_decis in 5u32..15,
        top_k in prop::option::of(1usize..13),
    ) {
        let model = tiny_model(31);
        let policy = if constrained_policy {
            constrained()
        } else {
            SamplingPolicy::unconstrained(TokenId(2), TokenId(1), TokenId(0))
        };
        let max_lens = &lens[..seeds.len()];
        let temperature = temp_decis as f32 / 10.0;
        let batched = decode_batch(
            &model,
            &policy,
            lanes_for(&seeds, max_lens, temperature, top_k),
        );
        for (lane, out) in batched.iter().enumerate() {
            let alone = decode_one_sequential(
                &model,
                &policy,
                LaneRequest {
                    rng: ChaCha8Rng::seed_from_u64(seeds[lane]),
                    temperature,
                    top_k,
                    max_len: max_lens[lane],
                    prompt: Vec::new(),
                },
            );
            prop_assert_eq!(out, &alone, "lane {} diverged", lane);
        }
    }
}
