//! Direct preference optimization — Eq. 5 of the paper.
//!
//! DPO fine-tunes the pretrained model on a *static* preference dataset:
//! win/lose sequence pairs derived from the Table-I rank classes ("for any
//! four data points where each belongs to a unique class, EVA transforms
//! these into six unique win–lose pairs"). The loss is
//! `−log σ(β·(Δ_w − Δ_l))` with `Δ = log πθ(y|x) − log πref(y|x)` summed
//! over the sequence. Validation *reward accuracy* — the fraction of held-
//! out pairs with positive margin — is the metric of Figure 3 (right);
//! the win/lose log-likelihood traces feed Figure 4 (right).

use std::path::Path;

use eva_model::Transformer;
use eva_nn::ckpt::{
    moments_as_paramsets, restore_moments, CkptError, RngState, TrainCheckpoint,
    TRAIN_MANIFEST_FILE,
};
use eva_nn::{AdamW, Tape, Tensor};
use eva_tokenizer::TokenId;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::reward::{LabeledSequence, RankClass};

/// A win/lose preference pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferencePair {
    /// Preferred sequence tokens.
    pub win: Vec<TokenId>,
    /// Dispreferred sequence tokens.
    pub lose: Vec<TokenId>,
}

/// Build win/lose pairs from rank-labeled sequences: each draw takes one
/// sample per distinct class present and emits every ordered pair
/// (higher rank wins). With all four classes a draw yields the paper's six
/// pairs.
pub fn pairs_from_ranks<R: Rng + ?Sized>(
    samples: &[LabeledSequence],
    draws: usize,
    rng: &mut R,
) -> Vec<PreferencePair> {
    // Bucket by class, Table-I order.
    let mut buckets: Vec<Vec<&LabeledSequence>> = vec![Vec::new(); RankClass::ALL.len()];
    for s in samples {
        let i = RankClass::ALL
            .iter()
            .position(|&c| c == s.class)
            .expect("class");
        buckets[i].push(s);
    }
    let mut pairs = Vec::new();
    for _ in 0..draws {
        // Pick one representative per non-empty class.
        let picked: Vec<(usize, &LabeledSequence)> = buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| (i, b[rng.gen_range(0..b.len())]))
            .collect();
        for a in 0..picked.len() {
            for b in (a + 1)..picked.len() {
                // picked is ordered best→worst by class index.
                pairs.push(PreferencePair {
                    win: picked[a].1.tokens.clone(),
                    lose: picked[b].1.tokens.clone(),
                });
            }
        }
    }
    pairs
}

/// DPO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpoConfig {
    /// Deviation-control strength `β` (the method's single hyperparameter).
    pub beta: f32,
    /// Learning rate (the paper stresses low rates avoid degeneration).
    pub lr: f32,
    /// Training epochs over the pair set.
    pub epochs: usize,
    /// Pairs per optimizer step.
    pub minibatch_size: usize,
}

impl Default for DpoConfig {
    fn default() -> DpoConfig {
        DpoConfig {
            beta: 0.1,
            lr: 1e-5,
            epochs: 3,
            minibatch_size: 4,
        }
    }
}

/// Per-step statistics (the curves of Figures 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpoStepStats {
    /// The DPO loss of this step's minibatch.
    pub loss: f32,
    /// Mean policy log-likelihood of winning sequences.
    pub win_logp: f32,
    /// Mean policy log-likelihood of losing sequences.
    pub lose_logp: f32,
    /// Training-pair margin accuracy of this minibatch.
    pub accuracy: f32,
}

/// DPO fine-tuning driver.
pub struct DpoTrainer {
    policy: Transformer,
    reference: Transformer,
    config: DpoConfig,
    optimizer: AdamW,
}

impl DpoTrainer {
    /// Create a trainer; `policy` is cloned as the frozen reference.
    pub fn new(policy: Transformer, config: DpoConfig) -> DpoTrainer {
        let mut optimizer = AdamW::new(config.lr, policy.params().tensors());
        optimizer.weight_decay = 0.0;
        DpoTrainer {
            reference: policy.clone(),
            policy,
            config,
            optimizer,
        }
    }

    /// The (fine-tuned) policy.
    pub fn policy(&self) -> &Transformer {
        &self.policy
    }

    /// Consume the trainer, returning the fine-tuned policy.
    pub fn into_policy(self) -> Transformer {
        self.policy
    }

    /// Total sequence log-probability under a frozen model (no gradient).
    pub fn sequence_logp(model: &Transformer, tokens: &[TokenId]) -> f32 {
        let t = tokens.len();
        let mut tape = Tape::new();
        let bound = model.bind(&mut tape);
        let hidden = model.hidden(&mut tape, &bound, tokens, 1, t);
        let logits = model.lm_logits(&mut tape, &bound, hidden);
        let targets: Vec<usize> = tokens[1..].iter().map(|t| t.index()).collect();
        let rows: Vec<usize> = (0..t - 1).collect();
        let act = tape.select_rows(logits, &rows);
        let lp = tape.log_prob(act, &targets);
        tape.value(lp).sum()
    }

    /// Margin `(logπθ − logπref)(win) − (logπθ − logπref)(lose)` for one
    /// pair under the current policy.
    pub fn margin(&self, pair: &PreferencePair) -> f32 {
        let pw = Self::sequence_logp(&self.policy, &pair.win);
        let pl = Self::sequence_logp(&self.policy, &pair.lose);
        let rw = Self::sequence_logp(&self.reference, &pair.win);
        let rl = Self::sequence_logp(&self.reference, &pair.lose);
        (pw - rw) - (pl - rl)
    }

    /// Validation reward accuracy: fraction of pairs with positive margin.
    pub fn reward_accuracy(&self, pairs: &[PreferencePair]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let ok = pairs.iter().filter(|p| self.margin(p) > 0.0).count();
        ok as f64 / pairs.len() as f64
    }

    /// Train on the pair set; returns per-minibatch statistics in order.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        pairs: &[PreferencePair],
        rng: &mut R,
    ) -> Vec<DpoStepStats> {
        let mut stats = Vec::new();
        for _ in 0..self.config.epochs {
            self.train_epoch(pairs, rng, &mut stats);
        }
        stats
    }

    /// One epoch over the pair set (a fresh shuffle, then minibatch
    /// steps), appending per-minibatch statistics to `stats`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        pairs: &[PreferencePair],
        rng: &mut R,
        stats: &mut Vec<DpoStepStats>,
    ) {
        let cfg = self.config;
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        for chunk in order.chunks(cfg.minibatch_size) {
            let mut acc: Vec<Option<Tensor>> = vec![None; self.policy.params().len()];
            let mut loss_sum = 0.0f32;
            let mut win_lp = 0.0f32;
            let mut lose_lp = 0.0f32;
            let mut correct = 0usize;
            for &pi in chunk {
                let pair = &pairs[pi];
                // Frozen reference terms.
                let rw = Self::sequence_logp(&self.reference, &pair.win);
                let rl = Self::sequence_logp(&self.reference, &pair.lose);

                let mut tape = Tape::new();
                let bound = self.policy.bind(&mut tape);
                let lp_w = Self::policy_logp(&self.policy, &mut tape, &bound, &pair.win);
                let lp_l = Self::policy_logp(&self.policy, &mut tape, &bound, &pair.lose);
                win_lp += tape.value(lp_w).item();
                lose_lp += tape.value(lp_l).item();
                // margin = (lp_w - rw) - (lp_l - rl)
                let d = tape.sub(lp_w, lp_l);
                let margin = tape.add_scalar(d, rl - rw);
                if tape.value(margin).item() > 0.0 {
                    correct += 1;
                }
                let scaled = tape.scale(margin, cfg.beta);
                let ls = tape.log_sigmoid(scaled);
                let loss = tape.scale(ls, -1.0 / chunk.len() as f32);
                loss_sum += tape.value(loss).item();
                let grads = tape.backward(loss);
                for (slot, grad) in acc.iter_mut().zip(bound.gradients(&grads)) {
                    if let Some(grad) = grad {
                        match slot {
                            Some(existing) => {
                                let e = existing.make_mut();
                                for (a, b) in e.iter_mut().zip(grad.data()) {
                                    *a += b;
                                }
                            }
                            None => *slot = Some(grad.clone()),
                        }
                    }
                }
            }
            let grefs: Vec<Option<&Tensor>> = acc.iter().map(Option::as_ref).collect();
            self.optimizer
                .step(self.policy.params_mut().tensors_mut(), &grefs);
            stats.push(DpoStepStats {
                loss: loss_sum,
                win_logp: win_lp / chunk.len() as f32,
                lose_logp: lose_lp / chunk.len() as f32,
                accuracy: correct as f32 / chunk.len() as f32,
            });
        }
    }

    /// Atomically snapshot the trainer (policy params, AdamW moments, RNG
    /// state, step stats) after `epochs_done` epochs. The frozen reference
    /// is *not* stored; [`DpoTrainer::restore`] documents the resume
    /// contract.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint write failures.
    pub fn checkpoint(
        &self,
        dir: &Path,
        epochs_done: usize,
        n_pairs: usize,
        stats: &[DpoStepStats],
        rng: &ChaCha8Rng,
    ) -> Result<(), CkptError> {
        let (opt_m, opt_v) = moments_as_paramsets(self.policy.params(), &self.optimizer);
        let extra = serde_json::to_value(DpoExtra {
            kind: DPO_KIND.to_owned(),
            config: self.config,
            n_pairs,
            stats: stats.to_vec(),
        })
        .expect("dpo extra state is always serializable");
        TrainCheckpoint {
            step: epochs_done as u64,
            params: self.policy.params().clone(),
            opt_m,
            opt_v,
            opt_step: self.optimizer.steps(),
            rng: RngState::capture(rng),
            extra,
        }
        .save(dir)
    }

    /// Restore trainer state from a committed checkpoint, overwriting
    /// `rng` with the snapshot's RNG state. Returns the number of
    /// completed epochs and the per-minibatch stats so far.
    ///
    /// The frozen reference is reconstructed by the caller: build the
    /// trainer from the same pretrained policy and resume over the same
    /// pair set, and the trajectory continues bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CkptError`] on corruption, format drift, or a
    /// checkpoint from a different architecture/config/pair set.
    pub fn restore(
        &mut self,
        dir: &Path,
        n_pairs: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<(usize, Vec<DpoStepStats>), CkptError> {
        let ck = TrainCheckpoint::load(dir)?;
        let extra: DpoExtra =
            serde_json::from_value(ck.extra.clone()).map_err(|e| CkptError::Corrupt {
                file: TRAIN_MANIFEST_FILE.to_owned(),
                detail: format!("dpo extra state: {e}"),
            })?;
        if extra.kind != DPO_KIND {
            return Err(CkptError::Mismatch {
                detail: format!("checkpoint kind {:?}, expected {DPO_KIND:?}", extra.kind),
            });
        }
        if extra.config != self.config {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint config {:?} differs from trainer config {:?}",
                    extra.config, self.config
                ),
            });
        }
        if extra.n_pairs != n_pairs {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint trained on {} pairs, this run has {n_pairs}",
                    extra.n_pairs
                ),
            });
        }
        let copied = self.policy.params_mut().copy_matching(&ck.params);
        if copied != self.policy.params().len() {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint covers {copied} of {} policy tensors",
                    self.policy.params().len()
                ),
            });
        }
        let (m, v) = restore_moments(self.policy.params(), &ck)?;
        self.optimizer.restore_state(m, v, ck.opt_step);
        *rng = ck.rng.restore();
        Ok((ck.step as usize, extra.stats))
    }

    /// Crash-safe [`DpoTrainer::run`]: checkpoint to `dir` every `every`
    /// epochs (floor 1, plus once at the end) and resume from `dir` when
    /// it already holds a committed checkpoint. A killed run re-invoked
    /// with the same policy, pairs, and seed reproduces the uninterrupted
    /// per-minibatch stats bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CkptError`] on checkpoint corruption or mismatch.
    pub fn run_checkpointed(
        &mut self,
        pairs: &[PreferencePair],
        rng: &mut ChaCha8Rng,
        dir: &Path,
        every: usize,
    ) -> Result<Vec<DpoStepStats>, CkptError> {
        let every = every.max(1);
        let (mut done, mut stats) = if TrainCheckpoint::exists(dir) {
            self.restore(dir, pairs.len(), rng)?
        } else {
            (0, Vec::new())
        };
        while done < self.config.epochs {
            self.train_epoch(pairs, rng, &mut stats);
            done += 1;
            if done % every == 0 || done == self.config.epochs {
                self.checkpoint(dir, done, pairs.len(), &stats, rng)?;
            }
        }
        Ok(stats)
    }

    /// Sequence log-probability as a differentiable scalar on the given
    /// tape/bindings.
    fn policy_logp(
        model: &Transformer,
        tape: &mut Tape,
        bound: &eva_model::Bound,
        tokens: &[TokenId],
    ) -> eva_nn::Value {
        let t = tokens.len();
        let hidden = model.hidden(tape, bound, tokens, 1, t);
        let logits = model.lm_logits(tape, bound, hidden);
        let targets: Vec<usize> = tokens[1..].iter().map(|t| t.index()).collect();
        let rows: Vec<usize> = (0..t - 1).collect();
        let act = tape.select_rows(logits, &rows);
        let lp = tape.log_prob(act, &targets);
        tape.sum_all(lp)
    }
}

const DPO_KIND: &str = "dpo";

/// Trainer-specific resume state stored in the checkpoint's `extra` slot.
#[derive(Serialize, Deserialize)]
struct DpoExtra {
    kind: String,
    config: DpoConfig,
    n_pairs: usize,
    stats: Vec<DpoStepStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RankClass;
    use eva_model::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn seq(tokens: &[u32], class: RankClass) -> LabeledSequence {
        LabeledSequence {
            tokens: tokens.iter().map(|&t| TokenId(t)).collect(),
            class,
        }
    }

    #[test]
    fn four_classes_give_six_pairs_per_draw() {
        let samples = vec![
            seq(&[2, 3, 2], RankClass::HighPerformance),
            seq(&[2, 4, 2], RankClass::LowPerformance),
            seq(&[2, 5, 2], RankClass::Irrelevant),
            seq(&[2, 6, 2], RankClass::Invalid),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let pairs = pairs_from_ranks(&samples, 1, &mut rng);
        assert_eq!(pairs.len(), 6);
        // The high-performance sample wins in 3 pairs, never loses.
        let high: Vec<TokenId> = samples[0].tokens.clone();
        assert_eq!(pairs.iter().filter(|p| p.win == high).count(), 3);
        assert!(!pairs.iter().any(|p| p.lose == high));
    }

    #[test]
    fn missing_classes_reduce_pairs() {
        let samples = vec![
            seq(&[2, 3, 2], RankClass::HighPerformance),
            seq(&[2, 5, 2], RankClass::Irrelevant),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pairs = pairs_from_ranks(&samples, 2, &mut rng);
        assert_eq!(pairs.len(), 2, "one pair per draw");
    }

    #[test]
    fn dpo_raises_margin_on_fixed_pair() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = Transformer::new(ModelConfig::tiny(12, 12), &mut rng);
        let pair = PreferencePair {
            win: vec![TokenId(2), TokenId(3), TokenId(4), TokenId(1)],
            lose: vec![TokenId(2), TokenId(5), TokenId(6), TokenId(1)],
        };
        let cfg = DpoConfig {
            beta: 0.5,
            lr: 1e-3,
            epochs: 20,
            minibatch_size: 1,
        };
        let mut trainer = DpoTrainer::new(model, cfg);
        let before = trainer.margin(&pair);
        let stats = trainer.run(std::slice::from_ref(&pair), &mut rng);
        let after = trainer.margin(&pair);
        assert!(after > before + 0.5, "margin {before} -> {after}");
        assert!(trainer.reward_accuracy(&[pair]) == 1.0);
        // Loss decreases over training.
        assert!(stats.last().unwrap().loss < stats.first().unwrap().loss);
    }

    #[test]
    fn untrained_margin_is_near_zero() {
        // π_θ == π_ref at initialization, so every margin is exactly 0 and
        // reward accuracy is 0 (no pair strictly positive) — matching the
        // paper's observation that the pretrain-only model shows no
        // preference for winning topologies.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = Transformer::new(ModelConfig::tiny(12, 12), &mut rng);
        let trainer = DpoTrainer::new(model, DpoConfig::default());
        let pair = PreferencePair {
            win: vec![TokenId(2), TokenId(3), TokenId(1)],
            lose: vec![TokenId(2), TokenId(5), TokenId(1)],
        };
        assert!(trainer.margin(&pair).abs() < 1e-5);
        assert_eq!(trainer.reward_accuracy(&[pair]), 0.0);
    }

    #[test]
    fn sequence_logp_is_negative_and_finite() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = Transformer::new(ModelConfig::tiny(12, 12), &mut rng);
        let lp = DpoTrainer::sequence_logp(&model, &[TokenId(2), TokenId(3), TokenId(4)]);
        assert!(lp < 0.0 && lp.is_finite());
    }

    #[test]
    fn killed_dpo_run_resumes_bit_exactly() {
        let pairs = vec![
            PreferencePair {
                win: vec![TokenId(2), TokenId(3), TokenId(4), TokenId(1)],
                lose: vec![TokenId(2), TokenId(5), TokenId(6), TokenId(1)],
            },
            PreferencePair {
                win: vec![TokenId(2), TokenId(4), TokenId(1)],
                lose: vec![TokenId(2), TokenId(6), TokenId(1)],
            },
        ];
        let cfg = DpoConfig {
            beta: 0.5,
            lr: 1e-3,
            epochs: 6,
            minibatch_size: 1,
        };
        let dir = std::env::temp_dir().join(format!("eva_dpo_resume_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // Uninterrupted reference run.
        let init = Transformer::new(ModelConfig::tiny(12, 12), &mut ChaCha8Rng::seed_from_u64(5));
        let mut rng_a = ChaCha8Rng::seed_from_u64(6);
        let mut trainer_a = DpoTrainer::new(init.clone(), cfg);
        let stats_a = trainer_a.run(&pairs, &mut rng_a);

        // Interrupted run: two epochs, checkpoint, then "crash".
        {
            let mut rng_b = ChaCha8Rng::seed_from_u64(6);
            let mut trainer_b = DpoTrainer::new(init.clone(), cfg);
            let mut stats_b = Vec::new();
            for _ in 0..2 {
                trainer_b.train_epoch(&pairs, &mut rng_b, &mut stats_b);
            }
            trainer_b
                .checkpoint(&dir, 2, pairs.len(), &stats_b, &rng_b)
                .expect("checkpoint");
        }

        // Resume into a fresh trainer built per the resume contract (same
        // pretrained policy, same pairs); the RNG seed is deliberately
        // wrong — it must be overwritten from the snapshot.
        let mut rng_c = ChaCha8Rng::seed_from_u64(999);
        let mut trainer_c = DpoTrainer::new(init.clone(), cfg);
        let stats_c = trainer_c
            .run_checkpointed(&pairs, &mut rng_c, &dir, 10)
            .expect("resume");
        assert_eq!(stats_a, stats_c, "resumed stats must match uninterrupted");
        for i in 0..trainer_a.policy().params().len() {
            assert_eq!(
                trainer_a.policy().params().tensor(i).data(),
                trainer_c.policy().params().tensor(i).data(),
                "tensor {} diverged after resume",
                trainer_a.policy().params().name(i)
            );
        }

        // A checkpoint from a different pair set is refused.
        let mut rng_d = ChaCha8Rng::seed_from_u64(7);
        let mut trainer_d = DpoTrainer::new(init, cfg);
        match trainer_d.restore(&dir, pairs.len() + 1, &mut rng_d) {
            Err(CkptError::Mismatch { .. }) => {}
            other => panic!("expected pair-count mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
