//! The rank classes of Table I, Otsu's threshold, and the PPO reward model.
//!
//! The reward model combines a **rule-based checker** (the `eva-spice`
//! validity oracle) with a **multiclass classifier** over the three valid
//! classes; the sequence reward is the rank score of Table I. The paper
//! trains the classifier with a Plackett–Luce ranking objective over the
//! class ordering, which for a single judgment per sequence reduces to the
//! softmax/cross-entropy likelihood used here.

use std::sync::{Arc, OnceLock};

use eva_model::{GrammarTable, Transformer};
use eva_nn::{AdamW, Tape};
use eva_spice::SimFailClass;
use eva_tokenizer::{TokenId, Tokenizer};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::heads::LinearHead;

/// Rank classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RankClass {
    /// High-performance relevant valid circuit → reward 1.0.
    HighPerformance,
    /// Low-performance relevant valid circuit → reward 0.5.
    LowPerformance,
    /// Irrelevant valid circuit → reward −0.5.
    Irrelevant,
    /// Invalid circuit → reward −1.0.
    Invalid,
}

impl RankClass {
    /// All classes, best first (the Plackett–Luce / Bradley–Terry order).
    pub const ALL: [RankClass; 4] = [
        RankClass::HighPerformance,
        RankClass::LowPerformance,
        RankClass::Irrelevant,
        RankClass::Invalid,
    ];

    /// The reward score of Table I.
    pub fn score(self) -> f64 {
        match self {
            RankClass::HighPerformance => 1.0,
            RankClass::LowPerformance => 0.5,
            RankClass::Irrelevant => -0.5,
            RankClass::Invalid => -1.0,
        }
    }

    /// Classifier output index for the three *valid* classes.
    ///
    /// # Panics
    ///
    /// Panics for [`RankClass::Invalid`], which is decided by the
    /// rule-based checker, not the classifier.
    pub fn class_index(self) -> usize {
        match self {
            RankClass::HighPerformance => 0,
            RankClass::LowPerformance => 1,
            RankClass::Irrelevant => 2,
            RankClass::Invalid => panic!("invalid is decided by the rule-based checker"),
        }
    }

    /// Inverse of [`RankClass::class_index`].
    pub fn from_class_index(index: usize) -> RankClass {
        match index {
            0 => RankClass::HighPerformance,
            1 => RankClass::LowPerformance,
            _ => RankClass::Irrelevant,
        }
    }
}

/// Finite per-class penalty for a simulation that produced no figure of
/// merit, on the Table-I reward scale.
///
/// Historically an unmeasurable circuit collapsed to `-inf` fitness; fed
/// into PPO that would poison advantage normalization (the batch mean and
/// variance become NaN), so every failure class maps to a **distinct
/// finite** penalty instead. Classes the policy can actually fix
/// (invalid, singular, blowup, divergence) are punished near the Table-I
/// invalid score; classes caused by the harness (budget too small, an
/// external cancel) are punished more mildly so they do not masquerade
/// as bad circuits.
pub fn sim_fail_penalty(class: SimFailClass) -> f64 {
    match class {
        SimFailClass::Invalid => RankClass::Invalid.score(), // -1.0
        SimFailClass::Singular => -0.95,
        SimFailClass::Blowup => -0.9,
        SimFailClass::NoConvergence => -0.85,
        SimFailClass::Budget => -0.7,
        SimFailClass::Aborted => -0.6,
    }
}

/// Clamp a sequence reward to something advantage normalization can
/// digest: NaN and ±∞ (a diverged classifier head, a legacy `-inf`
/// unmeasurable marker) become the Table-I invalid score.
pub fn sanitize_seq_reward(raw: f64) -> f64 {
    if raw.is_finite() {
        raw
    } else {
        RankClass::Invalid.score()
    }
}

/// Otsu's method (paper ref \[20\]): the FoM threshold maximizing
/// between-class variance, used to split relevant circuits into high / low
/// performance.
///
/// Returns the threshold; values `>= threshold` are "high".
///
/// # Panics
///
/// Panics if `foms` is empty.
pub fn otsu_threshold(foms: &[f64]) -> f64 {
    assert!(!foms.is_empty(), "otsu needs data");
    let mut sorted: Vec<f64> = foms.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    let total: f64 = sorted.iter().sum();
    let mut best_thr = sorted[n / 2];
    let mut best_var = f64::NEG_INFINITY;
    let mut acc = 0.0;
    for k in 0..n.saturating_sub(1) {
        acc += sorted[k];
        let w0 = (k + 1) as f64;
        let w1 = (n - k - 1) as f64;
        let m0 = acc / w0;
        let m1 = (total - acc) / w1;
        let var = w0 * w1 * (m0 - m1) * (m0 - m1);
        if var > best_var {
            best_var = var;
            best_thr = 0.5 * (sorted[k] + sorted[k + 1]);
        }
    }
    best_thr
}

/// A performance-labeled token sequence for reward-model / DPO training.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSequence {
    /// Token ids including the trailing `END`.
    pub tokens: Vec<TokenId>,
    /// The rank class.
    pub class: RankClass,
}

/// The PPO environment: rule-based validity check + learned 3-way
/// classifier on the transformer backbone.
#[derive(Debug, Clone)]
pub struct RewardModel {
    backbone: Transformer,
    head: LinearHead,
    /// Lazily-built vocabulary table backing the structural prefilter:
    /// the same incremental-validity automaton the grammar-masked
    /// decoder uses, replayed once per scored sequence. Built from the
    /// first tokenizer this model scores with.
    prefilter: OnceLock<Arc<GrammarTable>>,
}

impl RewardModel {
    /// Wrap a (typically pretrained) backbone with a fresh classifier head.
    pub fn new<R: Rng + ?Sized>(backbone: Transformer, rng: &mut R) -> RewardModel {
        let d = backbone.config().d_model;
        let head = LinearHead::new("rank", d, 3, rng);
        RewardModel {
            backbone,
            head,
            prefilter: OnceLock::new(),
        }
    }

    /// The backbone.
    pub fn backbone(&self) -> &Transformer {
        &self.backbone
    }

    /// Classifier logits `[3]` for one sequence (read at the last token).
    pub fn class_logits(&self, tokens: &[TokenId]) -> Vec<f32> {
        let mut tape = Tape::new();
        let bound = self.backbone.bind(&mut tape);
        let t = tokens.len();
        let hidden = self.backbone.hidden(&mut tape, &bound, tokens, 1, t);
        let flat = tape.reshape(hidden, vec![t, self.backbone.config().d_model]);
        let last = tape.select_rows(flat, &[t - 1]);
        let hb = self.head.bind(&mut tape);
        let logits = self.head.apply(&mut tape, hb, last);
        tape.value(logits).data().to_vec()
    }

    /// Predicted valid-class for a sequence.
    pub fn classify(&self, tokens: &[TokenId]) -> RankClass {
        let logits = self.class_logits(tokens);
        let argmax = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(2);
        RankClass::from_class_index(argmax)
    }

    /// Fast rule-based structural reject. `true` means the incremental
    /// automaton proves the walk can never decode into a valid closed
    /// topology (self-loop, supply short, floating pins, missing VDD,
    /// not closing at VSS…), so the SPICE elaboration and DC solve can
    /// be skipped outright. `false` is *not* a validity proof — the
    /// electrical oracle still runs.
    fn structural_reject(&self, tokens: &[TokenId], tokenizer: &Tokenizer) -> bool {
        let table = self
            .prefilter
            .get_or_init(|| Arc::new(GrammarTable::from_vocab(tokenizer.iter())));
        if tokens.first() != Some(&tokenizer.vss()) {
            return false; // malformed start: let the parser report it
        }
        let mut nodes = Vec::with_capacity(tokens.len());
        for &t in &tokens[1..] {
            if t == Tokenizer::END || t == Tokenizer::PAD {
                break;
            }
            match table.node(t) {
                Some(n) => nodes.push(n),
                None => return false, // unmappable token: defer to the oracle
            }
        }
        !table.fresh_automaton().accepts(nodes)
    }

    /// The sequence reward `R_φ(x, y)`: −1 if the rule-based checker
    /// rejects the decoded circuit, otherwise the classifier's expected
    /// rank score (probability-weighted over the three valid classes).
    pub fn reward(&self, tokens: &[TokenId], tokenizer: &Tokenizer) -> f64 {
        // Structural prefilter: a rejected rollout costs one automaton
        // replay instead of a full SPICE cycle.
        if self.structural_reject(tokens, tokenizer) {
            return RankClass::Invalid.score();
        }
        let valid = tokenizer
            .to_sequence(tokens)
            .ok()
            .and_then(|s| s.to_topology().ok())
            .map(|t| eva_spice::check_validity(&t).is_valid())
            .unwrap_or(false);
        if !valid {
            return RankClass::Invalid.score();
        }
        let logits = self.class_logits(tokens);
        let maxv = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f64> = logits
            .iter()
            .map(|&v| f64::from((v - maxv).exp()))
            .collect();
        let denom: f64 = exps.iter().sum();
        let mut score = 0.0;
        for (i, e) in exps.iter().enumerate() {
            score += (e / denom) * RankClass::from_class_index(i).score();
        }
        score
    }

    /// Train the classifier (and backbone) on labeled sequences. Invalid
    /// samples are skipped — the checker owns them. Returns per-epoch mean
    /// losses.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        samples: &[LabeledSequence],
        epochs: usize,
        lr: f32,
        rng: &mut R,
    ) -> Vec<f32> {
        let usable: Vec<&LabeledSequence> = samples
            .iter()
            .filter(|s| s.class != RankClass::Invalid)
            .collect();
        let mut all_params: Vec<eva_nn::Tensor> = self.backbone.params().tensors().to_vec();
        all_params.extend_from_slice(self.head.params().tensors());
        let mut opt = AdamW::new(lr, &all_params);
        let n_backbone = self.backbone.params().len();
        let mut losses = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..usable.len()).collect();
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0f32;
            for &si in &order {
                let s = usable[si];
                let mut tape = Tape::new();
                let bound = self.backbone.bind(&mut tape);
                let t = s.tokens.len();
                let hidden = self.backbone.hidden(&mut tape, &bound, &s.tokens, 1, t);
                let flat = tape.reshape(hidden, vec![t, self.backbone.config().d_model]);
                let last = tape.select_rows(flat, &[t - 1]);
                let hb = self.head.bind(&mut tape);
                let logits = self.head.apply(&mut tape, hb, last);
                let loss = tape.cross_entropy(logits, &[s.class.class_index()], &[true]);
                epoch_loss += tape.value(loss).item();
                let grads = tape.backward(loss);
                let mut g = bound.gradients(&grads);
                g.extend(self.head.gradients(hb, &grads));
                // Update backbone + head jointly.
                let mut params: Vec<eva_nn::Tensor> = self.backbone.params().tensors().to_vec();
                params.extend_from_slice(self.head.params().tensors());
                opt.step(&mut params, &g);
                for (i, p) in params.into_iter().enumerate() {
                    if i < n_backbone {
                        self.backbone.params_mut().set(i, p);
                    } else {
                        self.head.params_mut().set(i - n_backbone, p);
                    }
                }
            }
            losses.push(epoch_loss / usable.len().max(1) as f32);
        }
        losses
    }

    /// Classification accuracy on labeled sequences (invalid skipped).
    pub fn accuracy(&self, samples: &[LabeledSequence]) -> f64 {
        let usable: Vec<&LabeledSequence> = samples
            .iter()
            .filter(|s| s.class != RankClass::Invalid)
            .collect();
        if usable.is_empty() {
            return 0.0;
        }
        let correct = usable
            .iter()
            .filter(|s| self.classify(&s.tokens) == s.class)
            .count();
        correct as f64 / usable.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_model::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn table_one_scores() {
        assert_eq!(RankClass::HighPerformance.score(), 1.0);
        assert_eq!(RankClass::LowPerformance.score(), 0.5);
        assert_eq!(RankClass::Irrelevant.score(), -0.5);
        assert_eq!(RankClass::Invalid.score(), -1.0);
    }

    #[test]
    fn class_order_matches_scores() {
        for w in RankClass::ALL.windows(2) {
            assert!(w[0].score() > w[1].score(), "{:?} > {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn class_index_round_trip() {
        for c in [
            RankClass::HighPerformance,
            RankClass::LowPerformance,
            RankClass::Irrelevant,
        ] {
            assert_eq!(RankClass::from_class_index(c.class_index()), c);
        }
    }

    #[test]
    #[should_panic(expected = "rule-based")]
    fn invalid_has_no_class_index() {
        let _ = RankClass::Invalid.class_index();
    }

    #[test]
    fn sim_fail_penalties_are_finite_and_distinct() {
        let classes = [
            SimFailClass::Invalid,
            SimFailClass::Singular,
            SimFailClass::NoConvergence,
            SimFailClass::Blowup,
            SimFailClass::Budget,
            SimFailClass::Aborted,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in classes {
            let p = sim_fail_penalty(c);
            assert!(p.is_finite(), "{c:?} penalty must be finite");
            assert!(p < 0.0, "{c:?} penalty must punish");
            assert!(
                p >= RankClass::Invalid.score(),
                "{c:?} must not be punished harder than an invalid circuit"
            );
            assert!(seen.insert(p.to_bits()), "{c:?} penalty must be distinct");
        }
        // Harness-caused failures are punished more mildly than any
        // circuit-caused failure.
        assert!(
            sim_fail_penalty(SimFailClass::Budget) > sim_fail_penalty(SimFailClass::NoConvergence)
        );
        assert!(sim_fail_penalty(SimFailClass::Aborted) > sim_fail_penalty(SimFailClass::Budget));
    }

    #[test]
    fn sanitize_blocks_nan_and_infinities() {
        assert_eq!(sanitize_seq_reward(0.75), 0.75);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = sanitize_seq_reward(bad);
            assert!(s.is_finite());
            assert_eq!(s, RankClass::Invalid.score());
        }
    }

    #[test]
    fn otsu_separates_bimodal() {
        let mut data = vec![1.0, 1.1, 0.9, 1.05, 0.95];
        data.extend([10.0, 10.2, 9.8, 10.1]);
        let thr = otsu_threshold(&data);
        assert!(thr > 1.2 && thr < 9.7, "threshold {thr}");
    }

    #[test]
    fn otsu_single_value() {
        let thr = otsu_threshold(&[5.0]);
        assert!(thr.is_finite());
    }

    #[test]
    fn structural_prefilter_agrees_with_the_oracle() {
        let walk: Vec<String> = ["VSS", "R1_P", "R1_N", "VDD", "R1_N", "R1_P", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tok = Tokenizer::fit([walk.as_slice()]);
        let id = |s: &str| tok.id(s).expect("in vocabulary");
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let backbone = Transformer::new(ModelConfig::tiny(tok.vocab_size(), 16), &mut rng);
        let rm = RewardModel::new(backbone, &mut rng);

        // A resistor between the rails: clears the prefilter, the SPICE
        // oracle agrees, and the classifier's expected score applies.
        let valid: Vec<TokenId> = walk.iter().map(|s| id(s)).chain([Tokenizer::END]).collect();
        assert!(
            rm.reward(&valid, &tok) > RankClass::Invalid.score(),
            "valid walk must not be rejected by the prefilter"
        );

        // A walk ending away from VSS is structurally hopeless: the
        // automaton rejects it without a SPICE cycle.
        let dangling = vec![id("VSS"), id("R1_P"), Tokenizer::END];
        assert_eq!(rm.reward(&dangling, &tok), RankClass::Invalid.score());
        assert!(rm.structural_reject(&dangling, &tok));
        assert!(!rm.structural_reject(&valid, &tok));
    }

    #[test]
    fn classifier_learns_toy_rule() {
        // Sequences starting with token 3 are "high", token 4 "irrelevant".
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let backbone = Transformer::new(ModelConfig::tiny(8, 8), &mut rng);
        let mut rm = RewardModel::new(backbone, &mut rng);
        let mk = |first: u32, class: RankClass| LabeledSequence {
            tokens: vec![TokenId(2), TokenId(first), TokenId(2), TokenId(1)],
            class,
        };
        let samples = vec![
            mk(3, RankClass::HighPerformance),
            mk(4, RankClass::Irrelevant),
            mk(3, RankClass::HighPerformance),
            mk(4, RankClass::Irrelevant),
        ];
        rm.train(&samples, 30, 3e-3, &mut rng);
        assert!(
            rm.accuracy(&samples) >= 0.99,
            "acc {}",
            rm.accuracy(&samples)
        );
        assert_eq!(rm.classify(&samples[0].tokens), RankClass::HighPerformance);
    }
}
