//! Proximal policy optimization — Algorithm 1 of the paper.
//!
//! The agent is the pretrained transformer with a scalar value head; the
//! environment is the [`crate::reward::RewardModel`]; actions are token
//! choices; the per-token reward is Eq. 2 (sequence reward at the final
//! action minus a per-token KL penalty against the frozen reference).
//! Advantages use GAE (the recurrence under Eq. 3); the policy loss is the
//! clipped surrogate (Eq. 3) and the value loss the squared return error
//! (Eq. 4), combined as `L = −L_policy + vc · L_value`.

use std::path::Path;

use eva_model::{decode_batch_bounded, InferError, LaneRequest, SamplingPolicy, Transformer};
use eva_nn::ckpt::{
    moments_as_paramsets, restore_moments, CkptError, RngState, TrainCheckpoint,
    TRAIN_MANIFEST_FILE,
};
use eva_nn::{AdamW, ParamSet, Tape, Tensor};
use eva_tokenizer::{TokenId, Tokenizer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::heads::LinearHead;
use crate::reward::RewardModel;
use crate::TrainError;

/// PPO hyperparameters (names follow Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Outer epochs (`N_epochs`).
    pub epochs: usize,
    /// Optimization passes per batch (`N_ppo`).
    pub ppo_epochs: usize,
    /// Rollouts per epoch (`D`).
    pub batch_size: usize,
    /// Sequences per optimizer step (`B`).
    pub minibatch_size: usize,
    /// Value-loss coefficient (`vc`).
    pub value_coef: f32,
    /// Clipping width (`ε`).
    pub clip_eps: f32,
    /// Discount (`γ`).
    pub gamma: f32,
    /// GAE decay (`λ`).
    pub lambda: f32,
    /// KL-penalty strength (`β` in Eq. 2).
    pub kl_beta: f32,
    /// Learning rate.
    pub lr: f32,
    /// Sampling temperature for rollouts.
    pub temperature: f32,
    /// Top-k sampling cutoff.
    pub top_k: Option<usize>,
    /// Maximum generated sequence length (tokens, including `VSS`).
    pub max_len: usize,
}

impl Default for PpoConfig {
    fn default() -> PpoConfig {
        PpoConfig {
            epochs: 5,
            ppo_epochs: 4,
            batch_size: 16,
            minibatch_size: 4,
            value_coef: 0.5,
            clip_eps: 0.2,
            gamma: 0.99,
            lambda: 0.95,
            kl_beta: 0.05,
            lr: 5e-5,
            temperature: 1.0,
            top_k: Some(40),
            max_len: 96,
        }
    }
}

/// One sampled trajectory with frozen-policy statistics.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Generated tokens, starting at `VSS`; includes the terminal `END`
    /// when the model emitted one.
    pub tokens: Vec<TokenId>,
    /// Per-action log-probabilities under the rollout policy.
    pub logp_old: Vec<f32>,
    /// Per-state value estimates under the rollout policy.
    pub values_old: Vec<f32>,
    /// The sequence reward `R_φ(x, y)`.
    pub seq_reward: f64,
    /// Per-action shaped rewards (Eq. 2): `−β·KL_t`, plus `R_φ` on the
    /// final action.
    pub rewards: Vec<f32>,
    /// GAE advantages per action.
    pub advantages: Vec<f32>,
    /// Value targets `G_t = A_t + V(x_t)`.
    pub returns: Vec<f32>,
    /// Mean per-token KL against the reference.
    pub mean_kl: f32,
}

/// Per-epoch statistics (the curves of Figures 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoEpochStats {
    /// Mean sequence reward (the paper's "PPO score", Table-I scale).
    pub mean_score: f64,
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Combined loss `−L_policy + vc·L_value`.
    pub total_loss: f32,
    /// Mean per-token KL to the reference model.
    pub mean_kl: f32,
}

/// PPO fine-tuning driver.
pub struct PpoTrainer<'a> {
    policy: Transformer,
    value_head: LinearHead,
    reference: Transformer,
    reward_model: &'a RewardModel,
    tokenizer: &'a Tokenizer,
    config: PpoConfig,
    optimizer: AdamW,
}

impl<'a> PpoTrainer<'a> {
    /// Create a trainer. `policy` is cloned as the frozen reference
    /// `π_θref`.
    pub fn new<R: Rng + ?Sized>(
        policy: Transformer,
        reward_model: &'a RewardModel,
        tokenizer: &'a Tokenizer,
        config: PpoConfig,
        rng: &mut R,
    ) -> PpoTrainer<'a> {
        let d = policy.config().d_model;
        let value_head = LinearHead::new("value", d, 1, rng);
        let mut all: Vec<Tensor> = policy.params().tensors().to_vec();
        all.extend_from_slice(value_head.params().tensors());
        let mut optimizer = AdamW::new(config.lr, &all);
        optimizer.weight_decay = 0.0;
        PpoTrainer {
            reference: policy.clone(),
            policy,
            value_head,
            reward_model,
            tokenizer,
            config,
            optimizer,
        }
    }

    /// The (fine-tuned) policy.
    pub fn policy(&self) -> &Transformer {
        &self.policy
    }

    /// Consume the trainer, returning the fine-tuned policy.
    pub fn into_policy(self) -> Transformer {
        self.policy
    }

    /// The configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// KV slots for rollout decoding: bounds the arena while keeping the
    /// batched GEMMs fat; queued trajectories join mid-flight as earlier
    /// lanes terminate (per-lane seeds keep every trajectory independent
    /// of the admission interleaving).
    const ROLLOUT_LANES: usize = 16;

    /// Sample `n` trajectories from the current policy through a bounded
    /// continuous-batching pool (unconstrained — the policy must learn
    /// the grammar — with the terminal `END` kept so the reward model can
    /// score it).
    ///
    /// # Errors
    ///
    /// Propagates the first per-lane [`InferError`]; a malformed
    /// policy/tokenizer pairing must not abort a whole experiment run.
    fn sample_batch<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Vec<TokenId>>, InferError> {
        let sampling =
            SamplingPolicy::unconstrained(self.tokenizer.vss(), Tokenizer::END, Tokenizer::PAD);
        let lanes: Vec<LaneRequest<ChaCha8Rng>> = (0..n)
            .map(|_| LaneRequest {
                rng: ChaCha8Rng::seed_from_u64(rng.gen()),
                temperature: self.config.temperature,
                top_k: self.config.top_k,
                max_len: self.config.max_len,
                prompt: Vec::new(),
            })
            .collect();
        decode_batch_bounded(&self.policy, &sampling, lanes, Self::ROLLOUT_LANES)
            .into_iter()
            .map(|lane| match lane.error {
                Some(e) => Err(e),
                None => Ok(lane.tokens),
            })
            .collect()
    }

    /// Per-action log-probs (and optionally state values) for a token
    /// sequence under `model`.
    fn score_sequence(
        model: &Transformer,
        value_head: Option<&LinearHead>,
        tokens: &[TokenId],
    ) -> (Vec<f32>, Vec<f32>) {
        let t = tokens.len();
        let mut tape = Tape::new();
        let bound = model.bind(&mut tape);
        let hidden = model.hidden(&mut tape, &bound, tokens, 1, t);
        let logits = model.lm_logits(&mut tape, &bound, hidden);
        let targets: Vec<usize> = tokens[1..].iter().map(|t| t.index()).collect();
        // Positions 0..t-1 act; select their logit rows.
        let act_rows: Vec<usize> = (0..t - 1).collect();
        let act_logits = tape.select_rows(logits, &act_rows);
        let lp = tape.log_prob(act_logits, &targets);
        let logp = tape.value(lp).data().to_vec();
        let values = if let Some(vh) = value_head {
            let flat = tape.reshape(hidden, vec![t, model.config().d_model]);
            let states = tape.select_rows(flat, &act_rows);
            let hb = vh.bind(&mut tape);
            let v = vh.apply(&mut tape, hb, states);
            tape.value(v).data().to_vec()
        } else {
            Vec::new()
        };
        (logp, values)
    }

    /// Generate a batch of rollouts — one joint lockstep decode across all
    /// `batch_size` lanes — score them with the reward model, and compute
    /// KL-shaped rewards (Eq. 2), GAE advantages and returns.
    ///
    /// # Errors
    ///
    /// Propagates the typed [`InferError`] from decoding instead of
    /// panicking (a malformed state must not abort table2/fig3 runs).
    pub fn rollout_batch<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Vec<Rollout>, InferError> {
        let cfg = &self.config;
        let mut rollouts = Vec::with_capacity(cfg.batch_size);
        for tokens in self.sample_batch(cfg.batch_size, rng)? {
            let (logp_old, values_old) =
                Self::score_sequence(&self.policy, Some(&self.value_head), &tokens);
            let (ref_logp, _) = Self::score_sequence(&self.reference, None, &tokens);
            // NaN/Inf guard: a non-finite sequence reward (diverged
            // classifier head, legacy `-inf` unmeasurable marker) would
            // poison the batch advantage normalization below.
            let seq_reward = crate::reward::sanitize_seq_reward(
                self.reward_model.reward(&tokens, self.tokenizer),
            );

            let n = logp_old.len();
            let mut rewards = vec![0.0f32; n];
            let mut kl_sum = 0.0f32;
            for i in 0..n {
                let kl = logp_old[i] - ref_logp[i];
                kl_sum += kl;
                rewards[i] = -cfg.kl_beta * kl;
            }
            rewards[n - 1] += seq_reward as f32;

            // GAE.
            let mut advantages = vec![0.0f32; n];
            let mut next_adv = 0.0f32;
            for i in (0..n).rev() {
                let v_next = if i + 1 < n { values_old[i + 1] } else { 0.0 };
                let delta = rewards[i] + cfg.gamma * v_next - values_old[i];
                next_adv = delta + cfg.gamma * cfg.lambda * next_adv;
                advantages[i] = next_adv;
            }
            let returns: Vec<f32> = advantages
                .iter()
                .zip(&values_old)
                .map(|(a, v)| a + v)
                .collect();

            rollouts.push(Rollout {
                tokens,
                logp_old,
                values_old,
                seq_reward,
                rewards,
                advantages,
                returns,
                mean_kl: kl_sum / n as f32,
            });
        }
        // Batch-normalize advantages (standard PPO practice).
        let all: Vec<f32> = rollouts
            .iter()
            .flat_map(|r| r.advantages.iter().copied())
            .collect();
        let mean = all.iter().sum::<f32>() / all.len() as f32;
        let var = all.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / all.len() as f32;
        let std = var.sqrt().max(1e-6);
        for r in &mut rollouts {
            for a in &mut r.advantages {
                *a = (*a - mean) / std;
            }
        }
        Ok(rollouts)
    }

    /// Run one PPO epoch: rollout, then `ppo_epochs × minibatch`
    /// optimization (Algorithm 1 lines 2–10).
    ///
    /// # Errors
    ///
    /// Propagates decode failures from [`PpoTrainer::rollout_batch`].
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<PpoEpochStats, InferError> {
        let rollouts = self.rollout_batch(rng)?;
        let cfg = self.config;
        let mean_score = rollouts.iter().map(|r| r.seq_reward).sum::<f64>() / rollouts.len() as f64;
        let mean_kl = rollouts.iter().map(|r| r.mean_kl).sum::<f32>() / rollouts.len() as f32;

        let n_policy = self.policy.params().len();
        let n_head = self.value_head.params().len();
        let mut policy_loss_acc = 0.0f32;
        let mut value_loss_acc = 0.0f32;
        let mut total_loss_acc = 0.0f32;
        let mut steps = 0usize;

        let mut order: Vec<usize> = (0..rollouts.len()).collect();
        for _ in 0..cfg.ppo_epochs {
            order.shuffle(rng);
            for chunk in order.chunks(cfg.minibatch_size) {
                // Accumulated gradients over the minibatch, indexed by
                // global parameter position (policy then value head).
                let mut acc: Vec<Option<Tensor>> = vec![None; n_policy + n_head];
                let mut mb_policy = 0.0f32;
                let mut mb_value = 0.0f32;
                let total_actions: usize = chunk.iter().map(|&i| rollouts[i].logp_old.len()).sum();
                for &ri in chunk {
                    let r = &rollouts[ri];
                    let t = r.tokens.len();
                    let n = r.logp_old.len();
                    let mut tape = Tape::new();
                    let bound = self.policy.bind(&mut tape);
                    let hidden = self.policy.hidden(&mut tape, &bound, &r.tokens, 1, t);
                    let logits = self.policy.lm_logits(&mut tape, &bound, hidden);
                    let targets: Vec<usize> = r.tokens[1..].iter().map(|t| t.index()).collect();
                    let act_rows: Vec<usize> = (0..n).collect();
                    let act_logits = tape.select_rows(logits, &act_rows);
                    let lp_new = tape.log_prob(act_logits, &targets);

                    // Ratio and clipped surrogate (Eq. 3).
                    let old = tape.leaf(Tensor::from_vec(vec![n], r.logp_old.clone()), false);
                    let diff = tape.sub(lp_new, old);
                    let ratio = tape.exp(diff);
                    let adv = Tensor::from_vec(vec![n], r.advantages.clone());
                    let unclipped = tape.mul_const(ratio, &adv);
                    let clipped_ratio = tape.clamp(ratio, 1.0 - cfg.clip_eps, 1.0 + cfg.clip_eps);
                    let clipped = tape.mul_const(clipped_ratio, &adv);
                    let surrogate = tape.minimum(unclipped, clipped);
                    let sur_sum = tape.sum_all(surrogate);
                    // Maximize surrogate → minimize its negation, averaged
                    // over the minibatch's actions.
                    let policy_term = tape.scale(sur_sum, -1.0 / total_actions as f32);

                    // Value loss (Eq. 4).
                    let flat = tape.reshape(hidden, vec![t, self.policy.config().d_model]);
                    let states = tape.select_rows(flat, &act_rows);
                    let hb = self.value_head.bind(&mut tape);
                    let v_pred = self.value_head.apply(&mut tape, hb, states);
                    let v_flat = tape.reshape(v_pred, vec![n]);
                    let g_t = tape.leaf(Tensor::from_vec(vec![n], r.returns.clone()), false);
                    let verr = tape.sub(v_flat, g_t);
                    let vsq = tape.mul(verr, verr);
                    let v_sum = tape.sum_all(vsq);
                    let value_term = tape.scale(v_sum, 0.5 * cfg.value_coef / total_actions as f32);

                    let loss = tape.add(policy_term, value_term);
                    mb_policy += tape.value(policy_term).item();
                    mb_value += tape.value(value_term).item();

                    let grads = tape.backward(loss);
                    let mut g = bound.gradients(&grads);
                    g.extend(self.value_head.gradients(hb, &grads));
                    for (slot, grad) in acc.iter_mut().zip(g) {
                        if let Some(grad) = grad {
                            match slot {
                                Some(existing) => {
                                    let e = existing.make_mut();
                                    for (a, b) in e.iter_mut().zip(grad.data()) {
                                        *a += b;
                                    }
                                }
                                None => *slot = Some(grad.clone()),
                            }
                        }
                    }
                }
                // Optimizer step over policy + value head.
                let mut params: Vec<Tensor> = self.policy.params().tensors().to_vec();
                params.extend_from_slice(self.value_head.params().tensors());
                let grefs: Vec<Option<&Tensor>> = acc.iter().map(Option::as_ref).collect();
                self.optimizer.step(&mut params, &grefs);
                for (i, p) in params.into_iter().enumerate() {
                    if i < n_policy {
                        self.policy.params_mut().set(i, p);
                    } else {
                        self.value_head.params_mut().set(i - n_policy, p);
                    }
                }
                policy_loss_acc += mb_policy;
                value_loss_acc += mb_value;
                total_loss_acc += mb_policy + mb_value;
                steps += 1;
            }
        }
        Ok(PpoEpochStats {
            mean_score,
            policy_loss: policy_loss_acc / steps.max(1) as f32,
            value_loss: value_loss_acc / steps.max(1) as f32,
            total_loss: total_loss_acc / steps.max(1) as f32,
            mean_kl,
        })
    }

    /// Run the full Algorithm 1 loop, returning per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Propagates decode failures from [`PpoTrainer::rollout_batch`].
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Vec<PpoEpochStats>, InferError> {
        (0..self.config.epochs)
            .map(|_| self.train_epoch(rng))
            .collect()
    }

    /// All optimized parameters (policy, then value head) as one named
    /// set — the layout stored in checkpoints. The value head's `value.*`
    /// names never collide with transformer tensor names.
    fn optimized_params(&self) -> ParamSet {
        let mut merged = self.policy.params().clone();
        let head = self.value_head.params();
        for i in 0..head.len() {
            merged.register(head.name(i).to_owned(), head.tensor(i).clone());
        }
        merged
    }

    /// Atomically snapshot the trainer (policy + value head params, AdamW
    /// moments, RNG state, completed-epoch stats) after `epochs_done`
    /// epochs. The frozen reference and the reward model are *not* stored;
    /// [`PpoTrainer::restore`] documents the resume contract.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint write failures.
    pub fn checkpoint(
        &self,
        dir: &Path,
        epochs_done: usize,
        stats: &[PpoEpochStats],
        rng: &ChaCha8Rng,
    ) -> Result<(), CkptError> {
        let merged = self.optimized_params();
        let (opt_m, opt_v) = moments_as_paramsets(&merged, &self.optimizer);
        let extra = serde_json::to_value(PpoExtra {
            kind: PPO_KIND.to_owned(),
            config: self.config,
            stats: stats.to_vec(),
        })
        .expect("ppo extra state is always serializable");
        TrainCheckpoint {
            step: epochs_done as u64,
            params: merged,
            opt_m,
            opt_v,
            opt_step: self.optimizer.steps(),
            rng: RngState::capture(rng),
            extra,
        }
        .save(dir)
    }

    /// Restore trainer state from a committed checkpoint, overwriting
    /// `rng` with the snapshot's RNG state. Returns the number of
    /// completed epochs and their stats.
    ///
    /// The frozen reference `π_θref` and the reward model are
    /// reconstructed by the caller, not the checkpoint: build the trainer
    /// from the same pretrained policy and reward model as the original
    /// run, and the resumed trajectory continues bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CkptError`] on corruption, format drift, or a
    /// checkpoint from a different architecture/config.
    pub fn restore(
        &mut self,
        dir: &Path,
        rng: &mut ChaCha8Rng,
    ) -> Result<(usize, Vec<PpoEpochStats>), CkptError> {
        let ck = TrainCheckpoint::load(dir)?;
        let extra: PpoExtra =
            serde_json::from_value(ck.extra.clone()).map_err(|e| CkptError::Corrupt {
                file: TRAIN_MANIFEST_FILE.to_owned(),
                detail: format!("ppo extra state: {e}"),
            })?;
        if extra.kind != PPO_KIND {
            return Err(CkptError::Mismatch {
                detail: format!("checkpoint kind {:?}, expected {PPO_KIND:?}", extra.kind),
            });
        }
        if extra.config != self.config {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint config {:?} differs from trainer config {:?}",
                    extra.config, self.config
                ),
            });
        }
        if extra.stats.len() != ck.step as usize {
            return Err(CkptError::Corrupt {
                file: TRAIN_MANIFEST_FILE.to_owned(),
                detail: format!(
                    "stats history length {} disagrees with epoch counter {}",
                    extra.stats.len(),
                    ck.step
                ),
            });
        }
        let copied_policy = self.policy.params_mut().copy_matching(&ck.params);
        if copied_policy != self.policy.params().len() {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint covers {copied_policy} of {} policy tensors",
                    self.policy.params().len()
                ),
            });
        }
        let copied_head = self.value_head.params_mut().copy_matching(&ck.params);
        if copied_head != self.value_head.params().len() {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "checkpoint covers {copied_head} of {} value-head tensors",
                    self.value_head.params().len()
                ),
            });
        }
        let (m, v) = restore_moments(&self.optimized_params(), &ck)?;
        self.optimizer.restore_state(m, v, ck.opt_step);
        *rng = ck.rng.restore();
        Ok((ck.step as usize, extra.stats))
    }

    /// Crash-safe [`PpoTrainer::run`]: checkpoint to `dir` every `every`
    /// epochs (floor 1, plus once at the end) and resume from `dir` when
    /// it already holds a committed checkpoint. A killed run re-invoked
    /// with identically-constructed inputs reproduces the uninterrupted
    /// per-epoch stats bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`]: rollout decode failures or typed
    /// checkpoint failures.
    pub fn run_checkpointed(
        &mut self,
        rng: &mut ChaCha8Rng,
        dir: &Path,
        every: usize,
    ) -> Result<Vec<PpoEpochStats>, TrainError> {
        let every = every.max(1);
        let (mut done, mut stats) = if TrainCheckpoint::exists(dir) {
            self.restore(dir, rng)?
        } else {
            (0, Vec::new())
        };
        while done < self.config.epochs {
            stats.push(self.train_epoch(rng)?);
            done += 1;
            if done % every == 0 || done == self.config.epochs {
                self.checkpoint(dir, done, &stats, rng)?;
            }
        }
        Ok(stats)
    }
}

const PPO_KIND: &str = "ppo";

/// Trainer-specific resume state stored in the checkpoint's `extra` slot.
#[derive(Serialize, Deserialize)]
struct PpoExtra {
    kind: String,
    config: PpoConfig,
    stats: Vec<PpoEpochStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::{LabeledSequence, RankClass, RewardModel};
    use eva_model::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_tokenizer() -> Tokenizer {
        // Vocabulary from a couple of simple walks.
        let seqs = vec![
            vec!["VSS".to_owned(), "NM1_S".to_owned(), "VSS".to_owned()],
            vec![
                "VSS".to_owned(),
                "R1_N".to_owned(),
                "R1_P".to_owned(),
                "VDD".to_owned(),
                "VSS".to_owned(),
            ],
        ];
        Tokenizer::fit(seqs.iter().map(|s| s.as_slice()))
    }

    #[test]
    fn rollouts_have_consistent_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let tok = tiny_tokenizer();
        let model = Transformer::new(ModelConfig::tiny(tok.vocab_size(), 24), &mut rng);
        let rm = RewardModel::new(model.clone(), &mut rng);
        let cfg = PpoConfig {
            batch_size: 3,
            max_len: 12,
            ..PpoConfig::default()
        };
        let trainer = PpoTrainer::new(model, &rm, &tok, cfg, &mut rng);
        let rollouts = trainer.rollout_batch(&mut rng).expect("rollout");
        assert_eq!(rollouts.len(), 3);
        for r in &rollouts {
            let n = r.tokens.len() - 1;
            assert_eq!(r.logp_old.len(), n);
            assert_eq!(r.values_old.len(), n);
            assert_eq!(r.advantages.len(), n);
            assert_eq!(r.returns.len(), n);
            assert!(r.tokens[0] == tok.vss());
            assert!(
                r.logp_old.iter().all(|l| *l <= 0.0),
                "log-probs non-positive"
            );
            // The sanitize guard keeps every reward/advantage finite, so
            // batch advantage normalization can never emit NaN.
            assert!(r.seq_reward.is_finite());
            assert!(r.rewards.iter().all(|v| v.is_finite()));
            assert!(r.advantages.iter().all(|v| v.is_finite()));
            assert!(r.returns.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn rewards_compose_per_eq2() {
        // Σ r_t = R_φ − β·Σ KL_t, and every non-final reward is the pure
        // KL penalty (the sequence reward lands on the final action only).
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let tok = tiny_tokenizer();
        let model = Transformer::new(ModelConfig::tiny(tok.vocab_size(), 24), &mut rng);
        let rm = RewardModel::new(model.clone(), &mut rng);
        let cfg = PpoConfig {
            batch_size: 3,
            max_len: 12,
            ..PpoConfig::default()
        };
        let trainer = PpoTrainer::new(model, &rm, &tok, cfg, &mut rng);
        for r in trainer.rollout_batch(&mut rng).expect("rollout") {
            let n = r.rewards.len();
            let total: f32 = r.rewards.iter().sum();
            let expect = r.seq_reward as f32 - cfg.kl_beta * r.mean_kl * n as f32;
            assert!((total - expect).abs() < 1e-3, "{total} vs {expect}");
            // At initialization policy == reference, so the KL part is ~0
            // and non-final rewards are ~0.
            for &rt in &r.rewards[..n - 1] {
                assert!(rt.abs() < 1e-4, "non-final reward {rt}");
            }
            assert!((r.rewards[n - 1] - r.seq_reward as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn advantages_are_batch_normalized() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tok = tiny_tokenizer();
        let model = Transformer::new(ModelConfig::tiny(tok.vocab_size(), 24), &mut rng);
        let rm = RewardModel::new(model.clone(), &mut rng);
        let cfg = PpoConfig {
            batch_size: 4,
            max_len: 10,
            ..PpoConfig::default()
        };
        let trainer = PpoTrainer::new(model, &rm, &tok, cfg, &mut rng);
        let rollouts = trainer.rollout_batch(&mut rng).expect("rollout");
        let all: Vec<f32> = rollouts
            .iter()
            .flat_map(|r| r.advantages.iter().copied())
            .collect();
        let mean = all.iter().sum::<f32>() / all.len() as f32;
        assert!(mean.abs() < 1e-4, "normalized mean {mean}");
    }

    #[test]
    fn epoch_runs_and_updates_policy() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tok = tiny_tokenizer();
        let model = Transformer::new(ModelConfig::tiny(tok.vocab_size(), 16), &mut rng);
        let before = model.params().tensor(0).clone();
        let rm = RewardModel::new(model.clone(), &mut rng);
        let cfg = PpoConfig {
            epochs: 1,
            ppo_epochs: 1,
            batch_size: 2,
            minibatch_size: 2,
            max_len: 8,
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(model, &rm, &tok, cfg, &mut rng);
        let stats = trainer.train_epoch(&mut rng).expect("epoch");
        assert!(stats.total_loss.is_finite());
        assert!(stats.mean_score >= -1.0 && stats.mean_score <= 1.0);
        let after = trainer.policy().params().tensor(0).clone();
        assert_ne!(before.data(), after.data(), "policy updated");
    }

    #[test]
    fn ppo_improves_reward_on_shaped_toy_task() {
        // Toy shaped task: train the classifier so sequences containing
        // "NM1_S" right after VSS score high. PPO should then keep or
        // raise the mean score across epochs.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let tok = tiny_tokenizer();
        let model = Transformer::new(ModelConfig::tiny(tok.vocab_size(), 12), &mut rng);
        let mut rm = RewardModel::new(model.clone(), &mut rng);
        let good = tok.id("NM1_S").unwrap();
        let bad = tok.id("R1_N").unwrap();
        let mk = |tk: TokenId, class: RankClass| LabeledSequence {
            tokens: vec![tok.vss(), tk, tok.vss(), Tokenizer::END],
            class,
        };
        let samples = vec![
            mk(good, RankClass::HighPerformance),
            mk(bad, RankClass::Irrelevant),
            mk(good, RankClass::HighPerformance),
            mk(bad, RankClass::Irrelevant),
        ];
        rm.train(&samples, 25, 3e-3, &mut rng);

        let cfg = PpoConfig {
            epochs: 6,
            ppo_epochs: 2,
            batch_size: 8,
            minibatch_size: 4,
            max_len: 8,
            lr: 3e-4,
            kl_beta: 0.01,
            ..PpoConfig::default()
        };
        let mut trainer = PpoTrainer::new(model, &rm, &tok, cfg, &mut rng);
        let stats = trainer.run(&mut rng).expect("run");
        let first = stats.first().unwrap().mean_score;
        let best_late = stats[stats.len() / 2..]
            .iter()
            .map(|s| s.mean_score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_late >= first - 0.05,
            "score should not collapse: first {first}, late best {best_late}"
        );
    }

    #[test]
    fn killed_ppo_run_resumes_bit_exactly() {
        let tok = tiny_tokenizer();
        let cfg = PpoConfig {
            epochs: 3,
            ppo_epochs: 1,
            batch_size: 2,
            minibatch_size: 2,
            max_len: 8,
            ..PpoConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("eva_ppo_resume_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // The resume contract: every run is built from identically-
        // constructed inputs (pretrained policy, reward model, seeds);
        // only the trainer state comes from the checkpoint.
        let mut rng_init = ChaCha8Rng::seed_from_u64(10);
        let model = Transformer::new(ModelConfig::tiny(tok.vocab_size(), 16), &mut rng_init);
        let rm = RewardModel::new(model.clone(), &mut rng_init);

        // Uninterrupted reference run.
        let mut rng_a = ChaCha8Rng::seed_from_u64(11);
        let mut trainer_a = PpoTrainer::new(model.clone(), &rm, &tok, cfg, &mut rng_a);
        let stats_a = trainer_a.run(&mut rng_a).expect("reference run");

        // Interrupted run: one epoch, checkpoint, then "crash".
        {
            let mut rng_b = ChaCha8Rng::seed_from_u64(11);
            let mut trainer_b = PpoTrainer::new(model.clone(), &rm, &tok, cfg, &mut rng_b);
            let stats_b = vec![trainer_b.train_epoch(&mut rng_b).expect("epoch")];
            trainer_b
                .checkpoint(&dir, 1, &stats_b, &rng_b)
                .expect("checkpoint");
        }

        // Resume with a deliberately wrong RNG seed — the snapshot must
        // overwrite it (and the freshly-initialized value head).
        let mut rng_c = ChaCha8Rng::seed_from_u64(999);
        let mut trainer_c = PpoTrainer::new(model, &rm, &tok, cfg, &mut rng_c);
        let stats_c = trainer_c
            .run_checkpointed(&mut rng_c, &dir, 10)
            .expect("resume");
        assert_eq!(stats_a, stats_c, "resumed stats must match uninterrupted");
        for i in 0..trainer_a.policy().params().len() {
            assert_eq!(
                trainer_a.policy().params().tensor(i).data(),
                trainer_c.policy().params().tensor(i).data(),
                "tensor {} diverged after resume",
                trainer_a.policy().params().name(i)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
