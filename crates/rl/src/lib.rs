//! # eva-rl
//!
//! Targeted fine-tuning of the pretrained EVA model (Section III-C):
//!
//! - [`reward`] — Table I rank classes, Otsu's FoM threshold, and the
//!   reward model (rule-based validity checker + 3-way classifier).
//! - [`data`] — building the small performance-labeled fine-tuning sets
//!   (850 labeled Op-Amps / 362 labeled converters in the paper).
//! - [`ppo`] — Algorithm 1: rollouts, Eq. 2 KL-shaped rewards, GAE, the
//!   clipped surrogate (Eq. 3) and value loss (Eq. 4).
//! - [`dpo`] — Eq. 5: Bradley–Terry pairwise preference fine-tuning over
//!   win/lose pairs derived from the rank classes.
//!
//! See `tests/` for end-to-end fine-tuning on toy tasks; the full-scale
//! experiments live in `eva-bench`.

pub mod data;
pub mod dpo;
pub mod heads;
pub mod ppo;
pub mod reward;

pub use data::{build_finetune_data, FinetuneData};
pub use dpo::{pairs_from_ranks, DpoConfig, DpoStepStats, DpoTrainer, PreferencePair};
pub use heads::LinearHead;
pub use ppo::{PpoConfig, PpoEpochStats, PpoTrainer, Rollout};
pub use reward::{otsu_threshold, LabeledSequence, RankClass, RewardModel};
