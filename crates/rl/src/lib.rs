//! # eva-rl
//!
//! Targeted fine-tuning of the pretrained EVA model (Section III-C):
//!
//! - [`reward`] — Table I rank classes, Otsu's FoM threshold, and the
//!   reward model (rule-based validity checker + 3-way classifier).
//! - [`data`] — building the small performance-labeled fine-tuning sets
//!   (850 labeled Op-Amps / 362 labeled converters in the paper).
//! - [`ppo`] — Algorithm 1: rollouts, Eq. 2 KL-shaped rewards, GAE, the
//!   clipped surrogate (Eq. 3) and value loss (Eq. 4).
//! - [`dpo`] — Eq. 5: Bradley–Terry pairwise preference fine-tuning over
//!   win/lose pairs derived from the rank classes.
//!
//! Both trainers support crash-safe periodic checkpointing
//! ([`PpoTrainer::run_checkpointed`], [`DpoTrainer::run_checkpointed`])
//! built on [`eva_nn::ckpt`]; resumed runs continue bit-exactly.
//!
//! See `tests/` for end-to-end fine-tuning on toy tasks; the full-scale
//! experiments live in `eva-bench`.

use std::fmt;

use eva_model::InferError;
use eva_nn::ckpt::CkptError;

pub mod data;
pub mod dpo;
pub mod heads;
pub mod ppo;
pub mod reward;

pub use data::{build_finetune_data, FinetuneData};
pub use dpo::{pairs_from_ranks, DpoConfig, DpoStepStats, DpoTrainer, PreferencePair};
pub use heads::LinearHead;
pub use ppo::{PpoConfig, PpoEpochStats, PpoTrainer, Rollout};
pub use reward::{
    otsu_threshold, sanitize_seq_reward, sim_fail_penalty, LabeledSequence, RankClass, RewardModel,
};

/// A fine-tuning failure: either rollout decoding broke ([`InferError`])
/// or a checkpoint could not be written/restored ([`CkptError`]).
#[derive(Debug)]
pub enum TrainError {
    /// Decode failure during rollouts.
    Infer(InferError),
    /// Checkpoint write/restore failure.
    Ckpt(CkptError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Infer(e) => write!(f, "rollout decode failed: {e}"),
            TrainError::Ckpt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Infer(e) => Some(e),
            TrainError::Ckpt(e) => Some(e),
        }
    }
}

impl From<InferError> for TrainError {
    fn from(e: InferError) -> TrainError {
        TrainError::Infer(e)
    }
}

impl From<CkptError> for TrainError {
    fn from(e: CkptError) -> TrainError {
        TrainError::Ckpt(e)
    }
}
