//! Small linear heads attached on top of the transformer's final hidden
//! states: the PPO value head and the reward model's 3-way classifier.

use eva_nn::{Gradients, ParamSet, Tape, Tensor, Value};
use rand::Rng;

/// A bias-equipped linear head with its own parameters.
#[derive(Debug, Clone)]
pub struct LinearHead {
    params: ParamSet,
    d_in: usize,
    d_out: usize,
}

/// Tape bindings for one forward pass of a head.
#[derive(Debug, Clone, Copy)]
pub struct HeadBound {
    w: Value,
    b: Value,
}

impl LinearHead {
    /// Create with small random weights.
    pub fn new<R: Rng + ?Sized>(name: &str, d_in: usize, d_out: usize, rng: &mut R) -> LinearHead {
        let mut params = ParamSet::new();
        params.register(
            format!("{name}.w"),
            Tensor::randn(vec![d_in, d_out], 0.02, rng),
        );
        params.register(format!("{name}.b"), Tensor::zeros(vec![d_out]));
        LinearHead {
            params,
            d_in,
            d_out,
        }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// The parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable parameters (for optimizer updates).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Register the head's parameters on a tape.
    pub fn bind(&self, tape: &mut Tape) -> HeadBound {
        HeadBound {
            w: tape.leaf(self.params.tensor(0).clone(), true),
            b: tape.leaf(self.params.tensor(1).clone(), true),
        }
    }

    /// Apply to hidden states `[..., d_in] -> [..., d_out]`.
    pub fn apply(&self, tape: &mut Tape, bound: HeadBound, hidden: Value) -> Value {
        tape.linear(hidden, bound.w, Some(bound.b))
    }

    /// Collect the head's gradients in parameter order.
    pub fn gradients<'g>(&self, bound: HeadBound, grads: &'g Gradients) -> Vec<Option<&'g Tensor>> {
        vec![grads.of(bound.w), grads.of(bound.b)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_nn::AdamW;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let head = LinearHead::new("v", 8, 1, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(vec![3, 8]), false);
        let b = head.bind(&mut tape);
        let y = head.apply(&mut tape, b, x);
        assert_eq!(tape.value(y).shape(), &[3, 1]);
        assert_eq!(head.d_in(), 8);
        assert_eq!(head.d_out(), 1);
    }

    #[test]
    fn head_trains_to_fit_targets() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut head = LinearHead::new("v", 4, 1, &mut rng);
        let x_data = Tensor::from_vec(vec![2, 4], vec![1., 0., 0., 0., 0., 1., 0., 0.]);
        let target = Tensor::from_vec(vec![2, 1], vec![2.0, -1.0]);
        let mut opt = AdamW::new(0.05, head.params().tensors());
        opt.weight_decay = 0.0;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let x = tape.leaf(x_data.clone(), false);
            let b = head.bind(&mut tape);
            let y = head.apply(&mut tape, b, x);
            let t = tape.leaf(target.clone(), false);
            let e = tape.sub(y, t);
            let sq = tape.mul(e, e);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            let g = head.gradients(b, &grads);
            opt.step(head.params_mut().tensors_mut(), &g);
        }
        // Check fit.
        let mut tape = Tape::new();
        let x = tape.leaf(x_data, false);
        let b = head.bind(&mut tape);
        let y = head.apply(&mut tape, b, x);
        let out = tape.value(y).data().to_vec();
        assert!((out[0] - 2.0).abs() < 0.05, "{out:?}");
        assert!((out[1] + 1.0).abs() < 0.05, "{out:?}");
    }
}
