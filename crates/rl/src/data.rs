//! Fine-tuning data preparation: Table-I labeling of corpus entries for a
//! target circuit type, plus synthetic invalid samples.
//!
//! Relevant entries are measured with the simulator and split high/low by
//! Otsu's threshold on FoM; entries of other families are "irrelevant
//! valid"; invalid examples are synthesized by corrupting valid walks
//! (random token substitutions) and verifying the result really fails the
//! validity oracle.

use eva_dataset::{CircuitType, DatasetEntry};
use eva_tokenizer::{TokenId, Tokenizer};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::reward::{otsu_threshold, LabeledSequence, RankClass};

/// A Table-I-labeled fine-tuning dataset for one target circuit type.
#[derive(Debug, Clone)]
pub struct FinetuneData {
    /// The labeled sequences.
    pub samples: Vec<LabeledSequence>,
    /// The Otsu FoM threshold used for the high/low split.
    pub fom_threshold: f64,
    /// The target family.
    pub target: CircuitType,
}

impl FinetuneData {
    /// Samples of one class.
    pub fn of_class(&self, class: RankClass) -> Vec<&LabeledSequence> {
        self.samples.iter().filter(|s| s.class == class).collect()
    }

    /// Count per class, Table-I order.
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for s in &self.samples {
            let i = RankClass::ALL
                .iter()
                .position(|&c| c == s.class)
                .expect("member");
            counts[i] += 1;
        }
        counts
    }
}

/// Label `entries` for `target`, producing at most `budget` samples
/// (mirroring the paper's small labeled sets: 850 for Op-Amps, 362 for
/// power converters). Roughly `budget/4` invalid samples are synthesized.
///
/// # Panics
///
/// Panics if `budget == 0`.
pub fn build_finetune_data<R: Rng + ?Sized>(
    entries: &[DatasetEntry],
    target: CircuitType,
    tokenizer: &Tokenizer,
    budget: usize,
    rng: &mut R,
) -> FinetuneData {
    assert!(budget > 0, "budget must be positive");
    // Measure relevant entries.
    let mut relevant: Vec<(&DatasetEntry, f64)> = Vec::new();
    let mut irrelevant: Vec<&DatasetEntry> = Vec::new();
    for e in entries {
        if e.circuit_type == target {
            if let Some(fom) = eva_dataset::measure_fom(&e.topology, target) {
                relevant.push((e, fom));
            }
        } else {
            irrelevant.push(e);
        }
    }
    let foms: Vec<f64> = relevant.iter().map(|(_, f)| *f).collect();
    let fom_threshold = if foms.is_empty() {
        0.0
    } else {
        otsu_threshold(&foms)
    };

    // Budget split: half relevant, quarter irrelevant, quarter invalid.
    let n_rel = (budget / 2).min(relevant.len());
    let n_irr = (budget / 4).min(irrelevant.len());
    let n_inv = budget.saturating_sub(n_rel + n_irr).min(n_rel.max(1) * 2);

    relevant.shuffle(rng);
    irrelevant.shuffle(rng);

    fn encode<R: Rng + ?Sized>(
        e: &DatasetEntry,
        tokenizer: &Tokenizer,
        rng: &mut R,
    ) -> Option<Vec<TokenId>> {
        let seq = eva_circuit::EulerianSequence::from_topology(&e.topology, rng).ok()?;
        tokenizer.encode_sequence(&seq).ok()
    }

    let mut samples = Vec::new();
    for (e, fom) in relevant.iter().take(n_rel) {
        if let Some(tokens) = encode(e, tokenizer, rng) {
            let class = if *fom >= fom_threshold {
                RankClass::HighPerformance
            } else {
                RankClass::LowPerformance
            };
            samples.push(LabeledSequence { tokens, class });
        }
    }
    for e in irrelevant.iter().take(n_irr) {
        if let Some(tokens) = encode(e, tokenizer, rng) {
            samples.push(LabeledSequence {
                tokens,
                class: RankClass::Irrelevant,
            });
        }
    }
    // Synthetic invalid samples: corrupt valid token streams until the
    // oracle rejects them.
    let pool: Vec<&DatasetEntry> = entries.iter().collect();
    let mut made = 0;
    let mut attempts = 0;
    while made < n_inv && attempts < n_inv * 10 && !pool.is_empty() {
        attempts += 1;
        let e = pool[rng.gen_range(0..pool.len())];
        let Some(tokens) = encode(e, tokenizer, rng) else {
            continue;
        };
        if let Some(bad) = corrupt(&tokens, tokenizer, rng) {
            samples.push(LabeledSequence {
                tokens: bad,
                class: RankClass::Invalid,
            });
            made += 1;
        }
    }
    samples.shuffle(rng);
    FinetuneData {
        samples,
        fom_threshold,
        target,
    }
}

/// Randomly substitute tokens until the sequence decodes to an invalid
/// circuit (or fails to decode at all). Returns `None` if corruption
/// accidentally kept the circuit valid.
fn corrupt<R: Rng + ?Sized>(
    tokens: &[TokenId],
    tokenizer: &Tokenizer,
    rng: &mut R,
) -> Option<Vec<TokenId>> {
    let mut bad = tokens.to_vec();
    let vocab = tokenizer.vocab_size() as u32;
    let n_swaps = 1 + bad.len() / 8;
    for _ in 0..n_swaps {
        // Never touch position 0 (VSS) so failures are structural, not
        // trivially detectable.
        let pos = rng.gen_range(1..bad.len());
        bad[pos] = TokenId(rng.gen_range(2..vocab));
    }
    let still_valid = tokenizer
        .to_sequence(&bad)
        .ok()
        .and_then(|s| s.to_topology().ok())
        .map(|t| eva_spice::check_validity(&t).is_valid())
        .unwrap_or(false);
    (!still_valid).then_some(bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_dataset::{Corpus, CorpusOptions};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_setup() -> (Vec<DatasetEntry>, Tokenizer) {
        let corpus = Corpus::build(&CorpusOptions {
            target_size: 60,
            decorate: false,
            validate: true,
            families: Some(vec![CircuitType::Bandgap, CircuitType::Ldo]),
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let seqs = eva_dataset::expand(corpus.entries(), 2, &mut rng);
        let tokens: Vec<Vec<String>> = seqs.iter().map(|r| r.sequence.tokens()).collect();
        let tok = Tokenizer::fit(tokens.iter().map(|v| v.as_slice()));
        (corpus.entries().to_vec(), tok)
    }

    #[test]
    fn labels_cover_all_classes() {
        let (entries, tok) = tiny_setup();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = build_finetune_data(&entries, CircuitType::Ldo, &tok, 40, &mut rng);
        let counts = data.class_counts();
        assert!(counts[0] + counts[1] > 0, "some relevant: {counts:?}");
        assert!(counts[2] > 0, "some irrelevant: {counts:?}");
        assert!(counts[3] > 0, "some invalid: {counts:?}");
        assert!(data.samples.len() <= 40 + 4);
        assert_eq!(data.target, CircuitType::Ldo);
    }

    #[test]
    fn high_and_low_split_by_threshold() {
        let (entries, tok) = tiny_setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = build_finetune_data(&entries, CircuitType::Ldo, &tok, 40, &mut rng);
        assert!(data.fom_threshold.is_finite());
        let highs = data.of_class(RankClass::HighPerformance).len();
        let lows = data.of_class(RankClass::LowPerformance).len();
        assert!(highs + lows > 0);
    }

    #[test]
    fn corrupted_sequences_are_really_invalid() {
        let (entries, tok) = tiny_setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data = build_finetune_data(&entries, CircuitType::Bandgap, &tok, 24, &mut rng);
        for s in data.of_class(RankClass::Invalid) {
            let ok = tok
                .to_sequence(&s.tokens)
                .ok()
                .and_then(|q| q.to_topology().ok())
                .map(|t| eva_spice::check_validity(&t).is_valid())
                .unwrap_or(false);
            assert!(!ok, "sample marked invalid must fail the oracle");
        }
    }
}
