//! Circuit-type taxonomy and labeled topology records.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use eva_circuit::Topology;

/// The 11 analog circuit families of the EVA dataset (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CircuitType {
    /// Operational amplifiers / OTAs.
    OpAmp,
    /// Low-dropout regulators.
    Ldo,
    /// Bandgap voltage references.
    Bandgap,
    /// Voltage comparators.
    Comparator,
    /// Phase-locked loops (transistor-level blocks).
    Pll,
    /// Low-noise amplifiers.
    Lna,
    /// Power amplifiers.
    Pa,
    /// Mixers.
    Mixer,
    /// Voltage-controlled oscillators.
    Vco,
    /// Switching power converters.
    PowerConverter,
    /// Switched-capacitor samplers.
    ScSampler,
}

impl CircuitType {
    /// All 11 types, in canonical order.
    pub const ALL: [CircuitType; 11] = [
        CircuitType::OpAmp,
        CircuitType::Ldo,
        CircuitType::Bandgap,
        CircuitType::Comparator,
        CircuitType::Pll,
        CircuitType::Lna,
        CircuitType::Pa,
        CircuitType::Mixer,
        CircuitType::Vco,
        CircuitType::PowerConverter,
        CircuitType::ScSampler,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CircuitType::OpAmp => "Op-Amp",
            CircuitType::Ldo => "LDO",
            CircuitType::Bandgap => "Bandgap",
            CircuitType::Comparator => "Comparator",
            CircuitType::Pll => "PLL",
            CircuitType::Lna => "LNA",
            CircuitType::Pa => "PA",
            CircuitType::Mixer => "Mixer",
            CircuitType::Vco => "VCO",
            CircuitType::PowerConverter => "Power converter",
            CircuitType::ScSampler => "SC sampler",
        }
    }

    /// Index into [`CircuitType::ALL`].
    pub fn index(self) -> usize {
        CircuitType::ALL
            .iter()
            .position(|&t| t == self)
            .expect("member of ALL")
    }
}

impl fmt::Display for CircuitType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CircuitType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CircuitType::ALL
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown circuit type {s:?}"))
    }
}

/// A dataset entry: a topology, its family, and a structural variant tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// The topology.
    pub topology: Topology,
    /// Which of the 11 families it belongs to (generator ground truth; this
    /// stands in for the paper's human expert type labels).
    pub circuit_type: CircuitType,
    /// Human-readable variant description, e.g.
    /// `"nmos-diffpair/cascode-load/2stage"`.
    pub variant: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_types() {
        assert_eq!(CircuitType::ALL.len(), 11);
    }

    #[test]
    fn names_unique_and_parseable() {
        let mut names: Vec<_> = CircuitType::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        for t in CircuitType::ALL {
            assert_eq!(t.name().parse::<CircuitType>().unwrap(), t);
        }
        assert!("warp drive".parse::<CircuitType>().is_err());
    }

    #[test]
    fn index_round_trip() {
        for (i, t) in CircuitType::ALL.into_iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(CircuitType::ALL[t.index()], t);
        }
    }
}
