//! Sequence expansion: permuted Eulerian serializations for pretraining.
//!
//! The paper expands 3,470 topologies into 234,393 sequences (~67 per
//! topology) by permuting the DFS traversal order. [`expand`] does the
//! same with a configurable factor, deduplicating identical walks.

use std::collections::BTreeSet;

use eva_circuit::EulerianSequence;
use rand::Rng;

use crate::types::{CircuitType, DatasetEntry};

/// One training sequence with its family label carried along (pretraining
/// ignores the label; fine-tuning uses it).
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceRecord {
    /// The Eulerian walk.
    pub sequence: EulerianSequence,
    /// Family of the source topology.
    pub circuit_type: CircuitType,
    /// Canonical hash of the source topology (novelty bookkeeping).
    pub source_hash: u64,
}

/// Expand entries into up to `per_topology` distinct sequences each.
///
/// Entries whose serialization fails (disconnected — cannot happen for
/// validity-filtered corpora) are skipped.
pub fn expand<R: Rng + ?Sized>(
    entries: &[DatasetEntry],
    per_topology: usize,
    rng: &mut R,
) -> Vec<SequenceRecord> {
    let mut out = Vec::with_capacity(entries.len() * per_topology);
    for entry in entries {
        let hash = entry.topology.canonical_hash();
        let mut seen: BTreeSet<Vec<eva_circuit::Node>> = BTreeSet::new();
        // Sample a few extra permutations to compensate for collisions.
        let attempts = per_topology * 3;
        for _ in 0..attempts {
            if seen.len() >= per_topology {
                break;
            }
            let Ok(seq) = EulerianSequence::from_topology(&entry.topology, rng) else {
                break;
            };
            if seen.insert(seq.walk().to_vec()) {
                out.push(SequenceRecord {
                    sequence: seq,
                    circuit_type: entry.circuit_type,
                    source_hash: hash,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusOptions};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn entries() -> Vec<DatasetEntry> {
        Corpus::build(&CorpusOptions {
            target_size: 20,
            decorate: false,
            validate: false,
            families: Some(vec![CircuitType::Bandgap]),
        })
        .entries()
        .to_vec()
    }

    #[test]
    fn expansion_multiplies_entries() {
        let e = entries();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let seqs = expand(&e, 8, &mut rng);
        assert!(seqs.len() >= e.len() * 4, "{} from {}", seqs.len(), e.len());
        assert!(seqs.len() <= e.len() * 8);
    }

    #[test]
    fn sequences_decode_to_source_structure() {
        let e = entries();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let seqs = expand(&e[..3], 4, &mut rng);
        for rec in seqs {
            let t = rec.sequence.to_topology().unwrap();
            assert_eq!(t.canonical_hash(), rec.source_hash);
        }
    }

    #[test]
    fn sequences_are_distinct_per_topology() {
        let e = entries();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let seqs = expand(&e[..1], 10, &mut rng);
        let walks: BTreeSet<_> = seqs.iter().map(|r| r.sequence.walk().to_vec()).collect();
        assert_eq!(walks.len(), seqs.len());
    }
}
