//! Operational-amplifier family generator.
//!
//! Enumerates classic Op-Amp construction axes — input polarity, input
//! cascoding, load style, tail style, optional second stage with Miller
//! compensation, optional output buffer, and bias style — covering the
//! single-stage OTA through two-stage buffered amplifier idioms found in
//! Razavi / Gray & Meyer / Allen & Holberg.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

use crate::blocks::{common_source, mos_mirror, resistor_bias, source_follower};

/// Load of the first stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// Current-mirror load (single-ended output).
    Mirror,
    /// Cascoded current-mirror load.
    CascodeMirror,
    /// Resistor loads on both branches.
    Resistor,
    /// Diode-connected MOS loads on both branches.
    Diode,
}

/// Tail current element of the differential pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// MOS current source gated by a bias net.
    Mos,
    /// Plain resistor degeneration to the rail.
    Resistor,
    /// Ideal DC current source device.
    Ideal,
}

/// Optional second gain stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondStage {
    /// No second stage.
    None,
    /// Common-source stage without compensation.
    Cs,
    /// Common-source stage with a Miller capacitor.
    CsMiller,
}

/// Optional output buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buffer {
    /// No buffer.
    None,
    /// Source follower matching the input polarity.
    SourceFollower,
}

/// One point in the Op-Amp design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpampConfig {
    /// Input pair polarity (`Nmos` or `Pmos`).
    pub input_kind: DeviceKind,
    /// Cascode the input branch outputs.
    pub input_cascode: bool,
    /// First-stage load.
    pub load: Load,
    /// Tail style.
    pub tail: Tail,
    /// Second stage.
    pub second_stage: SecondStage,
    /// Output buffer.
    pub buffer: Buffer,
    /// Generate the tail bias on-chip from a resistor-programmed mirror
    /// instead of an external `VB1` port.
    pub internal_bias: bool,
    /// Resistively degenerate the input pair (sources reach the tail
    /// through resistors).
    pub degenerated: bool,
}

impl OpampConfig {
    /// A compact human-readable tag for the variant.
    pub fn tag(&self) -> String {
        format!(
            "opamp/{}-in{}{}/{:?}-load/{:?}-tail/{:?}/{:?}{}",
            if self.input_kind == DeviceKind::Nmos {
                "n"
            } else {
                "p"
            },
            if self.input_cascode { "+casc" } else { "" },
            if self.internal_bias { "+selfbias" } else { "" },
            self.load,
            self.tail,
            self.second_stage,
            self.buffer,
            if self.degenerated { "+degen" } else { "" },
        )
    }
}

/// Enumerate the whole config space.
pub fn configs() -> Vec<OpampConfig> {
    let mut out = Vec::new();
    for input_kind in [DeviceKind::Nmos, DeviceKind::Pmos] {
        for input_cascode in [false, true] {
            for load in [
                Load::Mirror,
                Load::CascodeMirror,
                Load::Resistor,
                Load::Diode,
            ] {
                for tail in [Tail::Mos, Tail::Resistor, Tail::Ideal] {
                    for second_stage in [SecondStage::None, SecondStage::Cs, SecondStage::CsMiller]
                    {
                        for buffer in [Buffer::None, Buffer::SourceFollower] {
                            for internal_bias in [false, true] {
                                // Internal bias only matters with a MOS tail.
                                if internal_bias && tail != Tail::Mos {
                                    continue;
                                }
                                for degenerated in [false, true] {
                                    out.push(OpampConfig {
                                        input_kind,
                                        input_cascode,
                                        load,
                                        tail,
                                        second_stage,
                                        buffer,
                                        internal_bias,
                                        degenerated,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring (should not occur for the
/// enumerated space; surfaced for robustness).
pub fn build(config: &OpampConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    // "low" rail hosts the tail, "high" rail hosts the load.
    let (pair_kind, low, high) = match config.input_kind {
        DeviceKind::Nmos => (DeviceKind::Nmos, vss, vdd),
        _ => (DeviceKind::Pmos, vdd, vss),
    };
    let load_kind = if pair_kind == DeviceKind::Nmos {
        DeviceKind::Pmos
    } else {
        DeviceKind::Nmos
    };

    // Tail.
    let tail_node = match config.tail {
        Tail::Mos => {
            let bias: Node = if config.internal_bias {
                resistor_bias(
                    &mut b,
                    pair_kind,
                    if pair_kind == DeviceKind::Nmos {
                        vdd
                    } else {
                        vss
                    },
                    low,
                )?
            } else {
                CircuitPin::Vbias(1).into()
            };
            let mt = b.add(pair_kind);
            b.wire(b.pin(mt, PinRole::Gate), bias)?;
            b.wire(b.pin(mt, PinRole::Source), low)?;
            b.wire(b.pin(mt, PinRole::Bulk), low)?;
            b.pin(mt, PinRole::Drain)
        }
        Tail::Resistor => {
            let r = b.add(DeviceKind::Resistor);
            b.wire(b.pin(r, PinRole::Plus), low)?;
            b.pin(r, PinRole::Minus)
        }
        Tail::Ideal => {
            // Current flows plus → minus through the source: an NMOS pair's
            // tail sinks into VSS (plus = tail), a PMOS pair's tail is fed
            // from VDD (minus = tail).
            let i = b.add(DeviceKind::CurrentSource);
            if pair_kind == DeviceKind::Nmos {
                b.wire(b.pin(i, PinRole::Minus), low)?;
                b.pin(i, PinRole::Plus)
            } else {
                b.wire(b.pin(i, PinRole::Plus), low)?;
                b.pin(i, PinRole::Minus)
            }
        }
    };

    // Input pair, optionally degenerated through source resistors.
    let pair_tail = if config.degenerated {
        // Two resistors join at the tail; the pair sources hang off their
        // far ends. Anchor a shared node at the first resistor's far pin.
        let r1 = b.add(DeviceKind::Resistor);
        b.wire(b.pin(r1, PinRole::Minus), tail_node)?;
        let r2 = b.add(DeviceKind::Resistor);
        b.wire(b.pin(r2, PinRole::Minus), tail_node)?;
        (b.pin(r1, PinRole::Plus), b.pin(r2, PinRole::Plus))
    } else {
        (tail_node, tail_node)
    };
    let m1 = b.add(pair_kind);
    let m2 = b.add(pair_kind);
    b.wire(b.pin(m1, PinRole::Gate), CircuitPin::Vin(1))?;
    b.wire(b.pin(m2, PinRole::Gate), CircuitPin::Vin(2))?;
    b.wire(b.pin(m1, PinRole::Source), pair_tail.0)?;
    b.wire(b.pin(m2, PinRole::Source), pair_tail.1)?;
    b.wire(b.pin(m1, PinRole::Bulk), low)?;
    b.wire(b.pin(m2, PinRole::Bulk), low)?;
    let (mut dp, mut dn) = (b.pin(m1, PinRole::Drain), b.pin(m2, PinRole::Drain));

    // Optional input cascodes.
    if config.input_cascode {
        let bias: Node = CircuitPin::Vbias(2).into();
        let c1 = b.add(pair_kind);
        b.wire(b.pin(c1, PinRole::Source), dp)?;
        b.wire(b.pin(c1, PinRole::Gate), bias)?;
        b.wire(b.pin(c1, PinRole::Bulk), low)?;
        dp = b.pin(c1, PinRole::Drain);
        let c2 = b.add(pair_kind);
        b.wire(b.pin(c2, PinRole::Source), dn)?;
        b.wire(b.pin(c2, PinRole::Gate), bias)?;
        b.wire(b.pin(c2, PinRole::Bulk), low)?;
        dn = b.pin(c2, PinRole::Drain);
    }

    // Load.
    match config.load {
        Load::Mirror => {
            mos_mirror(&mut b, load_kind, high, dp, &[dn])?;
        }
        Load::CascodeMirror => {
            // Bottom mirror devices on the high rail; cascodes between
            // their drains and the branch outputs, gated by VB3.
            let cb: Node = CircuitPin::Vbias(3).into();
            let mb1 = b.add(load_kind);
            let mb2 = b.add(load_kind);
            b.wire(b.pin(mb1, PinRole::Source), high)?;
            b.wire(b.pin(mb2, PinRole::Source), high)?;
            b.wire(b.pin(mb1, PinRole::Bulk), high)?;
            b.wire(b.pin(mb2, PinRole::Bulk), high)?;
            // Gates tied to the diode branch output (dp).
            b.wire(b.pin(mb1, PinRole::Gate), dp)?;
            b.wire(b.pin(mb2, PinRole::Gate), dp)?;
            let mc1 = b.add(load_kind);
            b.wire(b.pin(mc1, PinRole::Source), b.pin(mb1, PinRole::Drain))?;
            b.wire(b.pin(mc1, PinRole::Gate), cb)?;
            b.wire(b.pin(mc1, PinRole::Bulk), high)?;
            b.wire(b.pin(mc1, PinRole::Drain), dp)?;
            let mc2 = b.add(load_kind);
            b.wire(b.pin(mc2, PinRole::Source), b.pin(mb2, PinRole::Drain))?;
            b.wire(b.pin(mc2, PinRole::Gate), cb)?;
            b.wire(b.pin(mc2, PinRole::Bulk), high)?;
            b.wire(b.pin(mc2, PinRole::Drain), dn)?;
        }
        Load::Resistor => {
            b.resistor(high, dp)?;
            b.resistor(high, dn)?;
        }
        Load::Diode => {
            for d in [dp, dn] {
                let m = b.add(load_kind);
                b.wire(b.pin(m, PinRole::Gate), d)?;
                b.wire(b.pin(m, PinRole::Drain), d)?;
                b.wire(b.pin(m, PinRole::Source), high)?;
                b.wire(b.pin(m, PinRole::Bulk), high)?;
            }
        }
    }

    // Output chain.
    let mut out_net = dn;
    match config.second_stage {
        SecondStage::None => {}
        SecondStage::Cs | SecondStage::CsMiller => {
            // Second stage polarity: complementary to the first-stage load
            // so its input common-mode fits. Its drain net is anchored at a
            // load resistor returning to the low rail.
            let r = b.add(DeviceKind::Resistor);
            b.wire(b.pin(r, PinRole::Plus), low)?;
            let stage_out_anchor = b.pin(r, PinRole::Minus);
            let cs = common_source(&mut b, load_kind, out_net, stage_out_anchor, high)?;
            let stage_out = b.pin(cs, PinRole::Drain);
            if config.second_stage == SecondStage::CsMiller {
                b.capacitor(out_net, stage_out)?;
            }
            out_net = stage_out;
        }
    }
    match config.buffer {
        Buffer::None => {}
        Buffer::SourceFollower => {
            let r = b.add(DeviceKind::Resistor);
            b.wire(b.pin(r, PinRole::Plus), low)?;
            let follower_out_anchor = b.pin(r, PinRole::Minus);
            let sf = source_follower(&mut b, pair_kind, out_net, follower_out_anchor, high)?;
            out_net = b.pin(sf, PinRole::Source);
        }
    }
    b.wire(out_net, CircuitPin::Vout(1))?;
    b.build()
}

/// Generate all Op-Amp variants as `(topology, tag)` pairs, skipping any
/// configuration that fails to build.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn config_space_is_large() {
        assert!(configs().len() >= 300, "got {}", configs().len());
    }

    #[test]
    fn all_configs_build() {
        assert_eq!(generate().len(), configs().len());
    }

    #[test]
    fn basic_ota_variant_is_valid() {
        let c = OpampConfig {
            input_kind: DeviceKind::Nmos,
            input_cascode: false,
            load: Load::Mirror,
            tail: Tail::Mos,
            second_stage: SecondStage::None,
            buffer: Buffer::None,
            internal_bias: false,
            degenerated: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
        assert_eq!(t.device_count(), 5, "five-transistor OTA");
    }

    #[test]
    fn most_variants_are_valid() {
        // A large majority of the enumerated space must pass the validity
        // oracle (a few exotic corners may bias badly).
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        let rate = valid as f64 / all.len() as f64;
        assert!(rate > 0.7, "validity rate {rate} ({valid}/{})", all.len());
    }

    #[test]
    fn variants_are_mostly_structurally_distinct() {
        let all = generate();
        let hashes: std::collections::BTreeSet<u64> =
            all.iter().map(|(t, _)| t.canonical_hash()).collect();
        // Tags differ but a few configs may collapse to the same structure.
        assert!(
            hashes.len() * 10 >= all.len() * 8,
            "at least 80% unique: {} of {}",
            hashes.len(),
            all.len()
        );
    }

    #[test]
    fn two_stage_has_more_devices() {
        let base = OpampConfig {
            input_kind: DeviceKind::Nmos,
            input_cascode: false,
            load: Load::Mirror,
            tail: Tail::Mos,
            second_stage: SecondStage::None,
            buffer: Buffer::None,
            internal_bias: false,
            degenerated: false,
        };
        let two = OpampConfig {
            second_stage: SecondStage::CsMiller,
            ..base
        };
        assert!(build(&two).unwrap().device_count() > build(&base).unwrap().device_count());
    }
}
