//! Bandgap voltage-reference family generator.
//!
//! Classic PTAT/CTAT-summing cores: two BJT branches at different current
//! densities under a top current mirror, a PTAT resistor, and an output
//! branch, with optional cascoding, startup aids, and emitter stacking.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

/// One point in the bandgap design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandgapConfig {
    /// BJT polarity (NPN with emitters down, or PNP with emitters up —
    /// mirrored core).
    pub npn: bool,
    /// Cascode the top current mirror.
    pub cascode_mirror: bool,
    /// Stack two diode BJTs in the first branch (higher PTAT slope).
    pub stacked_diode: bool,
    /// Output branch includes a series BJT under the resistor (CTAT
    /// addition) or just a resistor.
    pub output_bjt: bool,
    /// Add a startup resistor from the supply to the mirror gate net.
    pub startup: bool,
    /// Parallel trim resistor across the PTAT resistor.
    pub trim: bool,
}

impl BandgapConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "bandgap/{}{}{}{}{}",
            if self.npn { "npn" } else { "pnp" },
            if self.cascode_mirror { "+casc" } else { "" },
            if self.stacked_diode { "+stack" } else { "" },
            if self.output_bjt { "+outbjt" } else { "" },
            if self.startup { "+startup" } else { "" },
        ) + if self.trim { "+trim" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<BandgapConfig> {
    let mut out = Vec::new();
    for npn in [true, false] {
        for cascode_mirror in [false, true] {
            for stacked_diode in [false, true] {
                for output_bjt in [false, true] {
                    for startup in [false, true] {
                        for trim in [false, true] {
                            out.push(BandgapConfig {
                                npn,
                                cascode_mirror,
                                stacked_diode,
                                output_bjt,
                                startup,
                                trim,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &BandgapConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    // NPN core sits on VSS with a PMOS mirror on VDD; the PNP core mirrors.
    let (bjt_kind, bjt_rail, mirror_kind, mirror_rail) = if config.npn {
        (DeviceKind::Npn, vss, DeviceKind::Pmos, vdd)
    } else {
        (DeviceKind::Pnp, vdd, DeviceKind::Nmos, vss)
    };

    // Diode-connected BJT helper: base and collector join `node`, emitter
    // goes to `emitter`.
    let diode_bjt =
        |b: &mut TopologyBuilder, node: Node, emitter: Node| -> Result<(), CircuitError> {
            let q = b.add(bjt_kind);
            b.wire(b.pin(q, PinRole::Base), node)?;
            b.wire(b.pin(q, PinRole::Collector), node)?;
            b.wire(b.pin(q, PinRole::Emitter), emitter)?;
            Ok(())
        };

    // Branch 1: diode BJT(s) directly to the rail.
    // Anchor branch nets on the mirror transistors' drains.
    let m1 = b.add(mirror_kind);
    let m2 = b.add(mirror_kind);
    let m3 = b.add(mirror_kind);
    for m in [m1, m2, m3] {
        b.wire(b.pin(m, PinRole::Source), mirror_rail)?;
        b.wire(b.pin(m, PinRole::Bulk), mirror_rail)?;
    }
    let br1 = b.pin(m1, PinRole::Drain);
    let br2 = b.pin(m2, PinRole::Drain);
    let br3 = b.pin(m3, PinRole::Drain);
    // Mirror gates all tied to branch 1 (diode connection of m1 expressed
    // through m2's gate, which joins the same net — direct same-device
    // wires are not representable).
    b.wire(b.pin(m2, PinRole::Gate), br1)?;
    b.wire(b.pin(m3, PinRole::Gate), br1)?;
    b.wire(b.pin(m1, PinRole::Gate), b.pin(m2, PinRole::Gate))?;

    let out_node = if config.cascode_mirror {
        // Insert cascodes between mirror drains and the branch nets: the
        // mirror drains become internal, branches hang off cascode drains.
        // (Simplified: cascode only the output branch.)
        let c = b.add(mirror_kind);
        b.wire(b.pin(c, PinRole::Source), br3)?;
        b.wire(b.pin(c, PinRole::Gate), CircuitPin::Vbias(1))?;
        b.wire(b.pin(c, PinRole::Bulk), mirror_rail)?;
        b.pin(c, PinRole::Drain)
    } else {
        br3
    };

    // Branch 1 BJT stack.
    if config.stacked_diode {
        let q = b.add(bjt_kind);
        b.wire(b.pin(q, PinRole::Base), br1)?;
        b.wire(b.pin(q, PinRole::Collector), br1)?;
        let mid = b.pin(q, PinRole::Emitter);
        diode_bjt(&mut b, mid, bjt_rail)?;
    } else {
        diode_bjt(&mut b, br1, bjt_rail)?;
    }

    // Branch 2: PTAT resistor in series with a (larger) diode BJT.
    let rp = b.add(DeviceKind::Resistor);
    b.wire(b.pin(rp, PinRole::Plus), br2)?;
    let mid2 = b.pin(rp, PinRole::Minus);
    diode_bjt(&mut b, mid2, bjt_rail)?;
    if config.trim {
        // Parallel trim resistor across the PTAT resistor.
        let rt = b.add(DeviceKind::Resistor);
        b.wire(b.pin(rt, PinRole::Plus), br2)?;
        b.wire(b.pin(rt, PinRole::Minus), mid2)?;
    }

    // Output branch: resistor (plus optional CTAT BJT) to the rail; the
    // branch node is the reference output.
    b.wire(out_node, CircuitPin::Vout(1))?;
    let ro = b.add(DeviceKind::Resistor);
    b.wire(b.pin(ro, PinRole::Plus), out_node)?;
    if config.output_bjt {
        let tap = b.pin(ro, PinRole::Minus);
        diode_bjt(&mut b, tap, bjt_rail)?;
    } else {
        b.wire(b.pin(ro, PinRole::Minus), bjt_rail)?;
    }

    if config.startup {
        b.resistor(mirror_rail, br1)?;
    }

    b.build()
}

/// Generate all bandgap variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 64);
    }

    #[test]
    fn npn_core_valid_and_produces_reference() {
        let c = BandgapConfig {
            npn: true,
            cascode_mirror: false,
            stacked_diode: false,
            output_bjt: false,
            startup: true,
            trim: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
        // The reference output should sit somewhere inside the rails.
        let sizing = eva_spice::Sizing::default_for(&t);
        let netlist = eva_spice::elaborate(&t, &sizing, &eva_spice::Stimulus::default()).unwrap();
        let op = eva_spice::dc_operating_point(&netlist, &eva_spice::Tech::default()).unwrap();
        let out = netlist.port_node(CircuitPin::Vout(1)).unwrap();
        let v = op.voltage(out);
        assert!((0.0..=1.8).contains(&v), "reference {v}");
    }

    #[test]
    fn all_variants_build() {
        assert_eq!(generate().len(), configs().len());
    }

    #[test]
    fn variants_distinct() {
        let hashes: std::collections::BTreeSet<u64> =
            generate().iter().map(|(t, _)| t.canonical_hash()).collect();
        assert_eq!(hashes.len(), configs().len(), "all 32 structurally unique");
    }
}
