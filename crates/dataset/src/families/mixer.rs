//! Mixer family generator.
//!
//! Single-balanced and double-balanced (Gilbert-cell) active mixers: a
//! transconductance stage driven by the RF input, a switching quad/pair
//! driven by the LO, and resistive / mirror / tank loads.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

use crate::blocks::diff_pair;

/// Mixer load style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixerLoad {
    /// Resistor loads.
    Resistor,
    /// PMOS mirror loads.
    Mirror,
    /// LC tank loads.
    Tank,
}

/// One point in the mixer design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixerConfig {
    /// Double-balanced Gilbert cell (`true`) or single-balanced (`false`).
    pub double_balanced: bool,
    /// Load style.
    pub load: MixerLoad,
    /// MOS tail current source (`true`) or ideal (`false`).
    pub mos_tail: bool,
    /// Resistively degenerate the transconductance stage.
    pub degen: bool,
    /// Buffer the IF output with a source follower.
    pub buffer: bool,
    /// First-order RC low-pass at the IF output.
    pub output_filter: bool,
}

impl MixerConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "mixer/{}/{:?}{}{}{}",
            if self.double_balanced {
                "gilbert"
            } else {
                "single"
            },
            self.load,
            if self.mos_tail {
                "/mos-tail"
            } else {
                "/ideal-tail"
            },
            if self.degen { "+degen" } else { "" },
            if self.buffer { "+buf" } else { "" },
        ) + if self.output_filter { "+lpf" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<MixerConfig> {
    let mut out = Vec::new();
    for double_balanced in [false, true] {
        for load in [MixerLoad::Resistor, MixerLoad::Mirror, MixerLoad::Tank] {
            for mos_tail in [true, false] {
                for degen in [false, true] {
                    for buffer in [false, true] {
                        for output_filter in [false, true] {
                            out.push(MixerConfig {
                                double_balanced,
                                load,
                                mos_tail,
                                degen,
                                buffer,
                                output_filter,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the topology for one configuration.
///
/// Ports: `VIN1`/`VIN2` are the RF pair, `CLK1`/`CLK2` drive the LO
/// switches (clock ports model the LO drive), `VOUT1` is the IF output.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &MixerConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let lo_p: Node = CircuitPin::Clk(1).into();
    let lo_n: Node = CircuitPin::Clk(2).into();

    // Tail.
    let tail: Node = if config.mos_tail {
        let mt = b.add(DeviceKind::Nmos);
        b.wire(b.pin(mt, PinRole::Gate), CircuitPin::Vbias(1))?;
        b.wire(b.pin(mt, PinRole::Source), vss)?;
        b.wire(b.pin(mt, PinRole::Bulk), vss)?;
        b.pin(mt, PinRole::Drain)
    } else {
        let i = b.add(DeviceKind::CurrentSource);
        b.wire(b.pin(i, PinRole::Minus), vss)?;
        b.pin(i, PinRole::Plus)
    };

    // Transconductance stage.
    let (gm_p, gm_n): (Node, Node) = if config.double_balanced {
        let (a, c) = if config.degen {
            // Degenerated pair: two transistors with source resistors to
            // the shared tail.
            let m1 = b.add(DeviceKind::Nmos);
            let m2 = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m1, PinRole::Gate), CircuitPin::Vin(1))?;
            b.wire(b.pin(m2, PinRole::Gate), CircuitPin::Vin(2))?;
            b.wire(b.pin(m1, PinRole::Bulk), vss)?;
            b.wire(b.pin(m2, PinRole::Bulk), vss)?;
            let r1 = b.add(DeviceKind::Resistor);
            b.wire(b.pin(r1, PinRole::Plus), b.pin(m1, PinRole::Source))?;
            b.wire(b.pin(r1, PinRole::Minus), tail)?;
            let r2 = b.add(DeviceKind::Resistor);
            b.wire(b.pin(r2, PinRole::Plus), b.pin(m2, PinRole::Source))?;
            b.wire(b.pin(r2, PinRole::Minus), tail)?;
            (b.pin(m1, PinRole::Drain), b.pin(m2, PinRole::Drain))
        } else {
            diff_pair(
                &mut b,
                DeviceKind::Nmos,
                CircuitPin::Vin(1).into(),
                CircuitPin::Vin(2).into(),
                tail,
                vss,
            )?
        };
        (a, c)
    } else {
        // Single transconductor.
        let m = b.add(DeviceKind::Nmos);
        b.wire(b.pin(m, PinRole::Gate), CircuitPin::Vin(1))?;
        b.wire(b.pin(m, PinRole::Bulk), vss)?;
        if config.degen {
            let r = b.add(DeviceKind::Resistor);
            b.wire(b.pin(r, PinRole::Plus), b.pin(m, PinRole::Source))?;
            b.wire(b.pin(r, PinRole::Minus), tail)?;
        } else {
            b.wire(b.pin(m, PinRole::Source), tail)?;
        }
        let d = b.pin(m, PinRole::Drain);
        (d, d)
    };

    // LO switching stage: for the single-balanced mixer, one pair on top of
    // the transconductor; for the Gilbert cell, a quad.
    let (mut if_p, mut if_n): (Node, Node) = {
        let (s1p, s1n) = diff_pair(&mut b, DeviceKind::Nmos, lo_p, lo_n, gm_p, vss)?;
        if config.double_balanced {
            let (s2p, s2n) = diff_pair(&mut b, DeviceKind::Nmos, lo_n, lo_p, gm_n, vss)?;
            // Cross-connect the quad outputs.
            b.wire(s1p, s2p)?;
            b.wire(s1n, s2n)?;
        }
        (s1p, s1n)
    };

    // Loads on both IF branches.
    match config.load {
        MixerLoad::Resistor => {
            b.resistor(vdd, if_p)?;
            b.resistor(vdd, if_n)?;
        }
        MixerLoad::Mirror => {
            crate::blocks::mos_mirror(&mut b, DeviceKind::Pmos, vdd, if_p, &[if_n])?;
        }
        MixerLoad::Tank => {
            b.inductor(vdd, if_p)?;
            b.capacitor(vdd, if_p)?;
            b.inductor(vdd, if_n)?;
            b.capacitor(vdd, if_n)?;
        }
    }

    // IF output (single-ended from the negative branch).
    if config.buffer {
        let sf = b.add(DeviceKind::Nmos);
        b.wire(b.pin(sf, PinRole::Gate), if_n)?;
        b.wire(b.pin(sf, PinRole::Drain), vdd)?;
        b.wire(b.pin(sf, PinRole::Bulk), vss)?;
        b.wire(b.pin(sf, PinRole::Source), CircuitPin::Vout(1))?;
        b.resistor(CircuitPin::Vout(1), vss)?;
        if_n = b.pin(sf, PinRole::Gate);
    } else {
        b.wire(if_n, CircuitPin::Vout(1))?;
    }
    let _ = (&mut if_p, if_n);

    if config.output_filter {
        b.capacitor(CircuitPin::Vout(1), vss)?;
        b.resistor(CircuitPin::Vout(1), vss)?;
    }

    b.build()
}

/// Generate all mixer variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 2 * 3 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn gilbert_cell_valid() {
        let c = MixerConfig {
            double_balanced: true,
            load: MixerLoad::Resistor,
            mos_tail: true,
            degen: false,
            buffer: false,
            output_filter: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
        // Quad + pair + tail = 7 transistors.
        assert!(t.device_count() >= 7);
    }

    #[test]
    fn majority_valid() {
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        assert!(valid * 10 >= all.len() * 7, "{valid}/{}", all.len());
    }
}
