//! Power-amplifier family generator.
//!
//! One- and two-stage class-A/AB CMOS PA idioms: common-source output
//! devices under RF chokes or tanks, optional cascoding, input matching and
//! source degeneration.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

/// Output-stage load style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaLoad {
    /// Parallel LC tank to VDD.
    Tank,
    /// RF choke (inductor) to VDD with an AC-coupling cap to the output.
    Choke,
}

/// Input coupling network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaMatch {
    /// Direct drive.
    None,
    /// Series coupling capacitor with a bias resistor.
    SeriesC,
    /// LC L-section.
    Lc,
}

/// Source degeneration of the output device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaDegen {
    /// Source grounded directly.
    None,
    /// Inductive degeneration.
    Inductor,
    /// Resistive degeneration.
    Resistor,
}

/// One point in the PA design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaConfig {
    /// Two-stage (driver + output) when `true`.
    pub two_stage: bool,
    /// Cascode the output device.
    pub cascode: bool,
    /// Output load.
    pub load: PaLoad,
    /// Input match.
    pub input_match: PaMatch,
    /// Degeneration.
    pub degen: PaDegen,
    /// Series LC harmonic trap from the output node to ground.
    pub harmonic_trap: bool,
}

impl PaConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "pa/{}stage{}/{:?}/{:?}/{:?}",
            if self.two_stage { 2 } else { 1 },
            if self.cascode { "+casc" } else { "" },
            self.load,
            self.input_match,
            self.degen,
        ) + if self.harmonic_trap { "+trap" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<PaConfig> {
    let mut out = Vec::new();
    for two_stage in [false, true] {
        for cascode in [false, true] {
            for load in [PaLoad::Tank, PaLoad::Choke] {
                for input_match in [PaMatch::None, PaMatch::SeriesC, PaMatch::Lc] {
                    for degen in [PaDegen::None, PaDegen::Inductor, PaDegen::Resistor] {
                        for harmonic_trap in [false, true] {
                            out.push(PaConfig {
                                two_stage,
                                cascode,
                                load,
                                input_match,
                                degen,
                                harmonic_trap,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build one common-source gain stage; returns its drain node.
fn gain_stage(
    b: &mut TopologyBuilder,
    input: Node,
    bias: Node,
    degen: PaDegen,
    vss: Node,
) -> Result<Node, CircuitError> {
    let m = b.add(DeviceKind::Nmos);
    b.wire(b.pin(m, PinRole::Gate), input)?;
    b.wire(b.pin(m, PinRole::Bulk), vss)?;
    b.resistor(input, bias)?;
    match degen {
        PaDegen::None => {
            b.wire(b.pin(m, PinRole::Source), vss)?;
        }
        PaDegen::Inductor => {
            let l = b.add(DeviceKind::Inductor);
            b.wire(b.pin(l, PinRole::Plus), b.pin(m, PinRole::Source))?;
            b.wire(b.pin(l, PinRole::Minus), vss)?;
        }
        PaDegen::Resistor => {
            let r = b.add(DeviceKind::Resistor);
            b.wire(b.pin(r, PinRole::Plus), b.pin(m, PinRole::Source))?;
            b.wire(b.pin(r, PinRole::Minus), vss)?;
        }
    }
    Ok(b.pin(m, PinRole::Drain))
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &PaConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let vin: Node = CircuitPin::Vin(1).into();
    let vout: Node = CircuitPin::Vout(1).into();

    // Input network feeding the first gate.
    let first_gate: Node = match config.input_match {
        PaMatch::None => vin,
        PaMatch::SeriesC => {
            let c = b.add(DeviceKind::Capacitor);
            b.wire(b.pin(c, PinRole::Plus), vin)?;
            b.pin(c, PinRole::Minus)
        }
        PaMatch::Lc => {
            let l = b.add(DeviceKind::Inductor);
            b.wire(b.pin(l, PinRole::Plus), vin)?;
            let mid = b.pin(l, PinRole::Minus);
            b.capacitor(mid, vss)?;
            mid
        }
    };

    // Optional driver stage with a choke load and coupling cap.
    let stage_input = if config.two_stage {
        let d_out = gain_stage(
            &mut b,
            first_gate,
            CircuitPin::Vbias(2).into(),
            PaDegen::None,
            vss,
        )?;
        b.inductor(vdd, d_out)?;
        let c = b.add(DeviceKind::Capacitor);
        b.wire(b.pin(c, PinRole::Plus), d_out)?;
        b.pin(c, PinRole::Minus)
    } else {
        first_gate
    };

    // Output stage.
    let mut drain = gain_stage(
        &mut b,
        stage_input,
        CircuitPin::Vbias(1).into(),
        config.degen,
        vss,
    )?;
    if config.cascode {
        let c = b.add(DeviceKind::Nmos);
        b.wire(b.pin(c, PinRole::Source), drain)?;
        b.wire(b.pin(c, PinRole::Gate), CircuitPin::Vbias(3))?;
        b.wire(b.pin(c, PinRole::Bulk), vss)?;
        drain = b.pin(c, PinRole::Drain);
    }

    match config.load {
        PaLoad::Tank => {
            b.inductor(vdd, drain)?;
            b.capacitor(vdd, drain)?;
            b.wire(drain, vout)?;
        }
        PaLoad::Choke => {
            b.inductor(vdd, drain)?;
            b.capacitor(drain, vout)?;
            // DC return for the AC-coupled output.
            b.resistor(vout, vss)?;
        }
    }

    if config.harmonic_trap {
        let lt = b.add(DeviceKind::Inductor);
        b.wire(b.pin(lt, PinRole::Plus), vout)?;
        let mid = b.pin(lt, PinRole::Minus);
        b.capacitor(mid, vss)?;
    }

    b.build()
}

/// Generate all PA variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 2 * 2 * 2 * 3 * 3 * 2);
    }

    #[test]
    fn two_stage_cascode_pa_valid() {
        let c = PaConfig {
            two_stage: true,
            cascode: true,
            load: PaLoad::Choke,
            input_match: PaMatch::SeriesC,
            degen: PaDegen::Inductor,
            harmonic_trap: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn majority_valid() {
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        assert!(valid * 10 >= all.len() * 7, "{valid}/{}", all.len());
    }
}
