//! Voltage-controlled oscillator family generator.
//!
//! Ring oscillators (3–9 stages, optionally current-starved, with varactor
//! tuning) and LC cross-coupled cores (NMOS / PMOS / complementary pairs
//! with varactor or fixed tanks).

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

/// LC-core cross-coupled pair style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcPair {
    /// NMOS-only pair with tail below.
    Nmos,
    /// PMOS-only pair with tail above.
    Pmos,
    /// Complementary (both) pairs.
    Cmos,
}

/// One point in the VCO design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcoConfig {
    /// Ring oscillator.
    Ring {
        /// Odd number of inverter stages (3, 5, 7, 9).
        stages: usize,
        /// Current-starved inverters, tuned by `CTRL1`.
        starved: bool,
        /// Per-stage capacitive loading for frequency control.
        cap_loaded: bool,
        /// Output buffer inverter.
        buffer: bool,
        /// Resistive load on the oscillator output port.
        out_load: bool,
    },
    /// LC cross-coupled oscillator.
    Lc {
        /// Pair style.
        pair: LcPair,
        /// MOS tail current source (`true`) or ideal (`false`).
        mos_tail: bool,
        /// Varactor tuning: MOS-capacitor style tuning caps to `CTRL1`.
        varactor: bool,
        /// Output buffer (source follower).
        buffer: bool,
        /// Resistive load on the oscillator output port.
        out_load: bool,
    },
}

impl VcoConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        match self {
            VcoConfig::Ring {
                stages,
                starved,
                cap_loaded,
                buffer,
                out_load,
            } => format!(
                "vco/ring{stages}{}{}{}{}",
                if *starved { "+starved" } else { "" },
                if *cap_loaded { "+caps" } else { "" },
                if *buffer { "+buf" } else { "" },
                if *out_load { "+load" } else { "" },
            ),
            VcoConfig::Lc {
                pair,
                mos_tail,
                varactor,
                buffer,
                out_load,
            } => format!(
                "vco/lc-{:?}{}{}{}{}",
                pair,
                if *mos_tail { "+mostail" } else { "" },
                if *varactor { "+var" } else { "" },
                if *buffer { "+buf" } else { "" },
                if *out_load { "+load" } else { "" },
            ),
        }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<VcoConfig> {
    let mut out = Vec::new();
    for stages in [3usize, 5, 7, 9] {
        for starved in [false, true] {
            for cap_loaded in [false, true] {
                for buffer in [false, true] {
                    for out_load in [false, true] {
                        out.push(VcoConfig::Ring {
                            stages,
                            starved,
                            cap_loaded,
                            buffer,
                            out_load,
                        });
                    }
                }
            }
        }
    }
    for pair in [LcPair::Nmos, LcPair::Pmos, LcPair::Cmos] {
        for mos_tail in [true, false] {
            for varactor in [false, true] {
                for buffer in [false, true] {
                    for out_load in [false, true] {
                        out.push(VcoConfig::Lc {
                            pair,
                            mos_tail,
                            varactor,
                            buffer,
                            out_load,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Build a ring-oscillator topology.
fn build_ring(
    stages: usize,
    starved: bool,
    cap_loaded: bool,
    buffer: bool,
    out_load: bool,
) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let ctrl: Node = CircuitPin::Ctrl(1).into();

    // Stage k output anchors at its NMOS drain pin; the ring closes back
    // onto stage 0's input which we anchor at the first NMOS gate.
    let mut stage_outputs: Vec<Node> = Vec::with_capacity(stages);
    let mut first_input: Option<Node> = None;
    let mut prev_out: Option<Node> = None;
    for _ in 0..stages {
        let mp = b.add(DeviceKind::Pmos);
        let mn = b.add(DeviceKind::Nmos);
        let input = b.pin(mn, PinRole::Gate);
        b.wire(b.pin(mp, PinRole::Gate), input)?;
        b.wire(b.pin(mp, PinRole::Drain), b.pin(mn, PinRole::Drain))?;
        b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
        b.wire(b.pin(mn, PinRole::Bulk), vss)?;
        if starved {
            // Starving transistors between the inverter and the rails,
            // gated by the control voltage.
            let sp = b.add(DeviceKind::Pmos);
            b.wire(b.pin(sp, PinRole::Source), vdd)?;
            b.wire(b.pin(sp, PinRole::Gate), ctrl)?;
            b.wire(b.pin(sp, PinRole::Bulk), vdd)?;
            b.wire(b.pin(sp, PinRole::Drain), b.pin(mp, PinRole::Source))?;
            let sn = b.add(DeviceKind::Nmos);
            b.wire(b.pin(sn, PinRole::Source), vss)?;
            b.wire(b.pin(sn, PinRole::Gate), ctrl)?;
            b.wire(b.pin(sn, PinRole::Bulk), vss)?;
            b.wire(b.pin(sn, PinRole::Drain), b.pin(mn, PinRole::Source))?;
        } else {
            b.wire(b.pin(mp, PinRole::Source), vdd)?;
            b.wire(b.pin(mn, PinRole::Source), vss)?;
        }
        let out = b.pin(mn, PinRole::Drain);
        if cap_loaded {
            b.capacitor(out, vss)?;
        }
        if let Some(prev) = prev_out {
            b.wire(prev, input)?;
        } else {
            first_input = Some(input);
        }
        prev_out = Some(out);
        stage_outputs.push(out);
    }
    // Close the ring.
    b.wire(
        prev_out.expect("stages >= 1"),
        first_input.expect("stages >= 1"),
    )?;

    // Output tap (buffered or direct).
    let tap = stage_outputs[stages / 2];
    if buffer {
        let mp = b.add(DeviceKind::Pmos);
        let mn = b.add(DeviceKind::Nmos);
        b.wire(b.pin(mp, PinRole::Gate), tap)?;
        b.wire(b.pin(mn, PinRole::Gate), tap)?;
        b.wire(b.pin(mp, PinRole::Source), vdd)?;
        b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
        b.wire(b.pin(mn, PinRole::Source), vss)?;
        b.wire(b.pin(mn, PinRole::Bulk), vss)?;
        b.wire(b.pin(mp, PinRole::Drain), CircuitPin::Vout(1))?;
        b.wire(b.pin(mn, PinRole::Drain), CircuitPin::Vout(1))?;
    } else {
        b.wire(tap, CircuitPin::Vout(1))?;
    }
    // Keep the control port present even for non-starved rings (tuning via
    // a varactor-style cap).
    if !starved {
        b.capacitor(ctrl, stage_outputs[0])?;
    }
    if out_load {
        b.resistor(CircuitPin::Vout(1), vss)?;
    }
    b.build()
}

/// Build an LC cross-coupled oscillator topology.
fn build_lc(
    pair: LcPair,
    mos_tail: bool,
    varactor: bool,
    buffer: bool,
    out_load: bool,
) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let ctrl: Node = CircuitPin::Ctrl(1).into();

    // The two tank nodes anchor at the inductors' low pins; both inductors
    // return to VDD (center-tapped tank).
    let l1 = b.add(DeviceKind::Inductor);
    b.wire(b.pin(l1, PinRole::Plus), vdd)?;
    let t1 = b.pin(l1, PinRole::Minus);
    let l2 = b.add(DeviceKind::Inductor);
    b.wire(b.pin(l2, PinRole::Plus), vdd)?;
    let t2 = b.pin(l2, PinRole::Minus);
    // Tank capacitance across the nodes.
    b.capacitor(t1, t2)?;
    if varactor {
        // Varactor-style tuning: caps from each tank node to the control.
        b.capacitor(t1, ctrl)?;
        b.capacitor(t2, ctrl)?;
        b.resistor(ctrl, vss)?;
    }

    // Cross-coupled pairs.
    let cross = |b: &mut TopologyBuilder,
                 kind: DeviceKind,
                 rail: Node,
                 common: Node|
     -> Result<(), CircuitError> {
        let m1 = b.add(kind);
        let m2 = b.add(kind);
        b.wire(b.pin(m1, PinRole::Gate), t2)?;
        b.wire(b.pin(m1, PinRole::Drain), t1)?;
        b.wire(b.pin(m2, PinRole::Gate), t1)?;
        b.wire(b.pin(m2, PinRole::Drain), t2)?;
        b.wire(b.pin(m1, PinRole::Source), common)?;
        b.wire(b.pin(m2, PinRole::Source), common)?;
        b.wire(b.pin(m1, PinRole::Bulk), rail)?;
        b.wire(b.pin(m2, PinRole::Bulk), rail)?;
        Ok(())
    };

    let tail_common: Node = if mos_tail {
        let mt = b.add(DeviceKind::Nmos);
        b.wire(b.pin(mt, PinRole::Gate), CircuitPin::Vbias(1))?;
        b.wire(b.pin(mt, PinRole::Source), vss)?;
        b.wire(b.pin(mt, PinRole::Bulk), vss)?;
        b.pin(mt, PinRole::Drain)
    } else {
        let i = b.add(DeviceKind::CurrentSource);
        b.wire(b.pin(i, PinRole::Minus), vss)?;
        b.pin(i, PinRole::Plus)
    };

    match pair {
        LcPair::Nmos => cross(&mut b, DeviceKind::Nmos, vss, tail_common)?,
        LcPair::Pmos => {
            // PMOS pair sources to VDD; the tail hangs below the tank via a
            // resistor so the tail element still sees current.
            cross(&mut b, DeviceKind::Pmos, vdd, vdd)?;
            b.resistor(t1, tail_common)?;
        }
        LcPair::Cmos => {
            cross(&mut b, DeviceKind::Nmos, vss, tail_common)?;
            cross(&mut b, DeviceKind::Pmos, vdd, vdd)?;
        }
    }

    if buffer {
        let sf = b.add(DeviceKind::Nmos);
        b.wire(b.pin(sf, PinRole::Gate), t1)?;
        b.wire(b.pin(sf, PinRole::Drain), vdd)?;
        b.wire(b.pin(sf, PinRole::Bulk), vss)?;
        b.wire(b.pin(sf, PinRole::Source), CircuitPin::Vout(1))?;
        b.resistor(CircuitPin::Vout(1), vss)?;
    } else {
        b.wire(t1, CircuitPin::Vout(1))?;
    }
    if out_load {
        b.resistor(CircuitPin::Vout(1), vss)?;
    }

    b.build()
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &VcoConfig) -> Result<Topology, CircuitError> {
    match *config {
        VcoConfig::Ring {
            stages,
            starved,
            cap_loaded,
            buffer,
            out_load,
        } => build_ring(stages, starved, cap_loaded, buffer, out_load),
        VcoConfig::Lc {
            pair,
            mos_tail,
            varactor,
            buffer,
            out_load,
        } => build_lc(pair, mos_tail, varactor, buffer, out_load),
    }
}

/// Generate all VCO variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 4 * 2 * 2 * 2 * 2 + 3 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn three_stage_ring_valid() {
        let c = VcoConfig::Ring {
            stages: 3,
            starved: false,
            cap_loaded: true,
            buffer: true,
            out_load: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
        // 3 inverters + buffer = 8 MOS + caps.
        assert!(t.device_count() >= 8);
    }

    #[test]
    fn lc_nmos_core_valid() {
        let c = VcoConfig::Lc {
            pair: LcPair::Nmos,
            mos_tail: true,
            varactor: true,
            buffer: false,
            out_load: true,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn majority_valid() {
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        assert!(valid * 10 >= all.len() * 7, "{valid}/{}", all.len());
    }
}
