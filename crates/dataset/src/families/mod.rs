//! The 11 circuit-family generators.
//!
//! Each module enumerates a structured design space for one family and
//! exposes `configs()`, `build(&config)`, and `generate()` returning
//! `(Topology, variant-tag)` pairs. [`generate_family`] dispatches by
//! [`CircuitType`].

pub mod bandgap;
pub mod comparator;
pub mod converter;
pub mod ldo;
pub mod lna;
pub mod mixer;
pub mod opamp;
pub mod pa;
pub mod pll;
pub mod sc_sampler;
pub mod vco;

use eva_circuit::Topology;

use crate::types::CircuitType;

/// Generate every enumerated variant of one family.
pub fn generate_family(circuit_type: CircuitType) -> Vec<(Topology, String)> {
    match circuit_type {
        CircuitType::OpAmp => opamp::generate(),
        CircuitType::Ldo => ldo::generate(),
        CircuitType::Bandgap => bandgap::generate(),
        CircuitType::Comparator => comparator::generate(),
        CircuitType::Pll => pll::generate(),
        CircuitType::Lna => lna::generate(),
        CircuitType::Pa => pa::generate(),
        CircuitType::Mixer => mixer::generate(),
        CircuitType::Vco => vco::generate(),
        CircuitType::PowerConverter => converter::generate(),
        CircuitType::ScSampler => sc_sampler::generate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_variants() {
        for ty in CircuitType::ALL {
            let variants = generate_family(ty);
            assert!(
                variants.len() >= 30,
                "{ty} must have at least 30 variants (paper: min 30 per type), got {}",
                variants.len()
            );
        }
    }

    #[test]
    fn tags_mention_family() {
        for ty in CircuitType::ALL {
            let variants = generate_family(ty);
            let (_, tag) = &variants[0];
            assert!(!tag.is_empty());
        }
    }
}
