//! Low-dropout regulator family generator.
//!
//! Error amplifier (differential pair referenced to `VREF1`) driving a pass
//! device, with a feedback network from the regulated output and optional
//! compensation — the canonical LDO loop.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

use crate::blocks::{diff_pair, mos_mirror};

/// Pass-device style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassDevice {
    /// PMOS common-source pass transistor (classic low-dropout).
    PmosCs,
    /// NMOS source-follower pass transistor.
    NmosSf,
}

/// Compensation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdoComp {
    /// No explicit compensation.
    None,
    /// Output capacitor to ground.
    OutputCap,
    /// Miller capacitor across the pass device.
    Miller,
}

/// One point in the LDO design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdoConfig {
    /// Error-amp input pair polarity.
    pub amp_input: DeviceKind,
    /// Error-amp load: current mirror (`true`) or resistors (`false`).
    pub mirror_load: bool,
    /// Pass device.
    pub pass: PassDevice,
    /// Feedback through a resistive divider (`true`) or direct (`false`).
    pub divider: bool,
    /// Compensation.
    pub comp: LdoComp,
    /// MOS tail current source (`true`) or ideal source (`false`).
    pub mos_tail: bool,
    /// Buffer the error-amp output with a source follower before the pass
    /// gate (improves drive of a large pass device).
    pub buffered: bool,
}

impl LdoConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "ldo/{}-amp-{}/{:?}/{}/{:?}/{}",
            if self.amp_input == DeviceKind::Nmos {
                "n"
            } else {
                "p"
            },
            if self.mirror_load { "mirror" } else { "res" },
            self.pass,
            if self.divider { "divider" } else { "direct" },
            self.comp,
            if self.mos_tail {
                "mos-tail"
            } else {
                "ideal-tail"
            },
        ) + if self.buffered { "+buf" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<LdoConfig> {
    let mut out = Vec::new();
    for amp_input in [DeviceKind::Nmos, DeviceKind::Pmos] {
        for mirror_load in [true, false] {
            for pass in [PassDevice::PmosCs, PassDevice::NmosSf] {
                for divider in [true, false] {
                    for comp in [LdoComp::None, LdoComp::OutputCap, LdoComp::Miller] {
                        for mos_tail in [true, false] {
                            for buffered in [false, true] {
                                out.push(LdoConfig {
                                    amp_input,
                                    mirror_load,
                                    pass,
                                    divider,
                                    comp,
                                    mos_tail,
                                    buffered,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &LdoConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let out: Node = CircuitPin::Vout(1).into();
    let (pair_kind, low, high) = match config.amp_input {
        DeviceKind::Nmos => (DeviceKind::Nmos, vss, vdd),
        _ => (DeviceKind::Pmos, vdd, vss),
    };
    let load_kind = if pair_kind == DeviceKind::Nmos {
        DeviceKind::Pmos
    } else {
        DeviceKind::Nmos
    };

    // Feedback node.
    let fb: Node = if config.divider {
        let r1 = b.add(DeviceKind::Resistor);
        b.wire(b.pin(r1, PinRole::Plus), out)?;
        let fb = b.pin(r1, PinRole::Minus);
        let r2 = b.add(DeviceKind::Resistor);
        b.wire(b.pin(r2, PinRole::Plus), fb)?;
        b.wire(b.pin(r2, PinRole::Minus), vss)?;
        fb
    } else {
        out
    };

    // Error amplifier.
    let tail_node = if config.mos_tail {
        let mt = b.add(pair_kind);
        b.wire(b.pin(mt, PinRole::Gate), CircuitPin::Vbias(1))?;
        b.wire(b.pin(mt, PinRole::Source), low)?;
        b.wire(b.pin(mt, PinRole::Bulk), low)?;
        b.pin(mt, PinRole::Drain)
    } else {
        // Orient the ideal source so current flows through the pair.
        let i = b.add(DeviceKind::CurrentSource);
        if pair_kind == DeviceKind::Nmos {
            b.wire(b.pin(i, PinRole::Minus), low)?;
            b.pin(i, PinRole::Plus)
        } else {
            b.wire(b.pin(i, PinRole::Plus), low)?;
            b.pin(i, PinRole::Minus)
        }
    };
    let (dp, dn) = diff_pair(
        &mut b,
        pair_kind,
        CircuitPin::Vref(1).into(),
        fb,
        tail_node,
        low,
    )?;
    if config.mirror_load {
        mos_mirror(&mut b, load_kind, high, dp, &[dn])?;
    } else {
        b.resistor(high, dp)?;
        b.resistor(high, dn)?;
    }
    let amp_out = if config.buffered {
        let sf = b.add(DeviceKind::Nmos);
        b.wire(b.pin(sf, PinRole::Gate), dn)?;
        b.wire(b.pin(sf, PinRole::Drain), vdd)?;
        b.wire(b.pin(sf, PinRole::Bulk), vss)?;
        let r = b.add(DeviceKind::Resistor);
        b.wire(b.pin(r, PinRole::Plus), b.pin(sf, PinRole::Source))?;
        b.wire(b.pin(r, PinRole::Minus), vss)?;
        b.pin(sf, PinRole::Source)
    } else {
        dn
    };

    // Pass device from VDD to the regulated output.
    match config.pass {
        PassDevice::PmosCs => {
            let mp = b.add(DeviceKind::Pmos);
            b.wire(b.pin(mp, PinRole::Gate), amp_out)?;
            b.wire(b.pin(mp, PinRole::Source), vdd)?;
            b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
            b.wire(b.pin(mp, PinRole::Drain), out)?;
        }
        PassDevice::NmosSf => {
            let mn = b.add(DeviceKind::Nmos);
            b.wire(b.pin(mn, PinRole::Gate), amp_out)?;
            b.wire(b.pin(mn, PinRole::Drain), vdd)?;
            b.wire(b.pin(mn, PinRole::Bulk), vss)?;
            b.wire(b.pin(mn, PinRole::Source), out)?;
        }
    }

    // Load current so the loop has something to regulate.
    b.resistor(out, vss)?;

    match config.comp {
        LdoComp::None => {}
        LdoComp::OutputCap => {
            b.capacitor(out, vss)?;
        }
        LdoComp::Miller => {
            b.capacitor(amp_out, out)?;
        }
    }

    b.build()
}

/// Generate all LDO variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 2 * 2 * 2 * 2 * 3 * 2 * 2);
    }

    #[test]
    fn classic_pmos_ldo_valid() {
        let c = LdoConfig {
            amp_input: DeviceKind::Nmos,
            mirror_load: true,
            pass: PassDevice::PmosCs,
            divider: true,
            comp: LdoComp::OutputCap,
            mos_tail: true,
            buffered: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn regulates_near_reference() {
        // With a direct-feedback NMOS follower the output should sit in the
        // neighbourhood of VREF (within the crude default sizing's error).
        let c = LdoConfig {
            amp_input: DeviceKind::Nmos,
            mirror_load: true,
            pass: PassDevice::NmosSf,
            divider: false,
            comp: LdoComp::OutputCap,
            mos_tail: true,
            buffered: false,
        };
        let t = build(&c).unwrap();
        let sizing = eva_spice::Sizing::default_for(&t);
        let netlist = eva_spice::elaborate(&t, &sizing, &eva_spice::Stimulus::default()).unwrap();
        let op = eva_spice::dc_operating_point(&netlist, &eva_spice::Tech::default()).unwrap();
        let out = netlist.port_node(CircuitPin::Vout(1)).unwrap();
        let v = op.voltage(out);
        assert!((0.3..1.6).contains(&v), "regulated output {v}");
    }

    #[test]
    fn divider_adds_two_resistors() {
        let base = LdoConfig {
            amp_input: DeviceKind::Nmos,
            mirror_load: true,
            pass: PassDevice::PmosCs,
            divider: false,
            comp: LdoComp::None,
            mos_tail: true,
            buffered: false,
        };
        let div = LdoConfig {
            divider: true,
            ..base
        };
        assert_eq!(
            build(&div).unwrap().device_count(),
            build(&base).unwrap().device_count() + 2
        );
    }
}
