//! Phase-locked loop family generator (transistor-level blocks).
//!
//! A compact PLL: phase detector (pass-transistor or latch style) comparing
//! the `CLK1` reference against the VCO output, a charge-pump / filter
//! driving the control node, and a current-starved ring VCO. Enumeration
//! covers ring length, detector and pump styles, and loop-filter order.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

/// Phase-detector style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdStyle {
    /// Single pass transistor sampling the reference with the VCO phase.
    PassGate,
    /// Cross-coupled latch comparing the two phases.
    Latch,
}

/// Charge-pump style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpStyle {
    /// Complementary switch pair into the filter.
    SwitchPair,
    /// Mirror-loaded single-ended pump.
    Mirror,
}

/// One point in the PLL design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PllConfig {
    /// Ring VCO stages (odd).
    pub stages: usize,
    /// Phase detector style.
    pub pd: PdStyle,
    /// Charge pump style.
    pub pump: PumpStyle,
    /// Second-order loop filter (extra ripple cap).
    pub second_order: bool,
    /// Buffer the VCO output before it is fed back / exported.
    pub buffer: bool,
    /// Extra ripple capacitor from the control node to the supply.
    pub ctrl_decap: bool,
}

impl PllConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "pll/ring{}/{:?}/{:?}/{}{}",
            self.stages,
            self.pd,
            self.pump,
            if self.second_order { "lf2" } else { "lf1" },
            if self.buffer { "+buf" } else { "" },
        ) + if self.ctrl_decap { "+decap" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<PllConfig> {
    let mut out = Vec::new();
    for stages in [3usize, 5, 7] {
        for pd in [PdStyle::PassGate, PdStyle::Latch] {
            for pump in [PumpStyle::SwitchPair, PumpStyle::Mirror] {
                for second_order in [false, true] {
                    for buffer in [false, true] {
                        for ctrl_decap in [false, true] {
                            out.push(PllConfig {
                                stages,
                                pd,
                                pump,
                                second_order,
                                buffer,
                                ctrl_decap,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &PllConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let refclk: Node = CircuitPin::Clk(1).into();

    // --- Current-starved ring VCO, control node anchored at the first
    // starving NMOS gate.
    let mut ctrl_anchor: Option<Node> = None;
    let mut first_input: Option<Node> = None;
    let mut prev_out: Option<Node> = None;
    let mut vco_out: Node = vss; // replaced below
    for k in 0..config.stages {
        let mp = b.add(DeviceKind::Pmos);
        let mn = b.add(DeviceKind::Nmos);
        let input = b.pin(mn, PinRole::Gate);
        b.wire(b.pin(mp, PinRole::Gate), input)?;
        b.wire(b.pin(mp, PinRole::Drain), b.pin(mn, PinRole::Drain))?;
        b.wire(b.pin(mp, PinRole::Source), vdd)?;
        b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
        b.wire(b.pin(mn, PinRole::Bulk), vss)?;
        // Starving NMOS under each inverter, gated by the control net.
        let sn = b.add(DeviceKind::Nmos);
        b.wire(b.pin(sn, PinRole::Drain), b.pin(mn, PinRole::Source))?;
        b.wire(b.pin(sn, PinRole::Source), vss)?;
        b.wire(b.pin(sn, PinRole::Bulk), vss)?;
        match ctrl_anchor {
            None => ctrl_anchor = Some(b.pin(sn, PinRole::Gate)),
            Some(ctrl) => b.wire(b.pin(sn, PinRole::Gate), ctrl)?,
        }
        let out = b.pin(mn, PinRole::Drain);
        if let Some(prev) = prev_out {
            b.wire(prev, input)?;
        } else {
            first_input = Some(input);
        }
        prev_out = Some(out);
        if k == config.stages - 1 {
            vco_out = out;
        }
    }
    b.wire(
        prev_out.expect("stages >= 1"),
        first_input.expect("stages >= 1"),
    )?;
    let ctrl = ctrl_anchor.expect("at least one stage");

    // Optional buffer on the VCO output.
    let fb: Node = if config.buffer {
        let mp = b.add(DeviceKind::Pmos);
        let mn = b.add(DeviceKind::Nmos);
        b.wire(b.pin(mp, PinRole::Gate), vco_out)?;
        b.wire(b.pin(mn, PinRole::Gate), vco_out)?;
        b.wire(b.pin(mp, PinRole::Source), vdd)?;
        b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
        b.wire(b.pin(mn, PinRole::Source), vss)?;
        b.wire(b.pin(mn, PinRole::Bulk), vss)?;
        b.wire(b.pin(mp, PinRole::Drain), b.pin(mn, PinRole::Drain))?;
        b.pin(mn, PinRole::Drain)
    } else {
        vco_out
    };
    b.wire(fb, CircuitPin::Vout(1))?;

    // --- Phase detector producing an error net `pd_out`.
    let pd_out: Node = match config.pd {
        PdStyle::PassGate => {
            // Reference sampled through an NMOS gated by the feedback.
            let m = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m, PinRole::Drain), refclk)?;
            b.wire(b.pin(m, PinRole::Gate), fb)?;
            b.wire(b.pin(m, PinRole::Bulk), vss)?;
            b.pin(m, PinRole::Source)
        }
        PdStyle::Latch => {
            let m1 = b.add(DeviceKind::Nmos);
            let m2 = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m1, PinRole::Gate), refclk)?;
            b.wire(b.pin(m2, PinRole::Gate), fb)?;
            b.wire(b.pin(m1, PinRole::Source), vss)?;
            b.wire(b.pin(m2, PinRole::Source), vss)?;
            b.wire(b.pin(m1, PinRole::Bulk), vss)?;
            b.wire(b.pin(m2, PinRole::Bulk), vss)?;
            // Cross-coupled PMOS loads form the latch.
            let p1 = b.add(DeviceKind::Pmos);
            let p2 = b.add(DeviceKind::Pmos);
            b.wire(b.pin(p1, PinRole::Source), vdd)?;
            b.wire(b.pin(p2, PinRole::Source), vdd)?;
            b.wire(b.pin(p1, PinRole::Bulk), vdd)?;
            b.wire(b.pin(p2, PinRole::Bulk), vdd)?;
            b.wire(b.pin(p1, PinRole::Drain), b.pin(m1, PinRole::Drain))?;
            b.wire(b.pin(p2, PinRole::Drain), b.pin(m2, PinRole::Drain))?;
            b.wire(b.pin(p1, PinRole::Gate), b.pin(m2, PinRole::Drain))?;
            b.wire(b.pin(p2, PinRole::Gate), b.pin(m1, PinRole::Drain))?;
            b.pin(m2, PinRole::Drain)
        }
    };

    // --- Charge pump from the detector into the control node.
    match config.pump {
        PumpStyle::SwitchPair => {
            let up = b.add(DeviceKind::Pmos);
            b.wire(b.pin(up, PinRole::Source), vdd)?;
            b.wire(b.pin(up, PinRole::Gate), pd_out)?;
            b.wire(b.pin(up, PinRole::Bulk), vdd)?;
            b.wire(b.pin(up, PinRole::Drain), ctrl)?;
            let dn = b.add(DeviceKind::Nmos);
            b.wire(b.pin(dn, PinRole::Source), vss)?;
            b.wire(b.pin(dn, PinRole::Gate), pd_out)?;
            b.wire(b.pin(dn, PinRole::Bulk), vss)?;
            b.wire(b.pin(dn, PinRole::Drain), ctrl)?;
        }
        PumpStyle::Mirror => {
            // pd_out drives an NMOS whose current is mirrored up into the
            // control node through a PMOS mirror.
            let mn = b.add(DeviceKind::Nmos);
            b.wire(b.pin(mn, PinRole::Gate), pd_out)?;
            b.wire(b.pin(mn, PinRole::Source), vss)?;
            b.wire(b.pin(mn, PinRole::Bulk), vss)?;
            let sense = b.pin(mn, PinRole::Drain);
            crate::blocks::mos_mirror(&mut b, DeviceKind::Pmos, vdd, sense, &[ctrl])?;
        }
    }

    // --- Loop filter on the control node.
    let rf = b.add(DeviceKind::Resistor);
    b.wire(b.pin(rf, PinRole::Plus), ctrl)?;
    let mid = b.pin(rf, PinRole::Minus);
    b.capacitor(mid, vss)?;
    if config.second_order {
        b.capacitor(ctrl, vss)?;
    }
    if config.ctrl_decap {
        b.capacitor(ctrl, vdd)?;
    }

    b.build()
}

/// Generate all PLL variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 3 * 2 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn basic_pll_valid() {
        let c = PllConfig {
            stages: 3,
            pd: PdStyle::PassGate,
            pump: PumpStyle::SwitchPair,
            second_order: false,
            buffer: false,
            ctrl_decap: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn pll_is_transistor_heavy() {
        let c = PllConfig {
            stages: 7,
            pd: PdStyle::Latch,
            pump: PumpStyle::Mirror,
            second_order: true,
            buffer: true,
            ctrl_decap: true,
        };
        let t = build(&c).unwrap();
        assert!(t.device_count() >= 25, "{}", t.device_count());
    }

    #[test]
    fn majority_valid() {
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        assert!(valid * 10 >= all.len() * 6, "{valid}/{}", all.len());
    }
}
