//! Voltage-comparator family generator.
//!
//! Differential front-end with optional regenerative (cross-coupled) load
//! or hysteresis pair, followed by a chain of restoring inverters — the
//! standard open-loop comparator idioms.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

use crate::blocks::{diff_pair, mos_mirror};

/// First-stage load style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompLoad {
    /// Current-mirror load.
    Mirror,
    /// Cross-coupled (regenerative latch) load.
    Latch,
    /// Resistor loads.
    Resistor,
}

/// One point in the comparator design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparatorConfig {
    /// Input pair polarity.
    pub input_kind: DeviceKind,
    /// Load style.
    pub load: CompLoad,
    /// Add a weak cross-coupled pair for hysteresis (ignored when the load
    /// is already a latch).
    pub hysteresis: bool,
    /// Number of output inverters (0–2).
    pub inverters: usize,
    /// Tail: MOS current source (`true`) or ideal source (`false`).
    pub mos_tail: bool,
    /// Cascode the input branches.
    pub input_cascode: bool,
    /// Buffer the decision output with a source follower.
    pub sf_output: bool,
}

impl ComparatorConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "comparator/{}-in/{:?}{}{}/inv{}/{}",
            if self.input_kind == DeviceKind::Nmos {
                "n"
            } else {
                "p"
            },
            self.load,
            if self.hysteresis { "+hyst" } else { "" },
            if self.input_cascode { "+casc" } else { "" },
            self.inverters,
            if self.mos_tail {
                "mos-tail"
            } else {
                "ideal-tail"
            },
        ) + if self.sf_output { "+sf" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<ComparatorConfig> {
    let mut out = Vec::new();
    for input_kind in [DeviceKind::Nmos, DeviceKind::Pmos] {
        for load in [CompLoad::Mirror, CompLoad::Latch, CompLoad::Resistor] {
            for hysteresis in [false, true] {
                if hysteresis && load == CompLoad::Latch {
                    continue;
                }
                for inverters in 0..=2 {
                    for mos_tail in [false, true] {
                        for input_cascode in [false, true] {
                            for sf_output in [false, true] {
                                out.push(ComparatorConfig {
                                    input_kind,
                                    load,
                                    hysteresis,
                                    inverters,
                                    mos_tail,
                                    input_cascode,
                                    sf_output,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &ComparatorConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let (pair_kind, low, high) = match config.input_kind {
        DeviceKind::Nmos => (DeviceKind::Nmos, vss, vdd),
        _ => (DeviceKind::Pmos, vdd, vss),
    };
    let load_kind = if pair_kind == DeviceKind::Nmos {
        DeviceKind::Pmos
    } else {
        DeviceKind::Nmos
    };

    // Tail.
    let tail_node = if config.mos_tail {
        let mt = b.add(pair_kind);
        b.wire(b.pin(mt, PinRole::Gate), CircuitPin::Vbias(1))?;
        b.wire(b.pin(mt, PinRole::Source), low)?;
        b.wire(b.pin(mt, PinRole::Bulk), low)?;
        b.pin(mt, PinRole::Drain)
    } else {
        // Orient the ideal source so current flows through the pair: sink
        // to VSS for NMOS pairs, feed from VDD for PMOS pairs.
        let i = b.add(DeviceKind::CurrentSource);
        if pair_kind == DeviceKind::Nmos {
            b.wire(b.pin(i, PinRole::Minus), low)?;
            b.pin(i, PinRole::Plus)
        } else {
            b.wire(b.pin(i, PinRole::Plus), low)?;
            b.pin(i, PinRole::Minus)
        }
    };

    let (mut dp, mut dn) = diff_pair(
        &mut b,
        pair_kind,
        CircuitPin::Vin(1).into(),
        CircuitPin::Vin(2).into(),
        tail_node,
        low,
    )?;

    if config.input_cascode {
        let bias: Node = CircuitPin::Vbias(2).into();
        for d in [&mut dp, &mut dn] {
            let c = b.add(pair_kind);
            b.wire(b.pin(c, PinRole::Source), *d)?;
            b.wire(b.pin(c, PinRole::Gate), bias)?;
            b.wire(b.pin(c, PinRole::Bulk), low)?;
            *d = b.pin(c, PinRole::Drain);
        }
    }

    match config.load {
        CompLoad::Mirror => {
            mos_mirror(&mut b, load_kind, high, dp, &[dn])?;
        }
        CompLoad::Latch => {
            let m1 = b.add(load_kind);
            let m2 = b.add(load_kind);
            b.wire(b.pin(m1, PinRole::Gate), dn)?;
            b.wire(b.pin(m1, PinRole::Drain), dp)?;
            b.wire(b.pin(m1, PinRole::Source), high)?;
            b.wire(b.pin(m1, PinRole::Bulk), high)?;
            b.wire(b.pin(m2, PinRole::Gate), dp)?;
            b.wire(b.pin(m2, PinRole::Drain), dn)?;
            b.wire(b.pin(m2, PinRole::Source), high)?;
            b.wire(b.pin(m2, PinRole::Bulk), high)?;
        }
        CompLoad::Resistor => {
            b.resistor(high, dp)?;
            b.resistor(high, dn)?;
        }
    }

    if config.hysteresis {
        // Weak cross-coupled pair in parallel with the load.
        let h1 = b.add(load_kind);
        let h2 = b.add(load_kind);
        b.wire(b.pin(h1, PinRole::Gate), dn)?;
        b.wire(b.pin(h1, PinRole::Drain), dp)?;
        b.wire(b.pin(h1, PinRole::Source), high)?;
        b.wire(b.pin(h1, PinRole::Bulk), high)?;
        b.wire(b.pin(h2, PinRole::Gate), dp)?;
        b.wire(b.pin(h2, PinRole::Drain), dn)?;
        b.wire(b.pin(h2, PinRole::Source), high)?;
        b.wire(b.pin(h2, PinRole::Bulk), high)?;
    }

    // Output inverter chain.
    let mut out_net = dn;
    for _ in 0..config.inverters {
        // Anchor the new net at the inverter's NMOS drain.
        let mp = b.add(DeviceKind::Pmos);
        let mn = b.add(DeviceKind::Nmos);
        b.wire(b.pin(mp, PinRole::Gate), out_net)?;
        b.wire(b.pin(mn, PinRole::Gate), out_net)?;
        b.wire(b.pin(mp, PinRole::Source), vdd)?;
        b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
        b.wire(b.pin(mn, PinRole::Source), vss)?;
        b.wire(b.pin(mn, PinRole::Bulk), vss)?;
        b.wire(b.pin(mp, PinRole::Drain), b.pin(mn, PinRole::Drain))?;
        out_net = b.pin(mn, PinRole::Drain);
    }
    if config.sf_output {
        let sf = b.add(DeviceKind::Nmos);
        b.wire(b.pin(sf, PinRole::Gate), out_net)?;
        b.wire(b.pin(sf, PinRole::Drain), vdd)?;
        b.wire(b.pin(sf, PinRole::Bulk), vss)?;
        b.wire(b.pin(sf, PinRole::Source), CircuitPin::Vout(1))?;
        b.resistor(CircuitPin::Vout(1), vss)?;
    } else {
        b.wire(out_net, CircuitPin::Vout(1))?;
    }
    b.build()
}

/// Generate all comparator variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        // 2 * (3 loads, minus latch+hyst) * 3 * 2 * 2 = see configs().
        assert!(configs().len() >= 100, "got {}", configs().len());
    }

    #[test]
    fn canonical_variant_valid() {
        let c = ComparatorConfig {
            input_kind: DeviceKind::Nmos,
            load: CompLoad::Mirror,
            hysteresis: false,
            inverters: 1,
            mos_tail: true,
            input_cascode: false,
            sf_output: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn latch_load_valid() {
        let c = ComparatorConfig {
            input_kind: DeviceKind::Pmos,
            load: CompLoad::Latch,
            hysteresis: false,
            inverters: 2,
            mos_tail: false,
            input_cascode: true,
            sf_output: true,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn inverter_count_grows_devices() {
        let base = ComparatorConfig {
            input_kind: DeviceKind::Nmos,
            load: CompLoad::Mirror,
            hysteresis: false,
            inverters: 0,
            mos_tail: true,
            input_cascode: false,
            sf_output: false,
        };
        let more = ComparatorConfig {
            inverters: 2,
            ..base
        };
        assert_eq!(
            build(&more).unwrap().device_count(),
            build(&base).unwrap().device_count() + 4
        );
    }
}
