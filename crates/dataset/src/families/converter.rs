//! Switching power-converter family generator.
//!
//! Inductive converters (buck / boost / buck-boost / inverting) with diode
//! or synchronous rectification and optional gate-drive buffering, plus
//! capacitive charge pumps (Dickson ladders and cross-coupled doublers).

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

/// Inductive converter kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InductiveKind {
    /// Step-down.
    Buck,
    /// Step-up.
    Boost,
    /// Non-inverting buck-boost.
    BuckBoost,
}

/// One point in the power-converter design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConverterConfig {
    /// Inductor-based switching converter.
    Inductive {
        /// Converter kind.
        kind: InductiveKind,
        /// Synchronous rectifier switch instead of a diode.
        sync_rect: bool,
        /// PMOS main switch (`true`) or NMOS (`false`).
        pmos_switch: bool,
        /// Second-order output filter (extra LC).
        lc2: bool,
        /// Buffer the clock through an inverter before the gate.
        buffered_gate: bool,
        /// RC snubber across the rectifier (switch-node to ground).
        snubber: bool,
    },
    /// Dickson charge pump.
    Dickson {
        /// Number of pump stages (1–3).
        stages: usize,
        /// MOS-diode pass devices instead of junction diodes.
        mos_diode: bool,
    },
    /// Cross-coupled voltage doubler.
    CrossCoupled {
        /// Add output filter capacitor.
        filtered: bool,
    },
}

impl ConverterConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        match self {
            ConverterConfig::Inductive {
                kind,
                sync_rect,
                pmos_switch,
                lc2,
                buffered_gate,
                snubber,
            } => {
                format!(
                    "converter/{:?}/{}{}{}{}{}",
                    kind,
                    if *sync_rect { "sync" } else { "diode" },
                    if *pmos_switch { "+psw" } else { "+nsw" },
                    if *lc2 { "+lc2" } else { "" },
                    if *buffered_gate { "+buf" } else { "" },
                    if *snubber { "+snub" } else { "" },
                )
            }
            ConverterConfig::Dickson { stages, mos_diode } => format!(
                "converter/dickson{stages}{}",
                if *mos_diode { "+mosdiode" } else { "+diode" }
            ),
            ConverterConfig::CrossCoupled { filtered } => {
                format!("converter/xcoupled{}", if *filtered { "+filt" } else { "" })
            }
        }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<ConverterConfig> {
    let mut out = Vec::new();
    for kind in [
        InductiveKind::Buck,
        InductiveKind::Boost,
        InductiveKind::BuckBoost,
    ] {
        for sync_rect in [false, true] {
            for pmos_switch in [false, true] {
                for lc2 in [false, true] {
                    for buffered_gate in [false, true] {
                        for snubber in [false, true] {
                            out.push(ConverterConfig::Inductive {
                                kind,
                                sync_rect,
                                pmos_switch,
                                lc2,
                                buffered_gate,
                                snubber,
                            });
                        }
                    }
                }
            }
        }
    }
    for stages in 1..=3 {
        for mos_diode in [false, true] {
            out.push(ConverterConfig::Dickson { stages, mos_diode });
        }
    }
    for filtered in [false, true] {
        out.push(ConverterConfig::CrossCoupled { filtered });
    }
    out
}

/// Add the main switch between `a` and `c`, gated by `gate`.
fn switch(
    b: &mut TopologyBuilder,
    pmos: bool,
    a: Node,
    c: Node,
    gate: Node,
) -> Result<(), CircuitError> {
    let kind = if pmos {
        DeviceKind::Pmos
    } else {
        DeviceKind::Nmos
    };
    let bulk: Node = if pmos {
        CircuitPin::Vdd.into()
    } else {
        Node::VSS
    };
    let m = b.add(kind);
    b.wire(b.pin(m, PinRole::Gate), gate)?;
    b.wire(b.pin(m, PinRole::Source), a)?;
    b.wire(b.pin(m, PinRole::Drain), c)?;
    b.wire(b.pin(m, PinRole::Bulk), bulk)?;
    Ok(())
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &ConverterConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let vout: Node = CircuitPin::Vout(1).into();
    let clk: Node = CircuitPin::Clk(1).into();
    let clk2: Node = CircuitPin::Clk(2).into();

    match config {
        ConverterConfig::Inductive {
            kind,
            sync_rect,
            pmos_switch,
            lc2,
            buffered_gate,
            snubber,
        } => {
            // Gate drive.
            let gate: Node = if *buffered_gate {
                let mp = b.add(DeviceKind::Pmos);
                let mn = b.add(DeviceKind::Nmos);
                b.wire(b.pin(mp, PinRole::Gate), clk)?;
                b.wire(b.pin(mn, PinRole::Gate), clk)?;
                b.wire(b.pin(mp, PinRole::Source), vdd)?;
                b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
                b.wire(b.pin(mn, PinRole::Source), vss)?;
                b.wire(b.pin(mn, PinRole::Bulk), vss)?;
                b.wire(b.pin(mp, PinRole::Drain), b.pin(mn, PinRole::Drain))?;
                b.pin(mn, PinRole::Drain)
            } else {
                clk
            };

            // Switch node anchored at the inductor terminal.
            let l = b.add(DeviceKind::Inductor);
            let (lx, lo) = (b.pin(l, PinRole::Plus), b.pin(l, PinRole::Minus));
            match kind {
                InductiveKind::Buck => {
                    // VDD -[switch]- lx -L- out; rectifier from VSS to lx.
                    switch(&mut b, *pmos_switch, vdd, lx, gate)?;
                    b.wire(lo, vout)?;
                    if *sync_rect {
                        switch(&mut b, false, vss, lx, clk2)?;
                    } else {
                        b.diode(vss, lx)?;
                    }
                }
                InductiveKind::Boost => {
                    // VDD -L- lx; switch lx to VSS; rectifier lx to out.
                    b.wire(lx, vdd)?;
                    switch(&mut b, *pmos_switch, vss, lo, gate)?;
                    if *sync_rect {
                        switch(&mut b, true, lo, vout, clk2)?;
                    } else {
                        b.diode(lo, vout)?;
                    }
                }
                InductiveKind::BuckBoost => {
                    // VDD -[switch]- lx -L- VSS; rectifier lx to out.
                    switch(&mut b, *pmos_switch, vdd, lx, gate)?;
                    b.wire(lo, vss)?;
                    if *sync_rect {
                        switch(&mut b, true, lx, vout, clk2)?;
                    } else {
                        b.diode(lx, vout)?;
                    }
                }
            }
            if *snubber {
                let rs = b.add(DeviceKind::Resistor);
                b.wire(b.pin(rs, PinRole::Plus), lx)?;
                let mid = b.pin(rs, PinRole::Minus);
                b.capacitor(mid, vss)?;
            }
            // Output filter.
            b.capacitor(vout, vss)?;
            if *lc2 {
                // Second LC between a new mid node and the output:
                // re-anchor: add series L from vout to a tap plus cap.
                let l2 = b.add(DeviceKind::Inductor);
                b.wire(b.pin(l2, PinRole::Plus), vout)?;
                let tap = b.pin(l2, PinRole::Minus);
                b.capacitor(tap, vss)?;
            }
        }
        ConverterConfig::Dickson { stages, mos_diode } => {
            // Classic Dickson ladder: diode chain from VDD to VOUT with
            // flying caps pumped by alternating clock phases.
            let mut prev: Node = vdd;
            for s in 0..*stages {
                // Stage node anchored at the flying cap's top plate.
                let cf = b.add(DeviceKind::Capacitor);
                let top = b.pin(cf, PinRole::Plus);
                let phase = if s % 2 == 0 { clk } else { clk2 };
                b.wire(b.pin(cf, PinRole::Minus), phase)?;
                if *mos_diode {
                    let m = b.add(DeviceKind::Nmos);
                    b.wire(b.pin(m, PinRole::Gate), prev)?;
                    b.wire(b.pin(m, PinRole::Drain), prev)?;
                    b.wire(b.pin(m, PinRole::Source), top)?;
                    b.wire(b.pin(m, PinRole::Bulk), vss)?;
                } else {
                    b.diode(prev, top)?;
                }
                prev = top;
            }
            // Output diode and reservoir cap.
            if *mos_diode {
                let m = b.add(DeviceKind::Nmos);
                b.wire(b.pin(m, PinRole::Gate), prev)?;
                b.wire(b.pin(m, PinRole::Drain), prev)?;
                b.wire(b.pin(m, PinRole::Source), vout)?;
                b.wire(b.pin(m, PinRole::Bulk), vss)?;
            } else {
                b.diode(prev, vout)?;
            }
            b.capacitor(vout, vss)?;
        }
        ConverterConfig::CrossCoupled { filtered } => {
            // Cross-coupled NMOS doubler: two pump caps driven by opposite
            // phases, NMOS pair steering charge into the output through
            // PMOS pass devices.
            let c1 = b.add(DeviceKind::Capacitor);
            let n1 = b.pin(c1, PinRole::Plus);
            b.wire(b.pin(c1, PinRole::Minus), clk)?;
            let c2 = b.add(DeviceKind::Capacitor);
            let n2 = b.pin(c2, PinRole::Plus);
            b.wire(b.pin(c2, PinRole::Minus), clk2)?;
            // NMOS cross pair charges the caps from VDD.
            let m1 = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m1, PinRole::Gate), n2)?;
            b.wire(b.pin(m1, PinRole::Drain), vdd)?;
            b.wire(b.pin(m1, PinRole::Source), n1)?;
            b.wire(b.pin(m1, PinRole::Bulk), vss)?;
            let m2 = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m2, PinRole::Gate), n1)?;
            b.wire(b.pin(m2, PinRole::Drain), vdd)?;
            b.wire(b.pin(m2, PinRole::Source), n2)?;
            b.wire(b.pin(m2, PinRole::Bulk), vss)?;
            // PMOS cross pair delivers to the output.
            let p1 = b.add(DeviceKind::Pmos);
            b.wire(b.pin(p1, PinRole::Gate), n2)?;
            b.wire(b.pin(p1, PinRole::Source), n1)?;
            b.wire(b.pin(p1, PinRole::Drain), vout)?;
            b.wire(b.pin(p1, PinRole::Bulk), vdd)?;
            let p2 = b.add(DeviceKind::Pmos);
            b.wire(b.pin(p2, PinRole::Gate), n1)?;
            b.wire(b.pin(p2, PinRole::Source), n2)?;
            b.wire(b.pin(p2, PinRole::Drain), vout)?;
            b.wire(b.pin(p2, PinRole::Bulk), vdd)?;
            if *filtered {
                b.capacitor(vout, vss)?;
            } else {
                b.resistor(vout, vss)?;
            }
        }
    }

    b.build()
}

/// Generate all power-converter variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 3 * 2 * 2 * 2 * 2 * 2 + 6 + 2);
    }

    #[test]
    fn diode_buck_valid() {
        let c = ConverterConfig::Inductive {
            kind: InductiveKind::Buck,
            sync_rect: false,
            pmos_switch: true,
            lc2: false,
            buffered_gate: false,
            snubber: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn dickson_valid() {
        let c = ConverterConfig::Dickson {
            stages: 2,
            mos_diode: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn majority_valid() {
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        assert!(valid * 10 >= all.len() * 7, "{valid}/{}", all.len());
    }
}
