//! Low-noise amplifier family generator.
//!
//! Narrow-band CMOS LNA idioms: inductively-degenerated common-source,
//! common-gate, and cascode topologies with LC-tank/resistive/inductive
//! loads and simple input matching networks.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

/// Core amplifier topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LnaCore {
    /// Common-source with inductive source degeneration.
    CsInductiveDegen,
    /// Common-gate input stage.
    CommonGate,
    /// Cascode common-source.
    CascodeCs,
}

/// Drain load style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LnaLoad {
    /// Parallel LC tank.
    Tank,
    /// Plain resistor.
    Resistor,
    /// Inductor only (shunt-peaked).
    Inductor,
}

/// Input matching network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMatch {
    /// Direct connection.
    None,
    /// Series gate inductor.
    SeriesL,
    /// L-section (series L, shunt C).
    LSection,
}

/// One point in the LNA design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LnaConfig {
    /// Core topology.
    pub core: LnaCore,
    /// Load style.
    pub load: LnaLoad,
    /// Input match.
    pub input_match: InputMatch,
    /// AC-couple the output through a capacitor.
    pub output_coupled: bool,
    /// Gate bias from a resistor ladder (`true`) or direct `VB` port.
    pub resistor_bias: bool,
    /// Resistive shunt feedback from drain to gate (wideband trick).
    pub shunt_feedback: bool,
}

impl LnaConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "lna/{:?}/{:?}/{:?}{}{}",
            self.core,
            self.load,
            self.input_match,
            if self.output_coupled { "+accouple" } else { "" },
            if self.resistor_bias { "+rbias" } else { "" },
        ) + if self.shunt_feedback { "+sfb" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<LnaConfig> {
    let mut out = Vec::new();
    for core in [
        LnaCore::CsInductiveDegen,
        LnaCore::CommonGate,
        LnaCore::CascodeCs,
    ] {
        for load in [LnaLoad::Tank, LnaLoad::Resistor, LnaLoad::Inductor] {
            for input_match in [InputMatch::None, InputMatch::SeriesL, InputMatch::LSection] {
                for output_coupled in [false, true] {
                    for resistor_bias in [false, true] {
                        for shunt_feedback in [false, true] {
                            out.push(LnaConfig {
                                core,
                                load,
                                input_match,
                                output_coupled,
                                resistor_bias,
                                shunt_feedback,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &LnaConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let vin: Node = CircuitPin::Vin(1).into();
    let vout: Node = CircuitPin::Vout(1).into();

    // Input matching chain ends at `gate_in`.
    let gate_in: Node = match config.input_match {
        InputMatch::None => vin,
        InputMatch::SeriesL => {
            let l = b.add(DeviceKind::Inductor);
            b.wire(b.pin(l, PinRole::Plus), vin)?;
            b.pin(l, PinRole::Minus)
        }
        InputMatch::LSection => {
            let l = b.add(DeviceKind::Inductor);
            b.wire(b.pin(l, PinRole::Plus), vin)?;
            let mid = b.pin(l, PinRole::Minus);
            b.capacitor(mid, vss)?;
            mid
        }
    };

    // Gate bias network keeps the input stage conducting.
    let bias_node: Node = if config.resistor_bias {
        // VDD -R- bias -R- VSS ladder, tapped onto the gate through R.
        let r1 = b.add(DeviceKind::Resistor);
        b.wire(b.pin(r1, PinRole::Plus), vdd)?;
        let tap = b.pin(r1, PinRole::Minus);
        b.resistor(tap, vss)?;
        tap
    } else {
        CircuitPin::Vbias(1).into()
    };

    // Core transistor(s); `drain_net` is the load node.
    let drain_net: Node = match config.core {
        LnaCore::CsInductiveDegen => {
            let m = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m, PinRole::Gate), gate_in)?;
            b.wire(b.pin(m, PinRole::Bulk), vss)?;
            // Source degeneration inductor to ground.
            let ls = b.add(DeviceKind::Inductor);
            b.wire(b.pin(ls, PinRole::Plus), b.pin(m, PinRole::Source))?;
            b.wire(b.pin(ls, PinRole::Minus), vss)?;
            // Bias the gate through a resistor.
            b.resistor(gate_in, bias_node)?;
            b.pin(m, PinRole::Drain)
        }
        LnaCore::CommonGate => {
            let m = b.add(DeviceKind::Nmos);
            // Signal enters the source; gate sits at the bias.
            b.wire(b.pin(m, PinRole::Source), gate_in)?;
            b.wire(b.pin(m, PinRole::Gate), bias_node)?;
            b.wire(b.pin(m, PinRole::Bulk), vss)?;
            // Source bias current path to ground.
            let lb = b.add(DeviceKind::Inductor);
            b.wire(b.pin(lb, PinRole::Plus), gate_in)?;
            b.wire(b.pin(lb, PinRole::Minus), vss)?;
            b.pin(m, PinRole::Drain)
        }
        LnaCore::CascodeCs => {
            let m = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m, PinRole::Gate), gate_in)?;
            b.wire(b.pin(m, PinRole::Source), vss)?;
            b.wire(b.pin(m, PinRole::Bulk), vss)?;
            b.resistor(gate_in, bias_node)?;
            let c = b.add(DeviceKind::Nmos);
            b.wire(b.pin(c, PinRole::Source), b.pin(m, PinRole::Drain))?;
            b.wire(b.pin(c, PinRole::Gate), CircuitPin::Vbias(2))?;
            b.wire(b.pin(c, PinRole::Bulk), vss)?;
            b.pin(c, PinRole::Drain)
        }
    };

    // Load.
    match config.load {
        LnaLoad::Tank => {
            b.inductor(vdd, drain_net)?;
            b.capacitor(vdd, drain_net)?;
        }
        LnaLoad::Resistor => {
            b.resistor(vdd, drain_net)?;
        }
        LnaLoad::Inductor => {
            b.inductor(vdd, drain_net)?;
        }
    }

    if config.shunt_feedback {
        b.resistor(drain_net, gate_in)?;
    }

    // Output.
    if config.output_coupled {
        b.capacitor(drain_net, vout)?;
        // Give the coupled output a DC path so it is not floating.
        b.resistor(vout, vss)?;
    } else {
        b.wire(drain_net, vout)?;
    }

    b.build()
}

/// Generate all LNA variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 3 * 3 * 3 * 2 * 2 * 2);
    }

    #[test]
    fn cascode_tank_lna_valid() {
        let c = LnaConfig {
            core: LnaCore::CascodeCs,
            load: LnaLoad::Tank,
            input_match: InputMatch::LSection,
            output_coupled: true,
            resistor_bias: false,
            shunt_feedback: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn majority_valid() {
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        assert!(valid * 10 >= all.len() * 7, "{valid}/{}", all.len());
    }

    #[test]
    fn uses_inductors() {
        let c = LnaConfig {
            core: LnaCore::CsInductiveDegen,
            load: LnaLoad::Tank,
            input_match: InputMatch::SeriesL,
            output_coupled: false,
            resistor_bias: true,
            shunt_feedback: false,
        };
        let t = build(&c).unwrap();
        let h = t.device_histogram();
        assert!(h[&DeviceKind::Inductor] >= 3, "{h:?}");
    }
}
