//! Switched-capacitor sampler family generator.
//!
//! Track-and-hold front-ends: NMOS / PMOS / transmission-gate sampling
//! switches onto a hold capacitor, with optional bottom-plate sampling,
//! double sampling, dummy switch charge-injection cancellation, and an
//! output buffer.

use eva_circuit::{CircuitError, CircuitPin, DeviceKind, Node, PinRole, Topology, TopologyBuilder};

/// Sampling-switch style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchStyle {
    /// Single NMOS switch.
    Nmos,
    /// Single PMOS switch.
    Pmos,
    /// Complementary transmission gate.
    TGate,
}

/// One point in the SC-sampler design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScSamplerConfig {
    /// Switch style.
    pub switch: SwitchStyle,
    /// Bottom-plate sampling (extra switch on the cap's bottom plate).
    pub bottom_plate: bool,
    /// Double sampling (two interleaved branches on opposite phases).
    pub double: bool,
    /// Source-follower output buffer.
    pub buffer: bool,
    /// Dummy (half-size) switch for charge-injection cancellation.
    pub dummy: bool,
    /// Series resistor at the signal input (anti-alias / isolation).
    pub input_r: bool,
}

impl ScSamplerConfig {
    /// Human-readable variant tag.
    pub fn tag(&self) -> String {
        format!(
            "sc/{:?}{}{}{}{}",
            self.switch,
            if self.bottom_plate { "+bp" } else { "" },
            if self.double { "+2x" } else { "" },
            if self.buffer { "+buf" } else { "" },
            if self.dummy { "+dummy" } else { "" },
        ) + if self.input_r { "+rin" } else { "" }
    }
}

/// Enumerate the config space.
pub fn configs() -> Vec<ScSamplerConfig> {
    let mut out = Vec::new();
    for switch in [SwitchStyle::Nmos, SwitchStyle::Pmos, SwitchStyle::TGate] {
        for bottom_plate in [false, true] {
            for double in [false, true] {
                for buffer in [false, true] {
                    for dummy in [false, true] {
                        for input_r in [false, true] {
                            out.push(ScSamplerConfig {
                                switch,
                                bottom_plate,
                                double,
                                buffer,
                                dummy,
                                input_r,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Add one sampling branch from `vin` to a hold node; returns the hold
/// node. `phase`/`phase_bar` gate the switches.
fn branch(
    b: &mut TopologyBuilder,
    config: &ScSamplerConfig,
    vin: Node,
    phase: Node,
    phase_bar: Node,
) -> Result<Node, CircuitError> {
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;

    // Hold cap anchors the hold node.
    let ch = b.add(DeviceKind::Capacitor);
    let hold = b.pin(ch, PinRole::Plus);
    let bottom = b.pin(ch, PinRole::Minus);

    // Main switch.
    match config.switch {
        SwitchStyle::Nmos => {
            let m = b.add(DeviceKind::Nmos);
            b.wire(b.pin(m, PinRole::Gate), phase)?;
            b.wire(b.pin(m, PinRole::Drain), vin)?;
            b.wire(b.pin(m, PinRole::Source), hold)?;
            b.wire(b.pin(m, PinRole::Bulk), vss)?;
        }
        SwitchStyle::Pmos => {
            let m = b.add(DeviceKind::Pmos);
            b.wire(b.pin(m, PinRole::Gate), phase_bar)?;
            b.wire(b.pin(m, PinRole::Drain), vin)?;
            b.wire(b.pin(m, PinRole::Source), hold)?;
            b.wire(b.pin(m, PinRole::Bulk), vdd)?;
        }
        SwitchStyle::TGate => {
            let mn = b.add(DeviceKind::Nmos);
            b.wire(b.pin(mn, PinRole::Gate), phase)?;
            b.wire(b.pin(mn, PinRole::Drain), vin)?;
            b.wire(b.pin(mn, PinRole::Source), hold)?;
            b.wire(b.pin(mn, PinRole::Bulk), vss)?;
            let mp = b.add(DeviceKind::Pmos);
            b.wire(b.pin(mp, PinRole::Gate), phase_bar)?;
            b.wire(b.pin(mp, PinRole::Drain), vin)?;
            b.wire(b.pin(mp, PinRole::Source), hold)?;
            b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
        }
    }

    // Dummy switch (drain and source both on the hold node is a same-device
    // net, so wire it as a separate half-switch to the input instead).
    if config.dummy {
        let m = b.add(DeviceKind::Nmos);
        b.wire(b.pin(m, PinRole::Gate), phase_bar)?;
        b.wire(b.pin(m, PinRole::Drain), hold)?;
        b.wire(b.pin(m, PinRole::Source), vin)?;
        b.wire(b.pin(m, PinRole::Bulk), vss)?;
    }

    // Bottom plate: switched to ground on the sampling phase; otherwise
    // grounded directly.
    if config.bottom_plate {
        let m = b.add(DeviceKind::Nmos);
        b.wire(b.pin(m, PinRole::Gate), phase)?;
        b.wire(b.pin(m, PinRole::Drain), bottom)?;
        b.wire(b.pin(m, PinRole::Source), vss)?;
        b.wire(b.pin(m, PinRole::Bulk), vss)?;
    } else {
        b.wire(bottom, vss)?;
    }

    Ok(hold)
}

/// Build the topology for one configuration.
///
/// # Errors
///
/// Propagates [`CircuitError`] from wiring.
pub fn build(config: &ScSamplerConfig) -> Result<Topology, CircuitError> {
    let mut b = TopologyBuilder::new();
    let vdd: Node = CircuitPin::Vdd.into();
    let vss: Node = Node::VSS;
    let vin: Node = CircuitPin::Vin(1).into();
    let clk: Node = CircuitPin::Clk(1).into();
    let clk_bar: Node = CircuitPin::Clk(2).into();

    let vin: Node = if config.input_r {
        let r = b.add(DeviceKind::Resistor);
        b.wire(b.pin(r, PinRole::Plus), vin)?;
        b.pin(r, PinRole::Minus)
    } else {
        vin
    };
    let hold1 = branch(&mut b, config, vin, clk, clk_bar)?;
    let out_net: Node = if config.double {
        // Second branch on the opposite phase; outputs joined through
        // select switches onto a common output node.
        let hold2 = branch(&mut b, config, vin, clk_bar, clk)?;
        let s1 = b.add(DeviceKind::Nmos);
        b.wire(b.pin(s1, PinRole::Gate), clk_bar)?;
        b.wire(b.pin(s1, PinRole::Drain), hold1)?;
        b.wire(b.pin(s1, PinRole::Bulk), vss)?;
        let joined = b.pin(s1, PinRole::Source);
        let s2 = b.add(DeviceKind::Nmos);
        b.wire(b.pin(s2, PinRole::Gate), clk)?;
        b.wire(b.pin(s2, PinRole::Drain), hold2)?;
        b.wire(b.pin(s2, PinRole::Source), joined)?;
        b.wire(b.pin(s2, PinRole::Bulk), vss)?;
        joined
    } else {
        hold1
    };

    if config.buffer {
        let sf = b.add(DeviceKind::Nmos);
        b.wire(b.pin(sf, PinRole::Gate), out_net)?;
        b.wire(b.pin(sf, PinRole::Drain), vdd)?;
        b.wire(b.pin(sf, PinRole::Bulk), vss)?;
        b.wire(b.pin(sf, PinRole::Source), CircuitPin::Vout(1))?;
        b.resistor(CircuitPin::Vout(1), vss)?;
    } else {
        b.wire(out_net, CircuitPin::Vout(1))?;
    }

    b.build()
}

/// Generate all SC-sampler variants as `(topology, tag)` pairs.
pub fn generate() -> Vec<(Topology, String)> {
    configs()
        .into_iter()
        .filter_map(|c| build(&c).ok().map(|t| (t, c.tag())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_spice::check_validity;

    #[test]
    fn space_size() {
        assert_eq!(configs().len(), 3 * 2 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn nmos_track_and_hold_valid() {
        let c = ScSamplerConfig {
            switch: SwitchStyle::Nmos,
            bottom_plate: false,
            double: false,
            buffer: true,
            dummy: false,
            input_r: false,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn tgate_double_sampler_valid() {
        let c = ScSamplerConfig {
            switch: SwitchStyle::TGate,
            bottom_plate: true,
            double: true,
            buffer: true,
            dummy: true,
            input_r: true,
        };
        let t = build(&c).unwrap();
        let r = check_validity(&t);
        assert!(r.is_valid(), "{:?}", r.reasons());
    }

    #[test]
    fn majority_valid() {
        let all = generate();
        let valid = all
            .iter()
            .filter(|(t, _)| check_validity(t).is_valid())
            .count();
        assert!(valid * 10 >= all.len() * 7, "{valid}/{}", all.len());
    }
}
