//! Corpus assembly: generation, decoration, deduplication, validity
//! filtering, and the train/validation split.

use std::collections::BTreeMap;

use eva_circuit::{CircuitPin, Node, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::families::generate_family;
use crate::types::{CircuitType, DatasetEntry};

/// Options controlling corpus assembly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusOptions {
    /// Maximum number of entries to keep (the paper's corpus has 3,470).
    pub target_size: usize,
    /// Also emit a decorated twin of each variant with a supply decoupling
    /// capacitor — a realistic, electrically meaningful structural axis
    /// that roughly doubles the raw pool.
    pub decorate: bool,
    /// Drop entries that fail the `eva-spice` validity oracle.
    pub validate: bool,
    /// Restrict generation to these families (all 11 when `None`).
    pub families: Option<Vec<CircuitType>>,
}

impl Default for CorpusOptions {
    fn default() -> CorpusOptions {
        CorpusOptions {
            target_size: 3470,
            decorate: true,
            validate: true,
            families: None,
        }
    }
}

impl CorpusOptions {
    /// A reduced corpus for fast tests and CPU-scale experiments.
    pub fn small(target_size: usize) -> CorpusOptions {
        CorpusOptions {
            target_size,
            ..CorpusOptions::default()
        }
    }
}

/// The assembled topology corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    entries: Vec<DatasetEntry>,
}

impl Corpus {
    /// Assemble a corpus per the options. Deterministic for fixed options.
    pub fn build(options: &CorpusOptions) -> Corpus {
        let families: Vec<CircuitType> = options
            .families
            .clone()
            .unwrap_or_else(|| CircuitType::ALL.to_vec());

        let mut raw: Vec<DatasetEntry> = Vec::new();
        for ty in families {
            for (topology, variant) in generate_family(ty) {
                if options.decorate {
                    if let Some(decorated) = with_decap(&topology) {
                        raw.push(DatasetEntry {
                            topology: decorated,
                            circuit_type: ty,
                            variant: format!("{variant}+decap"),
                        });
                    }
                }
                raw.push(DatasetEntry {
                    topology,
                    circuit_type: ty,
                    variant,
                });
            }
        }

        // Deduplicate by canonical hash (renumbering/realization invariant).
        let mut seen: BTreeMap<u64, ()> = BTreeMap::new();
        raw.retain(|e| seen.insert(e.topology.canonical_hash(), ()).is_none());

        if options.validate {
            raw.retain(|e| eva_spice::check_validity(&e.topology).is_valid());
        }

        // Deterministic pseudo-shuffle (sort by hash) and truncate, but keep
        // at least the paper's minimum of 30 per type where available.
        raw.sort_by_key(|e| e.topology.canonical_hash());
        if raw.len() > options.target_size {
            let mut kept: Vec<DatasetEntry> = Vec::with_capacity(options.target_size);
            let mut per_type: BTreeMap<CircuitType, usize> = BTreeMap::new();
            // First pass: ensure up to 30 of each type.
            let mut rest: Vec<DatasetEntry> = Vec::new();
            for e in raw {
                let c = per_type.entry(e.circuit_type).or_insert(0);
                if *c < 30 {
                    *c += 1;
                    kept.push(e);
                } else {
                    rest.push(e);
                }
            }
            for e in rest {
                if kept.len() >= options.target_size {
                    break;
                }
                kept.push(e);
            }
            kept.truncate(options.target_size);
            Corpus { entries: kept }
        } else {
            Corpus { entries: raw }
        }
    }

    /// The entries.
    pub fn entries(&self) -> &[DatasetEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one family.
    pub fn of_type(&self, ty: CircuitType) -> Vec<&DatasetEntry> {
        self.entries
            .iter()
            .filter(|e| e.circuit_type == ty)
            .collect()
    }

    /// Count per family.
    pub fn type_histogram(&self) -> BTreeMap<CircuitType, usize> {
        let mut h = BTreeMap::new();
        for e in &self.entries {
            *h.entry(e.circuit_type).or_insert(0) += 1;
        }
        h
    }

    /// The canonical hashes of all entries (for novelty checks).
    pub fn hashes(&self) -> std::collections::BTreeSet<u64> {
        self.entries
            .iter()
            .map(|e| e.topology.canonical_hash())
            .collect()
    }

    /// Random train/validation split: validation gets `1/ratio` of the
    /// entries (the paper uses 9:1, i.e. `ratio = 10`).
    ///
    /// # Panics
    ///
    /// Panics if `ratio < 2`.
    pub fn split<R: Rng + ?Sized>(
        &self,
        ratio: usize,
        rng: &mut R,
    ) -> (Vec<DatasetEntry>, Vec<DatasetEntry>) {
        assert!(ratio >= 2, "ratio must leave something in both halves");
        let mut shuffled: Vec<DatasetEntry> = self.entries.clone();
        shuffled.shuffle(rng);
        let n_val = (shuffled.len() / ratio)
            .max(1)
            .min(shuffled.len().saturating_sub(1));
        let train = shuffled.split_off(n_val);
        (train, shuffled)
    }
}

/// A decorated twin with a supply decoupling capacitor, if the original has
/// both rails.
fn with_decap(topology: &Topology) -> Option<Topology> {
    let vdd = Node::Circuit(CircuitPin::Vdd);
    if !topology.contains_node(vdd) || !topology.contains_node(Node::VSS) {
        return None;
    }
    // Append the cap as a fresh capacitor instance numbered after existing.
    let existing = topology
        .devices()
        .into_iter()
        .filter(|d| d.kind == eva_circuit::DeviceKind::Capacitor)
        .map(|d| d.ordinal)
        .max()
        .unwrap_or(0);
    let cap = eva_circuit::Device::new(eva_circuit::DeviceKind::Capacitor, existing + 1);
    let mut edges: Vec<(Node, Node)> = topology.edges().to_vec();
    edges.push((Node::pin(cap, eva_circuit::PinRole::Plus), vdd));
    edges.push((Node::pin(cap, eva_circuit::PinRole::Minus), Node::VSS));
    Topology::from_edges(edges).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_corpus() -> Corpus {
        Corpus::build(&CorpusOptions {
            target_size: 300,
            decorate: false,
            validate: false,
            families: Some(vec![CircuitType::Ldo, CircuitType::Bandgap]),
        })
    }

    #[test]
    fn builds_and_dedups() {
        let c = small_corpus();
        assert!(!c.is_empty());
        let hashes = c.hashes();
        assert_eq!(hashes.len(), c.len(), "no duplicate structures");
    }

    #[test]
    fn decoration_roughly_doubles() {
        let plain = Corpus::build(&CorpusOptions {
            target_size: 10_000,
            decorate: false,
            validate: false,
            families: Some(vec![CircuitType::Bandgap]),
        });
        let dec = Corpus::build(&CorpusOptions {
            target_size: 10_000,
            decorate: true,
            validate: false,
            families: Some(vec![CircuitType::Bandgap]),
        });
        assert!(
            dec.len() > plain.len() * 3 / 2,
            "{} vs {}",
            dec.len(),
            plain.len()
        );
    }

    #[test]
    fn validation_only_keeps_valid() {
        let c = Corpus::build(&CorpusOptions {
            target_size: 100,
            decorate: false,
            validate: true,
            families: Some(vec![CircuitType::Ldo]),
        });
        for e in c.entries() {
            assert!(
                eva_spice::check_validity(&e.topology).is_valid(),
                "{}",
                e.variant
            );
        }
    }

    #[test]
    fn split_is_nine_to_one() {
        let c = small_corpus();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (train, val) = c.split(10, &mut rng);
        assert_eq!(train.len() + val.len(), c.len());
        let expect_val = (c.len() / 10).max(1);
        assert_eq!(val.len(), expect_val);
    }

    #[test]
    fn type_histogram_counts() {
        let c = small_corpus();
        let h = c.type_histogram();
        assert!(h[&CircuitType::Ldo] > 0);
        assert!(h[&CircuitType::Bandgap] > 0);
        assert_eq!(h.values().sum::<usize>(), c.len());
    }

    #[test]
    #[ignore = "builds and validates the full 4,200-variant pool (~10 s)"]
    fn full_corpus_reaches_paper_size() {
        let c = Corpus::build(&CorpusOptions::default());
        assert_eq!(c.len(), 3470, "paper-sized corpus");
        let h = c.type_histogram();
        assert_eq!(h.len(), 11, "all families present");
        for (ty, n) in h {
            assert!(n >= 30, "{ty} has {n} < 30 members");
        }
        for e in c.entries() {
            assert!(
                eva_spice::check_validity(&e.topology).is_valid(),
                "{}",
                e.variant
            );
        }
    }

    #[test]
    fn truncation_respects_target() {
        let c = Corpus::build(&CorpusOptions {
            target_size: 17,
            decorate: false,
            validate: false,
            families: Some(vec![CircuitType::Bandgap, CircuitType::Ldo]),
        });
        assert_eq!(c.len(), 17);
    }
}
