//! Reusable analog sub-structures ("blocks") used by the family generators.
//!
//! Each block adds devices to a [`TopologyBuilder`] and wires them between
//! caller-supplied nodes. Internal nodes are simply pins of the created
//! devices, so blocks compose without any global node bookkeeping. All
//! blocks follow EVA's representation rule that a diode connection is
//! expressed by wiring both pins to the shared net rather than to each
//! other.

use eva_circuit::{CircuitError, DeviceId, DeviceKind, Node, PinRole, TopologyBuilder};

/// Add a MOS current mirror on `rail`.
///
/// The diode transistor's gate and drain join the `input` net; one output
/// transistor per entry in `outputs` mirrors the current to that node.
/// Returns `(diode, outputs)` device ids.
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn mos_mirror(
    b: &mut TopologyBuilder,
    kind: DeviceKind,
    rail: Node,
    input: Node,
    outputs: &[Node],
) -> Result<(DeviceId, Vec<DeviceId>), CircuitError> {
    let diode = b.add(kind);
    b.wire(b.pin(diode, PinRole::Gate), input)?;
    b.wire(b.pin(diode, PinRole::Drain), input)?;
    b.wire(b.pin(diode, PinRole::Source), rail)?;
    b.wire(b.pin(diode, PinRole::Bulk), rail)?;
    let mut outs = Vec::with_capacity(outputs.len());
    for &out in outputs {
        let m = b.add(kind);
        b.wire(b.pin(m, PinRole::Gate), input)?;
        b.wire(b.pin(m, PinRole::Drain), out)?;
        b.wire(b.pin(m, PinRole::Source), rail)?;
        b.wire(b.pin(m, PinRole::Bulk), rail)?;
        outs.push(m);
    }
    Ok((diode, outs))
}

/// Add a differential pair of `kind` with gates on `in_p`/`in_n`, sources
/// joined on `tail`, bulks on `bulk_rail`. Returns the two drain pins
/// `(d_p, d_n)` (drain of the `in_p` device first).
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn diff_pair(
    b: &mut TopologyBuilder,
    kind: DeviceKind,
    in_p: Node,
    in_n: Node,
    tail: Node,
    bulk_rail: Node,
) -> Result<(Node, Node), CircuitError> {
    let m1 = b.add(kind);
    let m2 = b.add(kind);
    b.wire(b.pin(m1, PinRole::Gate), in_p)?;
    b.wire(b.pin(m2, PinRole::Gate), in_n)?;
    b.wire(b.pin(m1, PinRole::Source), tail)?;
    b.wire(b.pin(m2, PinRole::Source), tail)?;
    b.wire(b.pin(m1, PinRole::Bulk), bulk_rail)?;
    b.wire(b.pin(m2, PinRole::Bulk), bulk_rail)?;
    Ok((b.pin(m1, PinRole::Drain), b.pin(m2, PinRole::Drain)))
}

/// Add a cascode transistor: source on `input`, gate on `bias`, bulk on
/// `bulk_rail`. Returns its drain pin.
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn cascode(
    b: &mut TopologyBuilder,
    kind: DeviceKind,
    input: Node,
    bias: Node,
    bulk_rail: Node,
) -> Result<Node, CircuitError> {
    let m = b.add(kind);
    b.wire(b.pin(m, PinRole::Source), input)?;
    b.wire(b.pin(m, PinRole::Gate), bias)?;
    b.wire(b.pin(m, PinRole::Bulk), bulk_rail)?;
    Ok(b.pin(m, PinRole::Drain))
}

/// Add a common-source gain transistor: gate on `input`, drain on `output`,
/// source and bulk on `rail`.
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn common_source(
    b: &mut TopologyBuilder,
    kind: DeviceKind,
    input: Node,
    output: Node,
    rail: Node,
) -> Result<DeviceId, CircuitError> {
    let m = b.add(kind);
    b.wire(b.pin(m, PinRole::Gate), input)?;
    b.wire(b.pin(m, PinRole::Drain), output)?;
    b.wire(b.pin(m, PinRole::Source), rail)?;
    b.wire(b.pin(m, PinRole::Bulk), rail)?;
    Ok(m)
}

/// Add a source follower: gate on `input`, source on `output` (the
/// follower's output), drain and bulk on `rail`.
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn source_follower(
    b: &mut TopologyBuilder,
    kind: DeviceKind,
    input: Node,
    output: Node,
    rail: Node,
) -> Result<DeviceId, CircuitError> {
    let m = b.add(kind);
    b.wire(b.pin(m, PinRole::Gate), input)?;
    b.wire(b.pin(m, PinRole::Source), output)?;
    b.wire(b.pin(m, PinRole::Drain), rail)?;
    b.wire(b.pin(m, PinRole::Bulk), rail)?;
    Ok(m)
}

/// Add a CMOS inverter between `vdd`/`vss` with the given input and output
/// nets.
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn inverter(
    b: &mut TopologyBuilder,
    input: Node,
    output: Node,
    vdd: Node,
    vss: Node,
) -> Result<(), CircuitError> {
    common_source(b, DeviceKind::Pmos, input, output, vdd)?;
    common_source(b, DeviceKind::Nmos, input, output, vss)?;
    Ok(())
}

/// Add a CMOS transmission gate between `a` and `b_node`, gated by `clk`
/// (NMOS gate) and `clk_bar` (PMOS gate).
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn transmission_gate(
    b: &mut TopologyBuilder,
    a: Node,
    b_node: Node,
    clk: Node,
    clk_bar: Node,
    vdd: Node,
    vss: Node,
) -> Result<(), CircuitError> {
    let mn = b.add(DeviceKind::Nmos);
    b.wire(b.pin(mn, PinRole::Gate), clk)?;
    b.wire(b.pin(mn, PinRole::Drain), a)?;
    b.wire(b.pin(mn, PinRole::Source), b_node)?;
    b.wire(b.pin(mn, PinRole::Bulk), vss)?;
    let mp = b.add(DeviceKind::Pmos);
    b.wire(b.pin(mp, PinRole::Gate), clk_bar)?;
    b.wire(b.pin(mp, PinRole::Drain), a)?;
    b.wire(b.pin(mp, PinRole::Source), b_node)?;
    b.wire(b.pin(mp, PinRole::Bulk), vdd)?;
    Ok(())
}

/// Add a series resistor between two nodes, returning its id.
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn series_r(b: &mut TopologyBuilder, a: Node, c: Node) -> Result<DeviceId, CircuitError> {
    b.resistor(a, c)
}

/// Add a first-order RC low-pass between `input` and `output` with the
/// capacitor to `gnd`.
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn rc_lowpass(
    b: &mut TopologyBuilder,
    input: Node,
    output: Node,
    gnd: Node,
) -> Result<(), CircuitError> {
    b.resistor(input, output)?;
    b.capacitor(output, gnd)?;
    Ok(())
}

/// Add an LC tank from `node` to `rail` (parallel L and C).
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn lc_tank(b: &mut TopologyBuilder, node: Node, rail: Node) -> Result<(), CircuitError> {
    b.inductor(node, rail)?;
    b.capacitor(node, rail)?;
    Ok(())
}

/// Add a resistor-programmed bias generator: a resistor from `vdd` into a
/// diode-connected transistor on `rail`, producing a bias net. Returns the
/// bias net's anchor node (the resistor's low pin).
///
/// # Errors
///
/// Propagates wiring errors from the builder.
pub fn resistor_bias(
    b: &mut TopologyBuilder,
    kind: DeviceKind,
    vdd: Node,
    rail: Node,
) -> Result<Node, CircuitError> {
    let r = b.add(DeviceKind::Resistor);
    b.wire(b.pin(r, PinRole::Plus), vdd)?;
    let bias_net = b.pin(r, PinRole::Minus);
    let m = b.add(kind);
    b.wire(b.pin(m, PinRole::Gate), bias_net)?;
    b.wire(b.pin(m, PinRole::Drain), bias_net)?;
    b.wire(b.pin(m, PinRole::Source), rail)?;
    b.wire(b.pin(m, PinRole::Bulk), rail)?;
    Ok(bias_net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_circuit::CircuitPin;
    use eva_spice::check_validity;

    fn n(p: CircuitPin) -> Node {
        Node::Circuit(p)
    }

    #[test]
    fn mirror_shares_gate_net() {
        let mut b = TopologyBuilder::new();
        let input = n(CircuitPin::Vbias(1));
        let (diode, outs) = mos_mirror(
            &mut b,
            DeviceKind::Nmos,
            Node::VSS,
            input,
            &[n(CircuitPin::Vout(1))],
        )
        .unwrap();
        let t = b.build().unwrap();
        // Diode gate, diode drain, output gate and VB1 in one net.
        let net = t
            .nets()
            .into_iter()
            .find(|net| net.contains(&input))
            .unwrap();
        assert_eq!(net.len(), 4, "{net:?}");
        let _ = (diode, outs);
    }

    #[test]
    fn five_transistor_ota_from_blocks_is_valid() {
        let mut b = TopologyBuilder::new();
        // Tail current source transistor.
        let tail_dev = b.add(DeviceKind::Nmos);
        b.wire(b.pin(tail_dev, PinRole::Gate), n(CircuitPin::Vbias(1)))
            .unwrap();
        b.wire(b.pin(tail_dev, PinRole::Source), Node::VSS).unwrap();
        b.wire(b.pin(tail_dev, PinRole::Bulk), Node::VSS).unwrap();
        let tail = b.pin(tail_dev, PinRole::Drain);
        let (dp, dn) = diff_pair(
            &mut b,
            DeviceKind::Nmos,
            n(CircuitPin::Vin(1)),
            n(CircuitPin::Vin(2)),
            tail,
            Node::VSS,
        )
        .unwrap();
        // PMOS mirror load: diode side on dp, output side on dn.
        mos_mirror(&mut b, DeviceKind::Pmos, n(CircuitPin::Vdd), dp, &[dn]).unwrap();
        b.wire(dn, n(CircuitPin::Vout(1))).unwrap();
        let t = b.build().unwrap();
        let report = check_validity(&t);
        assert!(report.is_valid(), "{:?}", report.reasons());
        assert_eq!(t.device_count(), 5);
    }

    #[test]
    fn inverter_is_valid_circuit() {
        let mut b = TopologyBuilder::new();
        inverter(
            &mut b,
            n(CircuitPin::Vin(1)),
            n(CircuitPin::Vout(1)),
            n(CircuitPin::Vdd),
            Node::VSS,
        )
        .unwrap();
        let t = b.build().unwrap();
        assert!(check_validity(&t).is_valid());
    }

    #[test]
    fn transmission_gate_wires_both_devices() {
        let mut b = TopologyBuilder::new();
        transmission_gate(
            &mut b,
            n(CircuitPin::Vin(1)),
            n(CircuitPin::Vout(1)),
            n(CircuitPin::Clk(1)),
            n(CircuitPin::Clk(2)),
            n(CircuitPin::Vdd),
            Node::VSS,
        )
        .unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.device_count(), 2);
    }

    #[test]
    fn resistor_bias_creates_diode_net() {
        let mut b = TopologyBuilder::new();
        let bias = resistor_bias(&mut b, DeviceKind::Nmos, n(CircuitPin::Vdd), Node::VSS).unwrap();
        // Use the bias to gate another device so the circuit is closed.
        common_source(
            &mut b,
            DeviceKind::Nmos,
            bias,
            n(CircuitPin::Vout(1)),
            Node::VSS,
        )
        .unwrap();
        b.resistor(n(CircuitPin::Vdd), n(CircuitPin::Vout(1)))
            .unwrap();
        let t = b.build().unwrap();
        assert!(
            check_validity(&t).is_valid(),
            "{:?}",
            check_validity(&t).reasons()
        );
    }

    #[test]
    fn cascode_stacks() {
        let mut b = TopologyBuilder::new();
        let cs = common_source(
            &mut b,
            DeviceKind::Nmos,
            n(CircuitPin::Vin(1)),
            // Drain goes to the cascode source; use the cascode's own pin.
            n(CircuitPin::Ctrl(1)),
            Node::VSS,
        )
        .unwrap();
        let _ = cs;
        let out = cascode(
            &mut b,
            DeviceKind::Nmos,
            n(CircuitPin::Ctrl(1)),
            n(CircuitPin::Vbias(1)),
            Node::VSS,
        )
        .unwrap();
        b.wire(out, n(CircuitPin::Vout(1))).unwrap();
        b.resistor(n(CircuitPin::Vdd), n(CircuitPin::Vout(1)))
            .unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.device_count(), 3);
    }
}
