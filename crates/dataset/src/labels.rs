//! Performance labeling: attaching simulator FoM values to topologies.
//!
//! Section IV-A: "Each circuit's performance was assessed through circuit
//! simulation, and a corresponding label was assigned." Fine-tuning uses
//! these labels for the target family only.

use eva_circuit::Topology;
use eva_spice::{
    measure_converter_metered, measure_opamp_metered, measure_oscillator_metered, SimMeter, Sizing,
    SpiceError, Stimulus, Tech,
};

use crate::types::CircuitType;

/// Measure the figure of merit of a topology interpreted as a member of
/// `ty`, using default sizing (fast, deterministic). Returns `None` when
/// the circuit cannot be measured (invalid, no output port, solver
/// failure) — such circuits rank below every measurable one.
pub fn measure_fom(topology: &Topology, ty: CircuitType) -> Option<f64> {
    measure_fom_sized(topology, ty, &Sizing::default_for(topology))
}

/// Like [`measure_fom`] but with an explicit sizing — the GA's fitness
/// function.
pub fn measure_fom_sized(topology: &Topology, ty: CircuitType, sizing: &Sizing) -> Option<f64> {
    measure_fom_outcome(topology, ty, sizing, &SimMeter::unlimited()).ok()
}

/// Like [`measure_fom_sized`] but metered and error-preserving: the
/// simulation charges its work against `meter` (budget exhaustion and
/// cooperative aborts surface as typed [`SpiceError`]s), and every
/// failure keeps the error that caused it instead of collapsing to
/// `None` — the classified evaluation path
/// ([`eva_spice::par_evaluate_classified`]) buckets them per class.
///
/// A measurement that completes but produces a non-finite FoM is
/// reported as a numerical blowup so it, too, carries a class.
pub fn measure_fom_outcome(
    topology: &Topology,
    ty: CircuitType,
    sizing: &Sizing,
    meter: &SimMeter,
) -> Result<f64, SpiceError> {
    let sizing = sizing.clone();
    let tech = Tech::default();
    let fom = match ty {
        CircuitType::PowerConverter => {
            measure_converter_metered(topology, &sizing, &Stimulus::converter(), &tech, 0.5, meter)?
                .fom
        }
        CircuitType::ScSampler => {
            // Samplers are measured like converters (tracking accuracy):
            // settled ratio against a 0.5 target with the converter rig.
            measure_converter_metered(topology, &sizing, &Stimulus::converter(), &tech, 0.5, meter)?
                .fom
        }
        CircuitType::Vco | CircuitType::Pll => {
            // Oscillators: FoM = output frequency in MHz (0 when the
            // circuit never swings).
            measure_oscillator_metered(topology, &sizing, &Stimulus::default(), &tech, 50e6, meter)?
                / 1e6
        }
        _ => {
            // Amplifier-style measurement for all small-signal families.
            measure_opamp_metered(topology, &sizing, &Stimulus::default(), &tech, meter)?.fom
        }
    };
    if fom.is_finite() {
        Ok(fom)
    } else {
        Err(SpiceError::NumericalBlowup {
            analysis: "measure",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::opamp;

    #[test]
    fn opamp_variants_get_positive_fom() {
        // The plain five-transistor OTA must be measurable and positive.
        let c = opamp::OpampConfig {
            input_kind: eva_circuit::DeviceKind::Nmos,
            input_cascode: false,
            load: opamp::Load::Mirror,
            tail: opamp::Tail::Mos,
            second_stage: opamp::SecondStage::None,
            buffer: opamp::Buffer::None,
            internal_bias: false,
            degenerated: false,
        };
        let t = opamp::build(&c).unwrap();
        let fom = measure_fom(&t, CircuitType::OpAmp);
        assert!(fom.is_some());
        assert!(fom.unwrap() > 0.0, "{fom:?}");
    }

    #[test]
    fn unmeasurable_returns_none() {
        // A circuit without VOUT1 cannot be measured.
        let mut b = eva_circuit::TopologyBuilder::new();
        b.resistor(eva_circuit::CircuitPin::Vdd, eva_circuit::CircuitPin::Vss)
            .unwrap();
        let t = b.build().unwrap();
        assert_eq!(measure_fom(&t, CircuitType::OpAmp), None);
    }

    #[test]
    fn fom_differentiates_designs() {
        // A two-stage amplifier should not measure identically to the
        // single-stage OTA (ordering is what the rank labels need).
        let base = opamp::OpampConfig {
            input_kind: eva_circuit::DeviceKind::Nmos,
            input_cascode: false,
            load: opamp::Load::Mirror,
            tail: opamp::Tail::Mos,
            second_stage: opamp::SecondStage::None,
            buffer: opamp::Buffer::None,
            internal_bias: false,
            degenerated: false,
        };
        let two = opamp::OpampConfig {
            second_stage: opamp::SecondStage::CsMiller,
            ..base
        };
        let f1 = measure_fom(&opamp::build(&base).unwrap(), CircuitType::OpAmp).unwrap();
        let f2 = measure_fom(&opamp::build(&two).unwrap(), CircuitType::OpAmp).unwrap();
        assert_ne!(f1, f2);
    }
}
