//! # eva-dataset
//!
//! The EVA topology corpus: parametric structural generators for the same
//! 11 analog circuit families the paper's 3,470-circuit dataset covers
//! (Op-Amps, LDOs, bandgaps, comparators, PLLs, LNAs, PAs, mixers, VCOs,
//! power converters, switched-capacitor samplers), plus corpus assembly,
//! sequence expansion, and simulator-backed performance labeling.
//!
//! The paper's dataset comes from textbooks; ours comes from generators
//! that compose the same circuit idioms (documented per family in
//! `families/*`), which preserves what the experiments need: 11 labeled
//! families with ≥ 30 members each, realistic connectivity statistics, and
//! a validity/performance oracle over every member.
//!
//! ## Example
//!
//! ```
//! use eva_dataset::{Corpus, CorpusOptions, CircuitType};
//!
//! let corpus = Corpus::build(&CorpusOptions {
//!     target_size: 60,
//!     decorate: false,
//!     validate: false,
//!     families: Some(vec![CircuitType::Bandgap, CircuitType::Ldo]),
//! });
//! assert!(corpus.len() > 0);
//! assert!(corpus.type_histogram().len() == 2);
//! ```

pub mod blocks;
pub mod corpus;
pub mod families;
pub mod labels;
pub mod sequences;
pub mod types;

pub use corpus::{Corpus, CorpusOptions};
pub use labels::measure_fom;
pub use sequences::{expand, SequenceRecord};
pub use types::{CircuitType, DatasetEntry};
