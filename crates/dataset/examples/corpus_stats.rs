//! Print corpus assembly statistics (raw pool, dedup, validity, per-type).
use eva_dataset::{Corpus, CorpusOptions};

fn main() {
    let t0 = std::time::Instant::now();
    let raw = Corpus::build(&CorpusOptions {
        target_size: usize::MAX,
        decorate: true,
        validate: false,
        families: None,
    });
    println!("raw unique: {}", raw.len());
    let t1 = std::time::Instant::now();
    let valid = Corpus::build(&CorpusOptions::default());
    println!(
        "valid corpus (target 3470): {} in {:?} (+raw {:?})",
        valid.len(),
        t1.elapsed(),
        t1 - t0
    );
    for (ty, n) in valid.type_histogram() {
        println!("  {ty:>16}: {n}");
    }
}
