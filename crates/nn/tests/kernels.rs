//! Bit-identity of the threaded GEMM kernels against their serial
//! references — the contract that keeps batched/sequential decode (and
//! every training step) deterministic at any thread count.
//!
//! Every kernel × thread count {1, 2, 7} × ragged shape (m/k/n drawn from
//! {1, 3, 17, 64}) must produce bitwise-equal output, including on
//! non-zeroed destinations (the kernels accumulate) and inputs containing
//! exact zeros (the serial kernels skip them, so the threaded ones must
//! partition work, never reorder or drop per-element terms).

use eva_nn::{
    matmul_at_into_serial, matmul_at_into_with, matmul_bt_into_serial, matmul_bt_into_with,
    matmul_into_serial, matmul_into_with, matmul_kouter_into_serial, matmul_kouter_into_with,
    pool::threads_from_env, Pool,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Thread counts under test: serial bypass, smallest real pool, and a
/// deliberately odd count so ranges split unevenly.
const THREADS: [usize; 3] = [1, 2, 7];

/// Pools are expensive to spawn per proptest case; share one per count.
fn pools() -> &'static [Pool; 3] {
    static POOLS: OnceLock<[Pool; 3]> = OnceLock::new();
    POOLS.get_or_init(|| THREADS.map(Pool::new))
}

/// A dimension from the ragged set: boundary sizes around the unroll
/// widths (8-wide axpy, 4-wide bt tiles) and the range splitter.
fn dim() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 3, 17, 64])
}

/// Matrix entries: ordinary values plus exact zeros, so the zero-skip
/// paths in the serial kernels are exercised under partitioning.
fn entries(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(prop_oneof![3 => -2.0..2.0f32, 1 => Just(0.0f32)], len)
}

fn assert_bits_eq(got: &[f32], want: &[f32], label: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: out[{i}] = {g} != {w}");
    }
}

/// Shapes from the ragged set plus matching lhs/rhs/initial-out data.
type Case = ((usize, usize, usize), Vec<f32>, Vec<f32>, Vec<f32>);

fn cases(lens: fn(usize, usize, usize) -> (usize, usize, usize)) -> impl Strategy<Value = Case> {
    (dim(), dim(), dim()).prop_flat_map(move |(m, k, n)| {
        let (al, bl, ol) = lens(m, k, n);
        (Just((m, k, n)), entries(al), entries(bl), entries(ol))
    })
}

macro_rules! kernel_identity {
    ($test:ident, $serial:ident, $with:ident, $lens:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn $test(((m, k, n), a, b, init) in cases($lens)) {
                let mut reference = init.clone();
                $serial(&a, &b, &mut reference, m, k, n);
                for (&threads, pool) in THREADS.iter().zip(pools()) {
                    let mut out = init.clone();
                    $with(pool, &a, &b, &mut out, m, k, n);
                    assert_bits_eq(
                        &out,
                        &reference,
                        &format!("{} {m}x{k}x{n} @ {threads} threads", stringify!($with)),
                    );
                }
            }
        }
    };
}

kernel_identity!(
    matmul_into_is_bit_identical_threaded,
    matmul_into_serial,
    matmul_into_with,
    |m, k, n| (m * k, k * n, m * n)
);
kernel_identity!(
    matmul_kouter_into_is_bit_identical_threaded,
    matmul_kouter_into_serial,
    matmul_kouter_into_with,
    |m, k, n| (m * k, k * n, m * n)
);
kernel_identity!(
    matmul_bt_into_is_bit_identical_threaded,
    matmul_bt_into_serial,
    matmul_bt_into_with,
    |m, k, n| (m * k, n * k, m * n)
);
kernel_identity!(
    matmul_at_into_is_bit_identical_threaded,
    matmul_at_into_serial,
    matmul_at_into_with,
    |m, k, n| (m * k, m * n, k * n)
);

/// Shapes big enough to clear the serial-fallback work threshold, so the
/// threaded partitioning paths (not just the small-shape bypass) are
/// definitely exercised and still bit-identical.
#[test]
fn large_shapes_take_the_partitioned_path_and_match() {
    let (m, k, n) = (65, 33, 70);
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i * 37 % 97) as f32 - 48.0) / 16.0)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 53 % 89) as f32 - 44.0) / 16.0)
        .collect();
    let bt: Vec<f32> = (0..n * k)
        .map(|i| ((i * 53 % 89) as f32 - 44.0) / 16.0)
        .collect();
    let c: Vec<f32> = (0..m * n)
        .map(|i| ((i * 41 % 83) as f32 - 41.0) / 16.0)
        .collect();

    for pool in pools().iter() {
        let threads = pool.threads();
        let before = pool.regions_run();

        let mut want = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_into_with(pool, &a, &b, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_into @ {threads}"));

        let mut want = vec![0.0f32; m * n];
        matmul_kouter_into_serial(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_kouter_into_with(pool, &a, &b, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_kouter_into @ {threads}"));

        let mut want = vec![0.0f32; m * n];
        matmul_bt_into_serial(&a, &bt, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_bt_into_with(pool, &a, &bt, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_bt_into @ {threads}"));

        let mut want = vec![0.0f32; k * n];
        matmul_at_into_serial(&a, &c, &mut want, m, k, n);
        let mut got = vec![0.0f32; k * n];
        matmul_at_into_with(pool, &a, &c, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_at_into @ {threads}"));

        if threads == 1 {
            assert_eq!(
                pool.regions_run(),
                before,
                "a 1-thread pool must never dispatch a region (serial bypass)"
            );
        } else {
            assert!(
                pool.regions_run() > before,
                "{threads}-thread pool should have dispatched parallel regions"
            );
        }
    }
}

/// `EVA_NN_THREADS=1` semantics: a 1-thread pool is the exact serial code
/// path — no workers, no dispatched regions — and `threads_from_env`
/// parses the variable the way README documents.
#[test]
fn eva_nn_threads_1_is_the_serial_path() {
    assert_eq!(threads_from_env(Some("1")), 1);
    let pool = Pool::new(threads_from_env(Some("1")));
    assert_eq!(pool.threads(), 1);

    let (m, k, n) = (64, 64, 64); // well above the work threshold
    let a = vec![0.5f32; m * k];
    let b = vec![0.25f32; k * n];
    let mut out = vec![0.0f32; m * n];
    matmul_into_with(&pool, &a, &b, &mut out, m, k, n);
    assert_eq!(pool.regions_run(), 0, "serial path never dispatches");

    let mut want = vec![0.0f32; m * n];
    matmul_into_serial(&a, &b, &mut want, m, k, n);
    assert_bits_eq(&out, &want, "serial bypass output");
}
