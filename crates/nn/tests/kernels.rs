//! Bit-identity of the threaded GEMM kernels against their serial
//! references — the contract that keeps batched/sequential decode (and
//! every training step) deterministic at any thread count.
//!
//! Every kernel × thread count {1, 2, 7} × ragged shape (m/k/n drawn from
//! {1, 3, 17, 64}) must produce bitwise-equal output, including on
//! non-zeroed destinations (the kernels accumulate) and inputs containing
//! exact zeros (the serial kernels skip them, so the threaded ones must
//! partition work, never reorder or drop per-element terms).
//!
//! The SIMD sweeps below extend the same contract across every supported
//! `EVA_NN_SIMD` mode: the axpy-family kernels and the int8 decode kernel
//! stay bit-identical to scalar in *every* mode, while `matmul_bt_into`
//! (whose SIMD dot products reorder accumulation) is exact under `off`
//! and held to the documented `8·k·ε·Σ|aᵢ·bᵢ|` envelope otherwise — and
//! is still bit-identical across thread counts at any one fixed mode.

use eva_nn::{
    matmul_at_into_serial, matmul_at_into_with, matmul_at_into_with_mode, matmul_bt_into_serial,
    matmul_bt_into_with, matmul_bt_into_with_mode, matmul_into_serial, matmul_into_with,
    matmul_into_with_mode, matmul_kouter_into_serial, matmul_kouter_into_with,
    matmul_kouter_into_with_mode, matmul_q8_kouter_into_serial, matmul_q8_kouter_into_with_mode,
    pool::threads_from_env, Pool, QuantizedMatrix, SimdMode,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Thread counts under test: serial bypass, smallest real pool, and a
/// deliberately odd count so ranges split unevenly.
const THREADS: [usize; 3] = [1, 2, 7];

/// Pools are expensive to spawn per proptest case; share one per count.
fn pools() -> &'static [Pool; 3] {
    static POOLS: OnceLock<[Pool; 3]> = OnceLock::new();
    POOLS.get_or_init(|| THREADS.map(Pool::new))
}

/// A dimension from the ragged set: boundary sizes around the unroll
/// widths (8-wide axpy, 4-wide bt tiles) and the range splitter.
fn dim() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 3, 17, 64])
}

/// Matrix entries: ordinary values plus exact zeros, so the zero-skip
/// paths in the serial kernels are exercised under partitioning.
fn entries(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(prop_oneof![3 => -2.0..2.0f32, 1 => Just(0.0f32)], len)
}

fn assert_bits_eq(got: &[f32], want: &[f32], label: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: out[{i}] = {g} != {w}");
    }
}

/// Shapes from the ragged set plus matching lhs/rhs/initial-out data.
type Case = ((usize, usize, usize), Vec<f32>, Vec<f32>, Vec<f32>);

fn cases(lens: fn(usize, usize, usize) -> (usize, usize, usize)) -> impl Strategy<Value = Case> {
    (dim(), dim(), dim()).prop_flat_map(move |(m, k, n)| {
        let (al, bl, ol) = lens(m, k, n);
        (Just((m, k, n)), entries(al), entries(bl), entries(ol))
    })
}

macro_rules! kernel_identity {
    ($test:ident, $serial:ident, $with:ident, $lens:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn $test(((m, k, n), a, b, init) in cases($lens)) {
                let mut reference = init.clone();
                $serial(&a, &b, &mut reference, m, k, n);
                for (&threads, pool) in THREADS.iter().zip(pools()) {
                    let mut out = init.clone();
                    $with(pool, &a, &b, &mut out, m, k, n);
                    assert_bits_eq(
                        &out,
                        &reference,
                        &format!("{} {m}x{k}x{n} @ {threads} threads", stringify!($with)),
                    );
                }
            }
        }
    };
}

kernel_identity!(
    matmul_into_is_bit_identical_threaded,
    matmul_into_serial,
    matmul_into_with,
    |m, k, n| (m * k, k * n, m * n)
);
kernel_identity!(
    matmul_kouter_into_is_bit_identical_threaded,
    matmul_kouter_into_serial,
    matmul_kouter_into_with,
    |m, k, n| (m * k, k * n, m * n)
);
kernel_identity!(
    matmul_bt_into_is_bit_identical_threaded,
    matmul_bt_into_serial,
    matmul_bt_into_with,
    |m, k, n| (m * k, n * k, m * n)
);
kernel_identity!(
    matmul_at_into_is_bit_identical_threaded,
    matmul_at_into_serial,
    matmul_at_into_with,
    |m, k, n| (m * k, m * n, k * n)
);

/// Shapes big enough to clear the serial-fallback work threshold, so the
/// threaded partitioning paths (not just the small-shape bypass) are
/// definitely exercised and still bit-identical.
#[test]
fn large_shapes_take_the_partitioned_path_and_match() {
    let (m, k, n) = (65, 33, 70);
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i * 37 % 97) as f32 - 48.0) / 16.0)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 53 % 89) as f32 - 44.0) / 16.0)
        .collect();
    let bt: Vec<f32> = (0..n * k)
        .map(|i| ((i * 53 % 89) as f32 - 44.0) / 16.0)
        .collect();
    let c: Vec<f32> = (0..m * n)
        .map(|i| ((i * 41 % 83) as f32 - 41.0) / 16.0)
        .collect();

    for pool in pools().iter() {
        let threads = pool.threads();
        let before = pool.regions_run();

        let mut want = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_into_with(pool, &a, &b, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_into @ {threads}"));

        let mut want = vec![0.0f32; m * n];
        matmul_kouter_into_serial(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_kouter_into_with(pool, &a, &b, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_kouter_into @ {threads}"));

        let mut want = vec![0.0f32; m * n];
        matmul_bt_into_serial(&a, &bt, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_bt_into_with(pool, &a, &bt, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_bt_into @ {threads}"));

        let mut want = vec![0.0f32; k * n];
        matmul_at_into_serial(&a, &c, &mut want, m, k, n);
        let mut got = vec![0.0f32; k * n];
        matmul_at_into_with(pool, &a, &c, &mut got, m, k, n);
        assert_bits_eq(&got, &want, &format!("matmul_at_into @ {threads}"));

        if threads == 1 {
            assert_eq!(
                pool.regions_run(),
                before,
                "a 1-thread pool must never dispatch a region (serial bypass)"
            );
        } else {
            assert!(
                pool.regions_run() > before,
                "{threads}-thread pool should have dispatched parallel regions"
            );
        }
    }
}

/// Every `EVA_NN_SIMD` mode this host can execute, `Off` first (the
/// scalar reference table). Unsupported instruction sets are skipped
/// rather than exercised through the warn-and-fall-back path, so each
/// swept mode genuinely runs its own kernel table.
fn modes() -> Vec<SimdMode> {
    [
        SimdMode::Off,
        SimdMode::Sse2,
        SimdMode::Avx2,
        SimdMode::Auto,
    ]
    .into_iter()
    .filter(|&m| eva_nn::simd::supported(m))
    .collect()
}

/// The axpy-family kernels (`matmul`/`kouter`/`at`) keep per-element
/// accumulation order in every SIMD mode (vector mul + add over the same
/// ascending index walk, no packed reductions), so they owe bit-identity
/// to the scalar serial reference in *all* modes at *all* thread counts.
macro_rules! simd_mode_identity {
    ($test:ident, $serial:ident, $with_mode:ident, $lens:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn $test(((m, k, n), a, b, init) in cases($lens)) {
                let mut reference = init.clone();
                $serial(&a, &b, &mut reference, m, k, n);
                for mode in modes() {
                    for (&threads, pool) in THREADS.iter().zip(pools()) {
                        let mut out = init.clone();
                        $with_mode(mode, pool, &a, &b, &mut out, m, k, n);
                        assert_bits_eq(
                            &out,
                            &reference,
                            &format!(
                                "{} {m}x{k}x{n} {mode:?} @ {threads} threads",
                                stringify!($with_mode)
                            ),
                        );
                    }
                }
            }
        }
    };
}

simd_mode_identity!(
    matmul_into_is_bit_identical_in_every_simd_mode,
    matmul_into_serial,
    matmul_into_with_mode,
    |m, k, n| (m * k, k * n, m * n)
);
simd_mode_identity!(
    matmul_kouter_into_is_bit_identical_in_every_simd_mode,
    matmul_kouter_into_serial,
    matmul_kouter_into_with_mode,
    |m, k, n| (m * k, k * n, m * n)
);
simd_mode_identity!(
    matmul_at_into_is_bit_identical_in_every_simd_mode,
    matmul_at_into_serial,
    matmul_at_into_with_mode,
    |m, k, n| (m * k, m * n, k * n)
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// `matmul_bt_into` under SIMD uses packed accumulators + a
    /// deterministic horizontal sum, which reorders the k-term dot
    /// product: exact under `Off`, within the documented
    /// `8·k·ε·Σ|aᵢ·bᵢ|` envelope otherwise, and bit-identical across
    /// thread counts at any one fixed mode (the partitioning never
    /// changes per-element order).
    #[test]
    fn matmul_bt_into_simd_modes_hold_the_ulp_envelope(
        ((m, k, n), a, b, _) in cases(|m, k, n| (m * k, n * k, m * n))
    ) {
        let mut reference = vec![0.0f32; m * n];
        matmul_bt_into_serial(&a, &b, &mut reference, m, k, n);
        for mode in modes() {
            let mut at_one_thread: Option<Vec<f32>> = None;
            for (&threads, pool) in THREADS.iter().zip(pools()) {
                let mut out = vec![0.0f32; m * n];
                matmul_bt_into_with_mode(mode, pool, &a, &b, &mut out, m, k, n);
                if mode == SimdMode::Off {
                    assert_bits_eq(
                        &out,
                        &reference,
                        &format!("matmul_bt_into {m}x{k}x{n} Off @ {threads} threads"),
                    );
                } else {
                    for (idx, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                        let (i, j) = (idx / n, idx % n);
                        let abs_dot: f32 =
                            (0..k).map(|c| (a[i * k + c] * b[j * k + c]).abs()).sum();
                        let bound =
                            8.0 * k as f32 * f32::EPSILON * abs_dot + f32::MIN_POSITIVE;
                        prop_assert!(
                            (got - want).abs() <= bound,
                            "matmul_bt_into {m}x{k}x{n} {mode:?} @ {threads} threads: \
                             out[{idx}] = {got} vs {want} exceeds {bound}",
                        );
                    }
                }
                match &at_one_thread {
                    None => at_one_thread = Some(out),
                    Some(first) => assert_bits_eq(
                        &out,
                        first,
                        &format!(
                            "matmul_bt_into {m}x{k}x{n} {mode:?}: thread-count variance \
                             @ {threads} threads"
                        ),
                    ),
                }
            }
        }
    }

    /// The int8 decode kernel accumulates raw integer-grid sums and
    /// applies one scale multiply per element, so it is bit-identical
    /// across every SIMD mode and thread count — the property batched
    /// quantized decode relies on for admission-order independence.
    #[test]
    fn q8_kouter_is_bit_identical_across_modes_and_threads(
        ((m, k, n), a, b, init) in cases(|m, k, n| (m * k, k * n, m * n))
    ) {
        let qm = QuantizedMatrix::quantize(&b, k, n);
        let mut reference = init.clone();
        matmul_q8_kouter_into_serial(&a, &qm, &mut reference, m);
        for mode in modes() {
            for (&threads, pool) in THREADS.iter().zip(pools()) {
                let mut out = init.clone();
                matmul_q8_kouter_into_with_mode(mode, pool, &a, &qm, &mut out, m);
                assert_bits_eq(
                    &out,
                    &reference,
                    &format!("matmul_q8_kouter_into {m}x{k}x{n} {mode:?} @ {threads} threads"),
                );
            }
        }
    }

    /// Per-output-channel symmetric quantization round-trip: every
    /// dequantized entry sits within half a quantization step of the
    /// original (scale = max|column| / 127).
    #[test]
    fn quantize_round_trip_stays_within_half_a_step(
        ((k, n), w) in (dim(), dim()).prop_flat_map(|(k, n)| {
            (Just((k, n)), prop::collection::vec(-4.0..4.0f32, k * n))
        })
    ) {
        let qm = QuantizedMatrix::quantize(&w, k, n);
        let round_trip = qm.dequantize();
        for j in 0..n {
            let scale = qm.scales()[j];
            prop_assert!(scale >= f32::MIN_POSITIVE, "column {j} scale clamps positive");
            for i in 0..k {
                let (orig, dq) = (w[i * n + j], round_trip[i * n + j]);
                prop_assert!(
                    (orig - dq).abs() <= 0.5 * scale + f32::EPSILON * orig.abs(),
                    "column {j} row {i}: {orig} -> {dq} off by more than scale/2 ({scale})",
                );
            }
        }
    }
}

/// Per-channel scale edge cases: an all-zero column keeps a positive
/// (clamped) scale and round-trips to exact zeros, and a column of
/// denormals quantizes to the zero code instead of poisoning the scale.
#[test]
fn quantize_handles_zero_and_denormal_columns() {
    let (k, n) = (4, 3);
    // Column 0: ordinary values; column 1: exact zeros; column 2:
    // denormals far below f32::MIN_POSITIVE.
    let mut w = vec![0.0f32; k * n];
    for i in 0..k {
        w[i * n] = (i as f32 + 1.0) * 0.25;
        w[i * n + 2] = 1.0e-40;
    }
    let qm = QuantizedMatrix::quantize(&w, k, n);
    for (j, &scale) in qm.scales().iter().enumerate() {
        assert!(
            scale >= f32::MIN_POSITIVE && scale.is_finite(),
            "column {j} scale {scale} must be a positive normal"
        );
    }
    let round_trip = qm.dequantize();
    for i in 0..k {
        assert_eq!(
            round_trip[i * n + 1].to_bits(),
            0.0f32.to_bits(),
            "zero column must round-trip to exact zero"
        );
        assert_eq!(
            qm.q()[i * n + 2],
            0,
            "denormal inputs land on the zero code under the clamped scale"
        );
    }
    // The kernel still runs cleanly over such a matrix.
    let a = vec![1.0f32; 2 * k];
    let mut out = vec![0.0f32; 2 * n];
    matmul_q8_kouter_into_serial(&a, &qm, &mut out, 2);
    assert_eq!(
        out[1].to_bits(),
        0.0f32.to_bits(),
        "zero column contributes zero"
    );
    assert_eq!(
        out[2].to_bits(),
        0.0f32.to_bits(),
        "denormal column quantized to zero"
    );
}

/// `EVA_NN_THREADS=1` semantics: a 1-thread pool is the exact serial code
/// path — no workers, no dispatched regions — and `threads_from_env`
/// parses the variable the way README documents.
#[test]
fn eva_nn_threads_1_is_the_serial_path() {
    assert_eq!(threads_from_env(Some("1")), 1);
    let pool = Pool::new(threads_from_env(Some("1")));
    assert_eq!(pool.threads(), 1);

    let (m, k, n) = (64, 64, 64); // well above the work threshold
    let a = vec![0.5f32; m * k];
    let b = vec![0.25f32; k * n];
    let mut out = vec![0.0f32; m * n];
    matmul_into_with(&pool, &a, &b, &mut out, m, k, n);
    assert_eq!(pool.regions_run(), 0, "serial path never dispatches");

    let mut want = vec![0.0f32; m * n];
    matmul_into_serial(&a, &b, &mut want, m, k, n);
    assert_bits_eq(&out, &want, "serial bypass output");
}
