//! Finite-difference verification of every tape op's backward pass.
//!
//! For each op we build a scalar loss through it, perturb each input
//! element by ±h, and compare the numeric derivative against the analytic
//! gradient. f32 limits accuracy to ~1e-2 relative on composed ops; each
//! check uses tolerances appropriate to its conditioning.

use eva_nn::{Tape, Tensor, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Numerically check d(loss)/d(input) for the input tensor `x0`, where
/// `build` constructs the loss from a leaf holding the (possibly perturbed)
/// input.
fn grad_check(x0: &Tensor, build: impl Fn(&mut Tape, Value) -> Value, tol: f32) {
    // Analytic gradient.
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone(), true);
    let loss = build(&mut tape, x);
    let grads = tape.backward(loss);
    let analytic = grads.of(x).expect("input reached").clone();

    let h = 1e-2f32;
    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.make_mut()[i] += h;
        let mut minus = x0.clone();
        minus.make_mut()[i] -= h;
        let f = |t: Tensor| {
            let mut tape = Tape::new();
            let x = tape.leaf(t, true);
            let loss = build(&mut tape, x);
            tape.value(loss).item()
        };
        let numeric = (f(plus) - f(minus)) / (2.0 * h);
        let a = analytic.data()[i];
        let denom = numeric.abs().max(a.abs()).max(1.0);
        assert!(
            (numeric - a).abs() / denom < tol,
            "element {i}: numeric {numeric} vs analytic {a}"
        );
    }
}

fn randt(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let numel: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..numel).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

#[test]
fn linear_wrt_input() {
    let w = randt(vec![3, 2], 1);
    let b = randt(vec![2], 2);
    grad_check(
        &randt(vec![4, 3], 0),
        |tape, x| {
            let wv = tape.leaf(w.clone(), false);
            let bv = tape.leaf(b.clone(), false);
            let y = tape.linear(x, wv, Some(bv));
            tape.mean_all(y)
        },
        1e-2,
    );
}

#[test]
fn linear_wrt_weight() {
    let x = randt(vec![4, 3], 0);
    grad_check(
        &randt(vec![3, 2], 1),
        |tape, w| {
            let xv = tape.leaf(x.clone(), false);
            let y = tape.linear(xv, w, None);
            let sq = tape.mul(y, y);
            tape.mean_all(sq)
        },
        1e-2,
    );
}

#[test]
fn bmm_both_sides() {
    let b = randt(vec![2, 3, 2], 5);
    grad_check(
        &randt(vec![2, 4, 3], 4),
        |tape, a| {
            let bv = tape.leaf(b.clone(), false);
            let c = tape.bmm(a, bv);
            tape.mean_all(c)
        },
        1e-2,
    );
    let a = randt(vec![2, 4, 3], 4);
    grad_check(
        &randt(vec![2, 3, 2], 5),
        |tape, b| {
            let av = tape.leaf(a.clone(), false);
            let c = tape.bmm(av, b);
            let sq = tape.mul(c, c);
            tape.mean_all(sq)
        },
        1e-2,
    );
}

#[test]
fn transpose_and_heads() {
    grad_check(
        &randt(vec![2, 3, 4], 7),
        |tape, x| {
            let t = tape.transpose12(x);
            let sq = tape.mul(t, t);
            tape.mean_all(sq)
        },
        1e-2,
    );
    grad_check(
        &randt(vec![2, 3, 4], 8),
        |tape, x| {
            let s = tape.split_heads(x, 2);
            let m = tape.merge_heads(s, 2);
            let sq = tape.mul(m, m);
            tape.mean_all(sq)
        },
        1e-2,
    );
}

#[test]
fn causal_softmax_grad() {
    grad_check(
        &randt(vec![2, 3, 3], 9),
        |tape, x| {
            let y = tape.causal_softmax(x, 0.7);
            let sq = tape.mul(y, y);
            tape.mean_all(sq)
        },
        2e-2,
    );
}

#[test]
fn layer_norm_grads() {
    let gamma = randt(vec![4], 11);
    let beta = randt(vec![4], 12);
    grad_check(
        &randt(vec![3, 4], 10),
        |tape, x| {
            let g = tape.leaf(gamma.clone(), false);
            let bt = tape.leaf(beta.clone(), false);
            let y = tape.layer_norm(x, g, bt);
            let sq = tape.mul(y, y);
            tape.mean_all(sq)
        },
        3e-2,
    );
    // w.r.t. gamma.
    let x = randt(vec![3, 4], 10);
    grad_check(
        &randt(vec![4], 11),
        |tape, g| {
            let xv = tape.leaf(x.clone(), false);
            let bt = tape.leaf(beta.clone(), false);
            let y = tape.layer_norm(xv, g, bt);
            let sq = tape.mul(y, y);
            tape.mean_all(sq)
        },
        2e-2,
    );
}

#[test]
fn gelu_grad() {
    grad_check(
        &randt(vec![10], 13),
        |tape, x| {
            let y = tape.gelu(x);
            tape.sum_all(y)
        },
        1e-2,
    );
}

#[test]
fn elementwise_and_scalar_ops() {
    let other = randt(vec![6], 15);
    grad_check(
        &randt(vec![6], 14),
        |tape, x| {
            let o = tape.leaf(other.clone(), false);
            let a = tape.add(x, o);
            let s = tape.sub(a, o);
            let m = tape.mul(s, o);
            let sc = tape.scale(m, 1.3);
            let ash = tape.add_scalar(sc, 0.2);
            tape.mean_all(ash)
        },
        1e-2,
    );
}

#[test]
fn exp_logsigmoid_clamp_minimum() {
    let other = randt(vec![6], 17);
    grad_check(
        &randt(vec![6], 16),
        |tape, x| {
            let e = tape.exp(x);
            let l = tape.log_sigmoid(e);
            let o = tape.leaf(other.clone(), false);
            let m = tape.minimum(l, o);
            // Clamp bounds chosen off the sample values to avoid kinks at
            // the finite-difference points.
            let c = tape.clamp(m, -5.0, 5.0);
            tape.sum_all(c)
        },
        2e-2,
    );
}

#[test]
fn cross_entropy_grad() {
    grad_check(
        &randt(vec![4, 5], 18),
        |tape, x| tape.cross_entropy(x, &[0, 2, 4, 1], &[true, true, false, true]),
        1e-2,
    );
}

#[test]
fn log_prob_grad() {
    grad_check(
        &randt(vec![4, 5], 19),
        |tape, x| {
            let lp = tape.log_prob(x, &[1, 1, 3, 0]);
            tape.mean_all(lp)
        },
        1e-2,
    );
}

#[test]
fn segment_sum_and_select_rows() {
    grad_check(
        &randt(vec![6], 20),
        |tape, x| {
            let s = tape.segment_sum(x, &[0, 1, 0, 1, 2, 2]);
            let sq = tape.mul(s, s);
            tape.mean_all(sq)
        },
        1e-2,
    );
    grad_check(
        &randt(vec![4, 3], 21),
        |tape, x| {
            let s = tape.select_rows(x, &[2, 0, 2]);
            let sq = tape.mul(s, s);
            tape.sum_all(sq)
        },
        1e-2,
    );
}

#[test]
fn embedding_grad() {
    grad_check(
        &randt(vec![5, 3], 22),
        |tape, w| {
            let e = tape.embedding(w, &[4, 1, 1, 0]);
            let sq = tape.mul(e, e);
            tape.mean_all(sq)
        },
        1e-2,
    );
}

#[test]
fn mul_const_grad() {
    let mask = Tensor::from_vec(vec![5], vec![1.0, 0.0, 1.0, 0.5, 2.0]);
    grad_check(
        &randt(vec![5], 23),
        |tape, x| {
            let m = tape.mul_const(x, &mask);
            tape.sum_all(m)
        },
        1e-2,
    );
}

#[test]
fn full_attention_block_composition() {
    // End-to-end mini attention: x -> qkv -> attention -> projection.
    let d = 4;
    let heads = 2;
    let wq = randt(vec![d, d], 31);
    let wk = randt(vec![d, d], 32);
    let wv = randt(vec![d, d], 33);
    grad_check(
        &randt(vec![1, 3, d], 30),
        |tape, x| {
            let q_w = tape.leaf(wq.clone(), false);
            let k_w = tape.leaf(wk.clone(), false);
            let v_w = tape.leaf(wv.clone(), false);
            let q = tape.linear(x, q_w, None);
            let k = tape.linear(x, k_w, None);
            let v = tape.linear(x, v_w, None);
            let qh = tape.split_heads(q, heads);
            let kh = tape.split_heads(k, heads);
            let vh = tape.split_heads(v, heads);
            let kt = tape.transpose12(kh);
            let scores = tape.bmm(qh, kt);
            let probs = tape.causal_softmax(scores, 1.0 / (d as f32 / heads as f32).sqrt());
            let ctx = tape.bmm(probs, vh);
            let merged = tape.merge_heads(ctx, heads);
            let sq = tape.mul(merged, merged);
            tape.mean_all(sq)
        },
        3e-2,
    );
}
