//! Int8 per-output-channel symmetric weight quantization and its decode
//! GEMM kernel.
//!
//! A weight matrix `w[k, n]` (row-major, output channel = column, matching
//! every decode weight in the repo) quantizes to i8 with one f32 scale per
//! column: `scale[j] = max|w[·, j]| / 127` (clamped away from zero so
//! all-zero and denormal columns stay well-defined) and
//! `q = round(w / scale)` clamped to `[-127, 127]`. Dequantization error
//! is at most `scale[j] / 2` per element.
//!
//! The decode kernel [`matmul_q8_kouter_into`] mirrors
//! [`crate::matmul_kouter_into`]'s k-outer weight streaming, but
//! accumulates the *raw* integer-grid sums `Σ a[i,kk] · f32(q[kk,j])` in
//! an f32 scratch first (ascending `kk`, zeros of `a` skipped — the same
//! term order as the f32 kernel) and applies `scale[j]` exactly once per
//! output element at the end. One multiply per element instead of one per
//! term keeps the quantization error budget tight, and because the i8→f32
//! widening is exact and every SIMD lane does a plain mul-then-add, the
//! kernel is **bit-identical across scalar/SSE2/AVX2 and at every thread
//! count** — only the quantization itself loses precision, never the
//! execution strategy. The accuracy cost is gated end-to-end by the
//! f32-vs-int8 decode budget test in `crates/serve/tests`.
//!
//! [`QuantizedParams`] carries a named set of quantized matrices and
//! round-trips through a CRC64-tagged byte format (via [`crate::ckpt`]) so
//! quantized artifacts get the same integrity checking as f32 ones.

use std::io::{self, Read, Write};

use crate::ckpt;
use crate::params::ParamSet;
use crate::pool::{self, Pool, SendPtr};
use crate::simd::{self, Kernels, SimdMode};
use crate::tensor::PAR_MACS;

/// Magic prefix of the [`QuantizedParams`] byte format.
const MAGIC: &[u8; 8] = b"EVAQNT1\0";

/// An i8 weight matrix `[k, n]` with one symmetric scale per output
/// channel (column). Layout matches the f32 original row-major, so the
/// k-outer kernel streams rows of `q` contiguously.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    k: usize,
    n: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantize a row-major `[k, n]` f32 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != k * n`.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> QuantizedMatrix {
        assert_eq!(w.len(), k * n, "weight length");
        let mut scales = vec![0.0f32; n];
        for (j, scale) in scales.iter_mut().enumerate() {
            let mut maxabs = 0.0f32;
            for kk in 0..k {
                maxabs = maxabs.max(w[kk * n + j].abs());
            }
            // The clamp keeps all-zero and denormal columns well-defined:
            // they quantize to q = 0 (or ±1 for sub-MIN_POSITIVE values
            // rounding away from zero) instead of dividing by zero.
            *scale = (maxabs / 127.0).max(f32::MIN_POSITIVE);
        }
        let mut q = vec![0i8; k * n];
        for kk in 0..k {
            for j in 0..n {
                let v = (w[kk * n + j] / scales[j]).round().clamp(-127.0, 127.0);
                q[kk * n + j] = v as i8;
            }
        }
        QuantizedMatrix { k, n, q, scales }
    }

    /// Rows (input dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns (output channels).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The i8 grid, row-major `[k, n]`.
    pub fn q(&self) -> &[i8] {
        &self.q
    }

    /// Per-column scales, length `n`.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstruct the f32 matrix `q[kk, j] * scale[j]`; each element is
    /// within `scale[j] / 2` of the original (for in-range inputs).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for kk in 0..self.k {
            for j in 0..self.n {
                out[kk * self.n + j] = f32::from(self.q[kk * self.n + j]) * self.scales[j];
            }
        }
        out
    }
}

fn check_q8(a: &[f32], w: &QuantizedMatrix, out: &[f32], m: usize) {
    assert_eq!(a.len(), m * w.k, "lhs length");
    assert_eq!(out.len(), m * w.n, "out length");
}

/// Columns `[jlo, jhi)` of `out[m, n] += a @ dequant(w)`: raw grid sums
/// into a local scratch, then one scale multiply per element.
///
/// # Safety
///
/// `out` must point at the full `[m, n]` buffer and no concurrent user may
/// touch columns `[jlo, jhi)`.
unsafe fn q8_cols(
    kn: &Kernels,
    a: &[f32],
    w: &QuantizedMatrix,
    out: SendPtr,
    m: usize,
    jlo: usize,
    jhi: usize,
) {
    let (k, n) = (w.k, w.n);
    let width = jhi - jlo;
    let mut acc = vec![0.0f32; m * width];
    for kk in 0..k {
        let qrow = &w.q[kk * n + jlo..kk * n + jhi];
        for i in 0..m {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            (kn.axpy_q8)(av, qrow, &mut acc[i * width..(i + 1) * width]);
        }
    }
    for i in 0..m {
        let orow = out.slice(i * n + jlo, i * n + jhi);
        let arow = &acc[i * width..(i + 1) * width];
        for c in 0..width {
            orow[c] += arow[c] * w.scales[jlo + c];
        }
    }
}

fn q8_impl(kn: &Kernels, pool: &Pool, a: &[f32], w: &QuantizedMatrix, out: &mut [f32], m: usize) {
    check_q8(a, w, out, m);
    let (k, n) = (w.k, w.n);
    let t = pool.threads();
    let ptr = SendPtr::new(out);
    if t == 1 || m * k * n < PAR_MACS || n < t {
        // SAFETY: exclusive borrow, full column range.
        return unsafe { q8_cols(kn, a, w, ptr, m, 0, n) };
    }
    pool.run_ranges(n, (PAR_MACS / (m * k).max(1)).max(1), |jlo, jhi| {
        // SAFETY: column ranges are disjoint.
        unsafe { q8_cols(kn, a, w, ptr, m, jlo, jhi) }
    });
}

/// `out[m, n] += a[m, k] @ dequant(w)` — single-threaded scalar reference.
/// Identical per-element term order to [`crate::matmul_kouter_into_serial`]
/// on the dequantized matrix, with the scale applied once at the end.
pub fn matmul_q8_kouter_into_serial(a: &[f32], w: &QuantizedMatrix, out: &mut [f32], m: usize) {
    check_q8(a, w, out, m);
    let ptr = SendPtr::new(out);
    // SAFETY: exclusive borrow, full column range.
    unsafe { q8_cols(simd::kernels_for(SimdMode::Off), a, w, ptr, m, 0, w.n) }
}

/// [`matmul_q8_kouter_into_serial`] threaded over an explicit pool with an
/// explicit SIMD mode (bench/test sweeps). Bit-identical to the serial
/// kernel at every thread count *and* every mode.
pub fn matmul_q8_kouter_into_with_mode(
    mode: SimdMode,
    pool: &Pool,
    a: &[f32],
    w: &QuantizedMatrix,
    out: &mut [f32],
    m: usize,
) {
    q8_impl(simd::kernels_for(mode), pool, a, w, out, m);
}

/// [`matmul_q8_kouter_into_serial`] threaded over an explicit pool under
/// the process-wide `EVA_NN_SIMD` mode.
pub fn matmul_q8_kouter_into_with(
    pool: &Pool,
    a: &[f32],
    w: &QuantizedMatrix,
    out: &mut [f32],
    m: usize,
) {
    q8_impl(simd::active(), pool, a, w, out, m);
}

/// [`matmul_q8_kouter_into_serial`] threaded over the process-global pool
/// — the int8 decode hot path [`ContinuousBatch`](../model) calls.
pub fn matmul_q8_kouter_into(a: &[f32], w: &QuantizedMatrix, out: &mut [f32], m: usize) {
    q8_impl(simd::active(), pool::global(), a, w, out, m);
}

/// A named set of quantized matrices — the int8 sibling of [`ParamSet`],
/// with a CRC64-tagged byte format for artifact storage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantizedParams {
    names: Vec<String>,
    mats: Vec<QuantizedMatrix>,
}

impl QuantizedParams {
    /// Quantize the named 2-D tensors of `params`, in the given order.
    /// Fails on a missing name or a non-2-D tensor.
    pub fn quantize_matrices(params: &ParamSet, names: &[&str]) -> Result<QuantizedParams, String> {
        let mut out = QuantizedParams::default();
        for &name in names {
            let idx = params
                .index_of(name)
                .ok_or_else(|| format!("no parameter named {name:?}"))?;
            let t = params.tensor(idx);
            let [k, n] = t.shape() else {
                return Err(format!("{name:?} is not 2-D: shape {:?}", t.shape()));
            };
            out.names.push(name.to_string());
            out.mats.push(QuantizedMatrix::quantize(t.data(), *k, *n));
        }
        Ok(out)
    }

    /// Number of matrices.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Index of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Name of entry `index`.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Matrix of entry `index`.
    pub fn mat(&self, index: usize) -> &QuantizedMatrix {
        &self.mats[index]
    }

    /// Serialize: magic, entry count, per-entry name/dims/grid/scales,
    /// then a trailing CRC64 of everything before it.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&(self.mats.len() as u32).to_le_bytes());
        for (name, mat) in self.names.iter().zip(&self.mats) {
            body.extend_from_slice(&(name.len() as u32).to_le_bytes());
            body.extend_from_slice(name.as_bytes());
            body.extend_from_slice(&(mat.k as u64).to_le_bytes());
            body.extend_from_slice(&(mat.n as u64).to_le_bytes());
            body.extend_from_slice(unsafe {
                // SAFETY: i8 and u8 have identical layout.
                std::slice::from_raw_parts(mat.q.as_ptr() as *const u8, mat.q.len())
            });
            for s in &mat.scales {
                body.extend_from_slice(&s.to_le_bytes());
            }
        }
        body.extend_from_slice(&ckpt::crc64(&body).to_le_bytes());
        w.write_all(&body)
    }

    /// Deserialize and verify the trailing CRC64; any mismatch (typo'd
    /// magic, truncation, bit rot) is an `InvalidData` error.
    pub fn load<R: Read>(mut r: R) -> io::Result<QuantizedParams> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if bytes.len() < MAGIC.len() + 12 {
            return Err(bad("quantized params: truncated"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if ckpt::crc64(body) != stored {
            return Err(bad("quantized params: CRC64 mismatch"));
        }
        if &body[..MAGIC.len()] != MAGIC {
            return Err(bad("quantized params: bad magic"));
        }
        let mut at = MAGIC.len();
        let mut take = |len: usize| -> io::Result<&[u8]> {
            let chunk = body
                .get(at..at + len)
                .ok_or_else(|| bad("quantized params: truncated entry"))?;
            at += len;
            Ok(chunk)
        };
        let count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let mut out = QuantizedParams::default();
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
            let name = std::str::from_utf8(take(name_len)?)
                .map_err(|_| bad("quantized params: non-UTF-8 name"))?
                .to_string();
            let k = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")) as usize;
            let n = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")) as usize;
            let q: Vec<i8> = take(k * n)?.iter().map(|&b| b as i8).collect();
            let mut scales = Vec::with_capacity(n);
            for chunk in take(n * 4)?.chunks_exact(4) {
                scales.push(f32::from_le_bytes(chunk.try_into().expect("4 bytes")));
            }
            out.names.push(name);
            out.mats.push(QuantizedMatrix { k, n, q, scales });
        }
        if at != body.len() {
            return Err(bad("quantized params: trailing bytes"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{matmul_kouter_into_serial, Tensor};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quantize_round_trip_error_is_within_half_a_scale_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (k, n) = (23, 17);
        let w = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let qm = QuantizedMatrix::quantize(w.data(), k, n);
        let deq = qm.dequantize();
        for kk in 0..k {
            for j in 0..n {
                let err = (w.data()[kk * n + j] - deq[kk * n + j]).abs();
                let budget = qm.scales()[j] * 0.5 + f32::EPSILON;
                assert!(err <= budget, "({kk},{j}): err {err} > {budget}");
            }
        }
    }

    #[test]
    fn zero_and_denormal_columns_stay_finite() {
        // Column 0 all zeros, column 1 denormal, column 2 ordinary.
        let (k, n) = (3, 3);
        let tiny = f32::MIN_POSITIVE / 4.0;
        let w = vec![0.0, tiny, 1.0, 0.0, -tiny, -2.0, 0.0, tiny, 0.5];
        let qm = QuantizedMatrix::quantize(&w, k, n);
        assert!(qm.scales().iter().all(|s| s.is_finite() && *s > 0.0));
        let deq = qm.dequantize();
        assert!(deq.iter().all(|v| v.is_finite()));
        // The all-zero column reconstructs exactly.
        for kk in 0..k {
            assert_eq!(deq[kk * n], 0.0);
        }
    }

    #[test]
    fn q8_kernel_matches_dequantized_f32_kernel_exactly_in_scalar_mode() {
        // Same term order, one scale multiply at the end: running the f32
        // kernel on dequant(w) differs (it rounds av*q*scale per term), so
        // compare against an explicit raw-sum reference instead.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (m, k, n) = (3, 19, 11);
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let mut a = a.data().to_vec();
        a[2] = 0.0; // exercise the zero-skip path
        let w = Tensor::randn(vec![k, n], 0.3, &mut rng);
        let qm = QuantizedMatrix::quantize(w.data(), k, n);
        let mut got = vec![0.1f32; m * n]; // nonzero: the kernel accumulates
        matmul_q8_kouter_into_serial(&a, &qm, &mut got, m);
        let mut want = vec![0.1f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut raw = 0.0f32;
                for kk in 0..k {
                    let av = a[i * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    raw += av * f32::from(qm.q()[kk * n + j]);
                }
                want[i * n + j] += raw * qm.scales()[j];
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "{g} vs {w}");
        }
    }

    #[test]
    fn q8_kernel_tracks_the_f32_kernel_within_quantization_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (m, k, n) = (4, 64, 32);
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let w = Tensor::randn(vec![k, n], 0.2, &mut rng);
        let qm = QuantizedMatrix::quantize(w.data(), k, n);
        let mut f32_out = vec![0.0f32; m * n];
        matmul_kouter_into_serial(a.data(), w.data(), &mut f32_out, m, k, n);
        let mut q8_out = vec![0.0f32; m * n];
        matmul_q8_kouter_into_serial(a.data(), &qm, &mut q8_out, m);
        // Per element: |Σ a·(w - deq)| ≤ Σ|a| · scale/2, plus fp slack.
        for i in 0..m {
            let abs_a: f32 = a.data()[i * k..(i + 1) * k].iter().map(|v| v.abs()).sum();
            for j in 0..n {
                let budget = abs_a * qm.scales()[j] * 0.5 + 1e-4;
                let err = (f32_out[i * n + j] - q8_out[i * n + j]).abs();
                assert!(err <= budget, "({i},{j}): err {err} > {budget}");
            }
        }
    }

    #[test]
    fn quantized_params_save_load_round_trip_and_crc_detection() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut params = ParamSet::new();
        params.register("w1", Tensor::randn(vec![8, 6], 1.0, &mut rng));
        params.register("w2", Tensor::randn(vec![4, 10], 0.5, &mut rng));
        let qp = QuantizedParams::quantize_matrices(&params, &["w1", "w2"]).expect("2-D params");
        let mut bytes = Vec::new();
        qp.save(&mut bytes).expect("in-memory save");
        let back = QuantizedParams::load(&bytes[..]).expect("load");
        assert_eq!(qp, back);
        assert_eq!(back.index_of("w2"), Some(1));
        // A flipped payload bit is caught by the CRC.
        let mut corrupt = bytes.clone();
        corrupt[MAGIC.len() + 7] ^= 1;
        assert!(QuantizedParams::load(&corrupt[..]).is_err());
        // Truncation too.
        assert!(QuantizedParams::load(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn quantize_matrices_rejects_missing_and_non_2d() {
        let mut params = ParamSet::new();
        params.register("bias", Tensor::zeros(vec![7]));
        assert!(QuantizedParams::quantize_matrices(&params, &["nope"]).is_err());
        assert!(QuantizedParams::quantize_matrices(&params, &["bias"]).is_err());
    }
}
