//! Persistent worker pool with scoped fork-join execution — the threading
//! substrate under every GEMM kernel and row-parallel tape op.
//!
//! One process-wide [`Pool`] (see [`global`]) is shared by training,
//! batched decode, and every `eva-serve` worker, so concurrent callers
//! never oversubscribe the machine: there is exactly one set of kernel
//! threads no matter how many threads submit work. Size it with
//! `EVA_NN_THREADS` (unset or `0` = `std::thread::available_parallelism()`,
//! `1` = no workers at all — every parallel region runs inline on the
//! caller, bypassing the pool with zero overhead).
//!
//! ## Execution model
//!
//! [`Pool::run_ranges`] is the only primitive: split `0..n` into at most
//! `threads` contiguous ranges and run a `Fn(lo, hi)` over them, caller
//! included, returning when every range has finished (fork-join). Ranges
//! are claimed through an atomic cursor, so any worker — busy with another
//! caller's region or not — helps with whatever region it receives next.
//! Work submitted *from inside* a pool task runs inline (no nested
//! dispatch), which both bounds stack depth and makes the pool
//! deadlock-free: a blocked caller always has workers draining the queue.
//!
//! ## Determinism contract
//!
//! The pool never decides *what* is computed, only *where*: callers
//! partition work so that each output element is written by exactly one
//! range, with the same per-element arithmetic and accumulation order as
//! the serial code. Every kernel built on this pool is therefore
//! bit-identical at any thread count — pinned down by the proptest suite
//! in `tests/kernels.rs` and PR 2's batched/sequential decode equivalence
//! tests, which now run threaded in CI.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};

thread_local! {
    /// Set on pool worker threads so nested parallel regions run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// One fork-join region, allocated on the submitting caller's stack. Raw
/// pointers to it are handed to workers; the caller cannot return before
/// `pending` reaches zero, which workers only signal after their last
/// access, so the pointers never dangle.
struct Region {
    /// Type-erased `&dyn Fn(lo, hi)` living on the caller's stack.
    task: *const (dyn Fn(usize, usize) + Sync),
    n: usize,
    ranges: usize,
    /// Next unclaimed range index.
    next: AtomicUsize,
    /// Workers that received this region and have not finished with it.
    pending: Mutex<usize>,
    done: Condvar,
    /// Whether any participant's task panicked (re-raised by the caller).
    panicked: AtomicBool,
}

impl Region {
    /// Claim and run ranges until the cursor is exhausted.
    ///
    /// # Safety
    ///
    /// `self.task` must still be alive — guaranteed while the submitting
    /// caller is blocked in [`Pool::run_ranges`].
    unsafe fn execute(&self) {
        let task = &*self.task;
        loop {
            let r = self.next.fetch_add(1, Ordering::Relaxed);
            if r >= self.ranges {
                return;
            }
            let (lo, hi) = split_range(self.n, self.ranges, r);
            if catch_unwind(AssertUnwindSafe(|| task(lo, hi))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Worker-side entry: run, then signal completion exactly once.
    unsafe fn execute_and_signal(&self) {
        self.execute();
        let mut pending = self.pending.lock().expect("pool mutex");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_one();
        }
    }
}

/// The `r`-th of `ranges` balanced contiguous splits of `0..n`.
fn split_range(n: usize, ranges: usize, r: usize) -> (usize, usize) {
    let base = n / ranges;
    let rem = n % ranges;
    let lo = r * base + r.min(rem);
    (lo, lo + base + usize::from(r < rem))
}

/// A message handing a region to one worker.
struct JobMsg(*const Region);
// SAFETY: the region outlives the message (see `Region` docs) and all of
// its shared state is Sync.
unsafe impl Send for JobMsg {}

/// A persistent fork-join worker pool. See the module docs.
pub struct Pool {
    threads: usize,
    tx: Option<Sender<JobMsg>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    regions: AtomicUsize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// A pool executing on `threads` threads total: the caller plus
    /// `threads - 1` persistent workers. `threads <= 1` spawns nothing and
    /// makes every [`Pool::run_ranges`] call run inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        if threads == 1 {
            return Pool {
                threads,
                tx: None,
                workers: Vec::new(),
                regions: AtomicUsize::new(0),
            };
        }
        let (tx, rx) = unbounded::<JobMsg>();
        let workers = (0..threads - 1)
            .map(|i| {
                let rx: Receiver<JobMsg> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("eva-nn-pool-{i}"))
                    .spawn(move || {
                        IN_POOL.with(|f| f.set(true));
                        while let Ok(JobMsg(region)) = rx.recv() {
                            // SAFETY: the submitting caller blocks until we
                            // signal, so `region` is alive.
                            unsafe { (*region).execute_and_signal() }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            threads,
            tx: Some(tx),
            workers,
            regions: AtomicUsize::new(0),
        }
    }

    /// Total execution threads (caller included). `1` means the pool is a
    /// pure pass-through.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel regions actually dispatched to workers (inline/bypassed
    /// runs are not counted) — observability for the serial-path tests.
    pub fn regions_run(&self) -> usize {
        self.regions.load(Ordering::Relaxed)
    }

    /// Split `0..n` into at most `threads` contiguous ranges of at least
    /// `min_per_range` items each and run `f(lo, hi)` over all of them,
    /// returning when every range has completed. Runs inline (never
    /// touching the workers) when the pool has one thread, the split
    /// yields a single range, or the caller is itself a pool worker.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any invocation of `f` after the region has
    /// fully quiesced (no range is left running).
    pub fn run_ranges(&self, n: usize, min_per_range: usize, f: impl Fn(usize, usize) + Sync) {
        if n == 0 {
            return;
        }
        let ranges = (n / min_per_range.max(1)).clamp(1, self.threads);
        if ranges == 1 || self.tx.is_none() || IN_POOL.with(Cell::get) {
            f(0, n);
            return;
        }
        self.regions.fetch_add(1, Ordering::Relaxed);
        let helpers = ranges - 1;
        let task: &(dyn Fn(usize, usize) + Sync) = &f;
        // SAFETY: lifetime erasure only; `region` (and thus every pointer
        // handed out below) is dead before `f` is.
        let task: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(task) };
        let region = Region {
            task,
            n,
            ranges,
            next: AtomicUsize::new(0),
            pending: Mutex::new(helpers),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        };
        let tx = self.tx.as_ref().expect("checked above");
        for _ in 0..helpers {
            tx.send(JobMsg(&region)).expect("pool workers alive");
        }
        // The caller is a full participant, then waits for the helpers.
        // SAFETY: `region` is on this stack frame and we don't leave it
        // until `pending` hits zero.
        unsafe { region.execute() };
        let mut pending = region.pending.lock().expect("pool mutex");
        while *pending != 0 {
            pending = region.done.wait(pending).expect("pool mutex");
        }
        drop(pending);
        if region.panicked.load(Ordering::Relaxed) {
            resume_unwind(Box::new("eva-nn pool task panicked"));
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Thread count from an `EVA_NN_THREADS`-style value: unset, empty, or `0`
/// falls back to [`std::thread::available_parallelism`]; anything else is
/// taken literally. An unparseable value also falls back, but logs a
/// one-time stderr warning naming the bad value instead of failing
/// silently.
pub fn threads_from_env(value: Option<&str>) -> usize {
    let auto = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match value.map(str::trim) {
        None => auto(),
        Some("") => auto(),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => auto(),
            Ok(t) => t,
            Err(_) => {
                let fallback = auto();
                warn_bad_thread_count(v, fallback);
                fallback
            }
        },
    }
}

/// One-time warning for an unparseable `EVA_NN_THREADS` value; repeated
/// probes (the pool is consulted from many entry points) stay quiet.
fn warn_bad_thread_count(value: &str, fallback: usize) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    warn_env_once(&WARNED, || {
        format!(
            "EVA_NN_THREADS={value:?} is not a valid thread count \
             (expected a non-negative integer); falling back to all cores ({fallback})"
        )
    });
}

/// The one warned-once helper behind every `EVA_NN_*` env parser
/// (`EVA_NN_THREADS` here, `EVA_NN_SIMD` in [`crate::simd`]): emit `msg`
/// to stderr the first time `flag` trips, stay quiet forever after. Each
/// variable owns its own `Once`, so one malformed variable never silences
/// another's warning.
pub(crate) fn warn_env_once(flag: &'static std::sync::Once, msg: impl FnOnce() -> String) {
    flag.call_once(|| eprintln!("[eva-nn] warning: {}", msg()));
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, created on first use from `EVA_NN_THREADS` (see
/// [`threads_from_env`]). Every kernel entry point without an explicit
/// `_with` pool argument runs here, so training, decode, and serving all
/// share one set of threads.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        Pool::new(threads_from_env(
            std::env::var("EVA_NN_THREADS").ok().as_deref(),
        ))
    })
}

/// A raw mutable base pointer that may cross threads. Used by kernels to
/// hand each range its disjoint output window.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(*mut f32);
// SAFETY: all users write through provably disjoint index ranges while the
// owning `&mut [f32]` borrow is held by the kernel entry point.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    pub(crate) fn new(slice: &mut [f32]) -> SendPtr {
        SendPtr(slice.as_mut_ptr())
    }

    /// The elements `[lo, hi)` of the underlying buffer.
    ///
    /// # Safety
    ///
    /// `[lo, hi)` must be in bounds of the original slice and disjoint
    /// from every range accessed concurrently; the returned borrow must
    /// not outlive the original `&mut [f32]`.
    pub(crate) unsafe fn slice<'a>(self, lo: usize, hi: usize) -> &'a mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(lo), hi - lo)
    }
}

/// Run `f(row_index, row)` over every `width`-sized row of `buf` in
/// parallel, partitioning rows contiguously across the pool (at least
/// `min_rows` per range). Rows are disjoint, so this is safe for any
/// embarrassingly row-parallel kernel (softmax, layer norm, per-row
/// gradients, per-head attention); per-row arithmetic is untouched, so
/// results are bit-identical to the serial loop.
///
/// # Panics
///
/// Panics if `width` is zero or does not divide `buf.len()`.
pub fn par_rows_mut<F>(pool: &Pool, buf: &mut [f32], width: usize, min_rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(width > 0, "row width must be positive");
    assert_eq!(buf.len() % width, 0, "buffer is a whole number of rows");
    let rows = buf.len() / width;
    let ptr = SendPtr::new(buf);
    pool.run_ranges(rows, min_rows, |lo, hi| {
        for r in lo..hi {
            // SAFETY: row `r` is visited by exactly one range.
            let row = unsafe { ptr.slice(r * width, (r + 1) * width) };
            f(r, row);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn split_ranges_cover_exactly() {
        for n in [1usize, 2, 7, 64, 100] {
            for ranges in 1..=8usize.min(n) {
                let mut next = 0;
                for r in 0..ranges {
                    let (lo, hi) = split_range(n, ranges, r);
                    assert_eq!(lo, next, "contiguous");
                    assert!(hi > lo, "non-empty");
                    next = hi;
                }
                assert_eq!(next, n, "covers 0..{n}");
            }
        }
    }

    #[test]
    fn run_ranges_visits_every_index_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        pool.run_ranges(1000, 1, |lo, hi| {
            for i in lo..hi {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.regions_run(), 1);
    }

    #[test]
    fn single_thread_pool_is_inline_bypass() {
        let pool = Pool::new(1);
        let count = AtomicU32::new(0);
        pool.run_ranges(100, 1, |lo, hi| {
            count.fetch_add((hi - lo) as u32, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(pool.regions_run(), 0, "no region ever dispatched");
    }

    #[test]
    fn min_per_range_collapses_small_work_inline() {
        let pool = Pool::new(4);
        pool.run_ranges(10, 16, |lo, hi| {
            assert_eq!((lo, hi), (0, 10), "one range, run inline");
        });
        assert_eq!(pool.regions_run(), 0);
    }

    #[test]
    fn nested_regions_run_inline() {
        let pool = Pool::new(3);
        let outer = AtomicU32::new(0);
        pool.run_ranges(3, 1, |lo, hi| {
            for _ in lo..hi {
                // From a pool thread this must not re-dispatch.
                pool.run_ranges(5, 1, |ilo, ihi| {
                    outer.fetch_add((ihi - ilo) as u32, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(outer.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let pool = std::sync::Arc::new(Pool::new(3));
        let total = std::sync::Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run_ranges(64, 1, |lo, hi| {
                            total.fetch_add((hi - lo) as u32, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller thread");
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 64);
    }

    #[test]
    fn par_rows_mut_writes_disjoint_rows() {
        let pool = Pool::new(4);
        let mut buf = vec![0.0f32; 33 * 7];
        par_rows_mut(&pool, &mut buf, 7, 1, |r, row| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (r * 7 + j) as f32;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn task_panic_propagates_after_quiesce() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_ranges(8, 1, |lo, _hi| {
                if lo == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic surfaced to the caller");
        // Pool still works afterwards.
        let count = AtomicU32::new(0);
        pool.run_ranges(8, 1, |lo, hi| {
            count.fetch_add((hi - lo) as u32, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn env_parsing() {
        assert_eq!(threads_from_env(Some("1")), 1);
        assert_eq!(threads_from_env(Some(" 7 ")), 7);
        let auto = threads_from_env(None);
        assert!(auto >= 1);
        assert_eq!(threads_from_env(Some("0")), auto);
        assert_eq!(threads_from_env(Some("not-a-number")), auto);
    }

    #[test]
    fn env_parsing_falls_back_on_every_malformed_shape() {
        let auto = threads_from_env(None);
        // Unset-like values fall back silently.
        assert_eq!(threads_from_env(Some("")), auto);
        assert_eq!(threads_from_env(Some("   ")), auto);
        assert_eq!(threads_from_env(Some(" 0 ")), auto);
        // Malformed values fall back too (with a one-time stderr warning),
        // never panic, and never yield a zero-thread pool.
        for bad in ["-2", "3.5", "4x", "0x10", "NaN", "١٢"] {
            let got = threads_from_env(Some(bad));
            assert_eq!(got, auto, "fallback for {bad:?}");
            assert!(got >= 1);
        }
        // A valid count still wins after warnings have fired.
        assert_eq!(threads_from_env(Some("5")), 5);
    }
}
