//! Dense row-major `f32` tensors.
//!
//! Values are immutable and cheaply clonable (`Arc`-backed); the optimizer
//! mutates parameters through [`Tensor::make_mut`].

use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// A dense row-major tensor of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// Create from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(data.len(), numel, "shape {shape:?} wants {numel} elements");
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// All zeros.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: Arc::new(vec![0.0; numel]),
        }
    }

    /// All equal to `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Tensor {
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: Arc::new(vec![value; numel]),
        }
    }

    /// A single scalar.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_vec(vec![1], vec![value])
    }

    /// Normal(0, `std`) initialization.
    pub fn randn<R: Rng + ?Sized>(shape: Vec<usize>, std: f32, rng: &mut R) -> Tensor {
        let numel: usize = shape.iter().product();
        // Box–Muller; rand's StandardNormal lives in rand_distr which we
        // avoid depending on.
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < numel {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access (copy-on-write if shared).
    pub fn make_mut(&mut self) -> &mut [f32] {
        let vec: &mut Vec<f32> = Arc::make_mut(&mut self.data);
        vec.as_mut_slice()
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not hold exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a scalar");
        self.data[0]
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics on element-count mismatch.
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.numel(), "reshape element count");
        Tensor {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Whether every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Sum of all elements (plain helper, not autograd).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// `C = A @ B` for 2-D shapes `[m,k] x [k,n]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions");
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        matmul_into(a, b, &mut out, m, k, n);
        Tensor::from_vec(vec![m, n], out)
    }
}

/// `out[m,n] += a[m,k] @ b[k,n]` (out assumed zeroed by caller). ikj loop
/// order keeps the inner loop contiguous for both `b` and `out`; `b` is
/// streamed once per *row* of `a`, which suits training shapes (`m` large,
/// activations hot). For the decode hot path (`m` = a handful of lockstep
/// lanes, `b` = model weights) prefer [`matmul_kouter_into`], which streams
/// the weights once per *call*.
///
/// Zero entries of `a` skip their rank-1 contribution entirely, so each
/// output element accumulates exactly the terms `a[i,kk] != 0` in ascending
/// `kk` order — the same order a per-row vector-matrix product would use,
/// which is what keeps batched and sequential decode bit-identical.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            let orow = &mut out[i * n..i * n + n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

/// `out[m,n] += a[m,k] @ b[k,n]` (out assumed zeroed by caller), k-outer
/// loop order: each row of `b` is loaded once and applied to every row of
/// `a`, so the full `b` matrix is streamed exactly once per call no matter
/// how many rows `a` has.
///
/// This is the batched-decode GEMM: when `m` is a few lockstep lanes and
/// `b` is a weight matrix far larger than cache, [`matmul_into`] (and the
/// per-lane vector-matrix product it generalizes) re-streams the weights
/// `m` times, which is exactly the memory traffic batching exists to
/// amortize. Here `out` (`m×n`, small) stays cache-resident across the `k`
/// sweep instead.
///
/// Per output element the accumulation visits the same non-zero `kk` terms
/// in the same ascending order as [`matmul_into`], so results are
/// bit-identical — the property the batched/sequential decode equivalence
/// tests pin down.
pub fn matmul_kouter_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for kk in 0..k {
        let brow = &b[kk * n..kk * n + n];
        for i in 0..m {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..i * n + n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

/// `out[m,n] += a[m,k] @ b^T` where `b` is `[n,k]`.
pub(crate) fn matmul_bt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += arow[kk] * brow[kk];
            }
            out[i * n + j] += acc;
        }
    }
}

/// `out[k,n] += a^T @ c` where `a` is `[m,k]`, `c` is `[m,n]`.
pub(crate) fn matmul_at_into(a: &[f32], c: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let crow = &c[i * n..i * n + n];
            let orow = &mut out[kk * n..kk * n + n];
            for j in 0..n {
                orow[j] += av * crow[j];
            }
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, " {:?}", self.data())
        } else {
            write!(f, " [{:.4}, {:.4}, …]", self.data[0], self.data[1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.max_abs(), 6.0);
        assert!(t.is_finite());
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn clone_is_shallow_and_cow_works() {
        let t = Tensor::zeros(vec![4]);
        let mut u = t.clone();
        u.make_mut()[0] = 7.0;
        assert_eq!(t.data()[0], 0.0, "original untouched");
        assert_eq!(u.data()[0], 7.0);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        // b [2,3], we compute a @ b^T.
        let b = Tensor::from_vec(vec![2, 3], vec![1., 0., 1., 0., 1., 0.]);
        let mut out = vec![0.0; 4];
        matmul_bt_into(a.data(), b.data(), &mut out, 2, 3, 2);
        assert_eq!(out, vec![4., 2., 10., 5.]);
    }

    #[test]
    fn matmul_at_matches() {
        // a [2,3], c [2,2]; out = a^T @ c is [3,2].
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let c = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.]);
        let mut out = vec![0.0; 6];
        matmul_at_into(a.data(), c.data(), &mut out, 2, 3, 2);
        assert_eq!(out, vec![1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn matmul_kouter_is_bit_identical_to_ikj() {
        // Irrational-ish values so any reassociation of the accumulation
        // would show up in the low bits; zeros exercise the skip path.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (m, k, n) = (5, 17, 13);
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let mut a = a.data().to_vec();
        a[3] = 0.0;
        a[k + 1] = 0.0;
        let b = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let mut ikj = vec![0.0f32; m * n];
        let mut kouter = vec![0.0f32; m * n];
        matmul_into(&a, b.data(), &mut ikj, m, k, n);
        matmul_kouter_into(&a, b.data(), &mut kouter, m, k, n);
        for (x, y) in ikj.iter().zip(&kouter) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn randn_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = Tensor::randn(vec![10_000], 1.0, &mut rng);
        let mean = t.sum() / 10_000.0;
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn reshape_shares_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshaped(vec![3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }
}
