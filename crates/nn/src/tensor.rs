//! Dense row-major `f32` tensors and the GEMM kernel set.
//!
//! Values are immutable and cheaply clonable (`Arc`-backed); the optimizer
//! mutates parameters through [`Tensor::make_mut`].
//!
//! ## Kernel naming scheme
//!
//! Every FLOP in the repo funnels through four accumulate-into GEMM
//! kernels, named `matmul[_<variant>]_into[_<dispatch>]`:
//!
//! | variant   | computes            | loop order / use                                    |
//! |-----------|---------------------|-----------------------------------------------------|
//! | *(none)*  | `C += A·B`          | `ikj`, activations hot — training forward           |
//! | `kouter`  | `C += A·B`          | `k`-outer, weights streamed once — batched decode   |
//! | `bt`      | `C += A·Bᵀ`         | dot-product rows — backward `dx = gy·Wᵀ`            |
//! | `at`      | `C += Aᵀ·B`         | rank-1 updates — backward `dw = xᵀ·gy`              |
//!
//! and dispatch suffix:
//!
//! - *(bare)* — threaded over the process-global [`crate::pool::global`]
//!   pool with register/cache blocking; what all production code calls.
//! - `_with` — same, over an explicit [`Pool`] (benches, thread-count
//!   tests).
//! - `_with_mode` — same, with an explicit [`SimdMode`] instead of the
//!   process-wide `EVA_NN_SIMD` choice (bench/test sweeps).
//! - `_serial` — the reference single-threaded kernel, byte-for-byte the
//!   pre-threading scalar implementation. The determinism baseline.
//!
//! **Determinism contract:** work is partitioned by *output element* (row
//! or column ranges), so each element is accumulated by exactly one thread
//! in the same ascending-`kk` term order as the serial kernel, and the
//! threaded entry points run their small-shape fallback through the same
//! [`crate::simd::Kernels`] table as the partitioned path. At any fixed
//! `EVA_NN_SIMD` mode, results are therefore bit-identical at every thread
//! count and every blocking factor — property-tested in
//! `tests/kernels.rs`, and what keeps batched and sequential decode
//! bit-identical (see [`matmul_kouter_into`]).
//!
//! **Across modes** (`off`/`sse2`/`avx2`): `matmul`, `matmul_kouter`, and
//! `matmul_at` are rank-1-update kernels whose SIMD lanes keep the scalar
//! mul-then-add rounding per element — bit-identical to `_serial` in every
//! mode. `matmul_bt` is a dot-product kernel whose SIMD form keeps one
//! accumulator per lane (AVX2 adds FMA), which reassociates the sum: its
//! SIMD results are gated by the documented error bound
//! `8 · k · ε · Σ|aᵢ·bᵢ|` per element instead (see [`crate::simd`]).
//! Bit-exact cross-process reproducibility (checkpoint resume) requires
//! running both sides at the same effective mode.

use rand::Rng;
use std::fmt;
use std::sync::Arc;

use crate::pool::{self, Pool, SendPtr};
use crate::simd::{self, Kernels, SimdMode};

/// A dense row-major tensor of `f32`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// Create from a flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(data.len(), numel, "shape {shape:?} wants {numel} elements");
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// All zeros.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: Arc::new(vec![0.0; numel]),
        }
    }

    /// All equal to `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Tensor {
        let numel: usize = shape.iter().product();
        Tensor {
            shape,
            data: Arc::new(vec![value; numel]),
        }
    }

    /// A single scalar.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_vec(vec![1], vec![value])
    }

    /// Normal(0, `std`) initialization.
    pub fn randn<R: Rng + ?Sized>(shape: Vec<usize>, std: f32, rng: &mut R) -> Tensor {
        let numel: usize = shape.iter().product();
        // Box–Muller; rand's StandardNormal lives in rand_distr which we
        // avoid depending on.
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < numel {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access (copy-on-write if shared).
    pub fn make_mut(&mut self) -> &mut [f32] {
        let vec: &mut Vec<f32> = Arc::make_mut(&mut self.data);
        vec.as_mut_slice()
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not hold exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a scalar");
        self.data[0]
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics on element-count mismatch.
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.numel(), "reshape element count");
        Tensor {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Whether every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Sum of all elements (plain helper, not autograd).
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// `C = A @ B` for 2-D shapes `[m,k] x [k,n]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions");
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        matmul_into(a, b, &mut out, m, k, n);
        Tensor::from_vec(vec![m, n], out)
    }
}

/// Multiply-accumulate count below which a GEMM always runs serially —
/// region dispatch costs a few microseconds, so tiny products never leave
/// the calling thread.
pub(crate) const PAR_MACS: usize = 16 * 1024;

/// `out[m,n] += a[m,k] @ b[k,n]` — serial reference kernel. ikj loop
/// order keeps the inner loop contiguous for both `b` and `out`; `b` is
/// streamed once per *row* of `a`, which suits training shapes (`m` large,
/// activations hot). For the decode hot path (`m` = a handful of lockstep
/// lanes, `b` = model weights) prefer [`matmul_kouter_into`], which streams
/// the weights once per *call*.
///
/// Zero entries of `a` skip their rank-1 contribution entirely, so each
/// output element accumulates exactly the terms `a[i,kk] != 0` in ascending
/// `kk` order — the same order a per-row vector-matrix product would use,
/// which is what keeps batched and sequential decode bit-identical.
pub fn matmul_into_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            let orow = &mut out[i * n..i * n + n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

/// `out[m,n] += a[m,k] @ b[k,n]` — serial reference kernel, k-outer loop
/// order: each row of `b` is loaded once and applied to every row of `a`,
/// so the full `b` matrix is streamed exactly once per call no matter how
/// many rows `a` has.
///
/// This is the batched-decode GEMM: when `m` is a few lockstep lanes and
/// `b` is a weight matrix far larger than cache, [`matmul_into`] (and the
/// per-lane vector-matrix product it generalizes) re-streams the weights
/// `m` times, which is exactly the memory traffic batching exists to
/// amortize. Here `out` (`m×n`, small) stays cache-resident across the `k`
/// sweep instead.
///
/// Per output element the accumulation visits the same non-zero `kk` terms
/// in the same ascending order as [`matmul_into`], so results are
/// bit-identical — the property the batched/sequential decode equivalence
/// tests pin down.
pub fn matmul_kouter_into_serial(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for kk in 0..k {
        let brow = &b[kk * n..kk * n + n];
        for i in 0..m {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..i * n + n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

/// `out[m,n] += a[m,k] @ b^T` where `b` is `[n,k]` — serial reference
/// kernel. One ascending-`kk` dot product per output element.
pub fn matmul_bt_into_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        for j in 0..n {
            let brow = &b[j * k..j * k + k];
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += arow[kk] * brow[kk];
            }
            out[i * n + j] += acc;
        }
    }
}

/// `out[k,n] += a^T @ c` where `a` is `[m,k]`, `c` is `[m,n]` — serial
/// reference kernel. Per output element the terms run in ascending `i`.
pub fn matmul_at_into_serial(a: &[f32], c: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let crow = &c[i * n..i * n + n];
            let orow = &mut out[kk * n..kk * n + n];
            for j in 0..n {
                orow[j] += av * crow[j];
            }
        }
    }
}

// --- Blocked single-range bodies. The inner rank-1 updates and dot
// --- products come from a `simd::Kernels` table; with the scalar table
// --- these are bit-identical to the serial kernels (elementwise-
// --- independent lanes, one ascending accumulation chain per element),
// --- and the SIMD tables honor the per-kernel contract in the module
// --- docs.

/// ikj block over full rows: `a_rows` is `[rows, k]`, `out_rows` the
/// matching `[rows, n]` window.
fn ikj_rows(
    kn: &Kernels,
    a_rows: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
) {
    for i in 0..rows {
        for kk in 0..k {
            let av = a_rows[i * k + kk];
            if av == 0.0 {
                continue;
            }
            (kn.axpy)(av, &b[kk * n..kk * n + n], &mut out_rows[i * n..i * n + n]);
        }
    }
}

/// ikj block over the column window `[jlo, jhi)` of every row.
///
/// # Safety
///
/// `out` must point at the full `[m, n]` buffer and no concurrent user may
/// touch columns `[jlo, jhi)`.
unsafe fn ikj_cols(
    kn: &Kernels,
    a: &[f32],
    b: &[f32],
    out: SendPtr,
    m: usize,
    k: usize,
    n: usize,
    jlo: usize,
    jhi: usize,
) {
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n + jlo..kk * n + jhi];
            let orow = out.slice(i * n + jlo, i * n + jhi);
            (kn.axpy)(av, brow, orow);
        }
    }
}

/// k-outer block over full rows `[ilo, ihi)`: streams `b` once for the
/// range.
fn kouter_rows(
    kn: &Kernels,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
    k: usize,
    n: usize,
    ilo: usize,
    ihi: usize,
) {
    for kk in 0..k {
        let brow = &b[kk * n..kk * n + n];
        for i in ilo..ihi {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            (kn.axpy)(av, brow, &mut out_rows[(i - ilo) * n..(i - ilo) * n + n]);
        }
    }
}

/// k-outer block over the column window `[jlo, jhi)`: each range streams
/// its disjoint slice of `b` exactly once, so the whole call still reads
/// `b` once in total — the property batched decode relies on.
///
/// # Safety
///
/// `out` must point at the full `[m, n]` buffer and no concurrent user may
/// touch columns `[jlo, jhi)`.
unsafe fn kouter_cols(
    kn: &Kernels,
    a: &[f32],
    b: &[f32],
    out: SendPtr,
    m: usize,
    k: usize,
    n: usize,
    jlo: usize,
    jhi: usize,
) {
    for kk in 0..k {
        let brow = &b[kk * n + jlo..kk * n + jhi];
        for i in 0..m {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let orow = out.slice(i * n + jlo, i * n + jhi);
            (kn.axpy)(av, brow, orow);
        }
    }
}

/// `a @ bᵀ` over full output rows, with the dot products `kk`-tiled four
/// columns at a time: one load of `arow[kk]` feeds four accumulators, each
/// still a single chain identical to the mode's single-column dot (scalar
/// mode: bit-identical to serial).
fn bt_rows(
    kn: &Kernels,
    a: &[f32],
    b: &[f32],
    out_rows: &mut [f32],
    k: usize,
    n: usize,
    ilo: usize,
    ihi: usize,
) {
    for i in ilo..ihi {
        let arow = &a[i * k..i * k + k];
        let orow = &mut out_rows[(i - ilo) * n..(i - ilo) * n + n];
        bt_row(kn, arow, b, orow, k, 0, n);
    }
}

/// `a @ bᵀ` over the column window `[jlo, jhi)` of every row.
///
/// # Safety
///
/// `out` must point at the full `[m, n]` buffer and no concurrent user may
/// touch columns `[jlo, jhi)`.
unsafe fn bt_cols(
    kn: &Kernels,
    a: &[f32],
    b: &[f32],
    out: SendPtr,
    m: usize,
    k: usize,
    n: usize,
    jlo: usize,
    jhi: usize,
) {
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        let orow = out.slice(i * n + jlo, i * n + jhi);
        bt_row(kn, arow, b, orow, k, jlo, jhi);
    }
}

/// One output row of `a @ bᵀ` restricted to columns `[jlo, jhi)`;
/// `orow[j - jlo]` receives column `j`. The mode's `dot4` computes each
/// column exactly as its `dot1` would, so results do not depend on which
/// columns share a tile — bt stays partition-invariant within a mode.
#[inline]
fn bt_row(
    kn: &Kernels,
    arow: &[f32],
    b: &[f32],
    orow: &mut [f32],
    k: usize,
    jlo: usize,
    jhi: usize,
) {
    let mut j = jlo;
    while j + 4 <= jhi {
        let [a0, a1, a2, a3] = (kn.dot4)(
            arow,
            &b[j * k..j * k + k],
            &b[(j + 1) * k..(j + 1) * k + k],
            &b[(j + 2) * k..(j + 2) * k + k],
            &b[(j + 3) * k..(j + 3) * k + k],
        );
        orow[j - jlo] += a0;
        orow[j + 1 - jlo] += a1;
        orow[j + 2 - jlo] += a2;
        orow[j + 3 - jlo] += a3;
        j += 4;
    }
    while j < jhi {
        orow[j - jlo] += (kn.dot1)(arow, &b[j * k..j * k + k]);
        j += 1;
    }
}

/// `aᵀ @ c` over the output-row window `[klo, khi)` (rows of `out` are
/// indexed by `kk`); every range streams `a` and `c` but owns its rows.
fn at_rows(
    kn: &Kernels,
    a: &[f32],
    c: &[f32],
    out_rows: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    klo: usize,
    khi: usize,
) {
    for i in 0..m {
        let crow = &c[i * n..i * n + n];
        for kk in klo..khi {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            (kn.axpy)(av, crow, &mut out_rows[(kk - klo) * n..(kk - klo) * n + n]);
        }
    }
}

// --- Threaded entry points.

fn check_gemm(a: &[f32], b: &[f32], out: &[f32], al: usize, bl: usize, ol: usize) {
    assert_eq!(a.len(), al, "lhs length");
    assert_eq!(b.len(), bl, "rhs length");
    assert_eq!(out.len(), ol, "out length");
}

fn matmul_into_impl(
    kn: &Kernels,
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm(a, b, out, m * k, k * n, m * n);
    let t = pool.threads();
    if t == 1 || m * k * n < PAR_MACS {
        // Same kernel table as the partitioned path, so a fixed mode is
        // bit-identical at every thread count (serial included).
        return ikj_rows(kn, a, b, out, m, k, n);
    }
    if m >= t {
        let ptr = SendPtr::new(out);
        pool.run_ranges(m, (PAR_MACS / (k * n).max(1)).max(1), |lo, hi| {
            // SAFETY: row ranges are disjoint.
            let out_rows = unsafe { ptr.slice(lo * n, hi * n) };
            ikj_rows(kn, &a[lo * k..hi * k], b, out_rows, hi - lo, k, n);
        });
    } else if n >= t {
        let ptr = SendPtr::new(out);
        pool.run_ranges(n, (PAR_MACS / (m * k).max(1)).max(1), |jlo, jhi| {
            // SAFETY: column ranges are disjoint.
            unsafe { ikj_cols(kn, a, b, ptr, m, k, n, jlo, jhi) }
        });
    } else {
        ikj_rows(kn, a, b, out, m, k, n);
    }
}

/// [`matmul_into_with`] under an explicit [`SimdMode`] (bench/test
/// sweeps).
pub fn matmul_into_with_mode(
    mode: SimdMode,
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_into_impl(simd::kernels_for(mode), pool, a, b, out, m, k, n);
}

/// [`matmul_into_serial`] threaded over an explicit pool: output rows are
/// partitioned when `m` is large (training shapes), columns otherwise.
/// Bit-identical to the serial kernel at every thread count (rank-1
/// updates stay exact in every SIMD mode — see the module docs).
pub fn matmul_into_with(
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_into_impl(simd::active(), pool, a, b, out, m, k, n);
}

/// [`matmul_into_serial`] threaded over the process-global pool — the
/// kernel all production call sites use.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_into_impl(simd::active(), pool::global(), a, b, out, m, k, n);
}

/// [`matmul_kouter_into_serial`] threaded over an explicit pool: output
/// *columns* are partitioned first, so each range streams a disjoint slice
/// of the weight matrix exactly once — the whole call still reads `b` once
/// no matter the thread count, and decode shapes (`m` as small as 1)
/// parallelize fully. Bit-identical to the serial kernel.
pub fn matmul_kouter_into_with(
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_kouter_into_impl(simd::active(), pool, a, b, out, m, k, n);
}

/// [`matmul_kouter_into_with`] under an explicit [`SimdMode`].
pub fn matmul_kouter_into_with_mode(
    mode: SimdMode,
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_kouter_into_impl(simd::kernels_for(mode), pool, a, b, out, m, k, n);
}

fn matmul_kouter_into_impl(
    kn: &Kernels,
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm(a, b, out, m * k, k * n, m * n);
    let t = pool.threads();
    if t == 1 || m * k * n < PAR_MACS {
        return kouter_rows(kn, a, b, out, k, n, 0, m);
    }
    if n >= t {
        let ptr = SendPtr::new(out);
        pool.run_ranges(n, (PAR_MACS / (m * k).max(1)).max(1), |jlo, jhi| {
            // SAFETY: column ranges are disjoint.
            unsafe { kouter_cols(kn, a, b, ptr, m, k, n, jlo, jhi) }
        });
    } else if m >= t {
        let ptr = SendPtr::new(out);
        pool.run_ranges(m, (PAR_MACS / (k * n).max(1)).max(1), |ilo, ihi| {
            // SAFETY: row ranges are disjoint.
            let out_rows = unsafe { ptr.slice(ilo * n, ihi * n) };
            kouter_rows(kn, a, b, out_rows, k, n, ilo, ihi);
        });
    } else {
        kouter_rows(kn, a, b, out, k, n, 0, m);
    }
}

/// [`matmul_kouter_into_serial`] threaded over the process-global pool.
pub fn matmul_kouter_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_kouter_into_impl(simd::active(), pool::global(), a, b, out, m, k, n);
}

/// [`matmul_bt_into_serial`] threaded over an explicit pool, with
/// `kk`-tiled four-wide dot products. Output rows are partitioned when `m`
/// is large, columns otherwise. Bit-identical to the serial kernel in
/// scalar mode and at every thread count within any fixed mode; SIMD
/// modes reassociate the dot sums within the documented error bound (see
/// the module docs).
pub fn matmul_bt_into_with(
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_bt_into_impl(simd::active(), pool, a, b, out, m, k, n);
}

/// [`matmul_bt_into_with`] under an explicit [`SimdMode`].
pub fn matmul_bt_into_with_mode(
    mode: SimdMode,
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_bt_into_impl(simd::kernels_for(mode), pool, a, b, out, m, k, n);
}

fn matmul_bt_into_impl(
    kn: &Kernels,
    pool: &Pool,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm(a, b, out, m * k, n * k, m * n);
    let t = pool.threads();
    if t == 1 || m * k * n < PAR_MACS {
        return bt_rows(kn, a, b, out, k, n, 0, m);
    }
    if m >= t {
        let ptr = SendPtr::new(out);
        pool.run_ranges(m, (PAR_MACS / (k * n).max(1)).max(1), |ilo, ihi| {
            // SAFETY: row ranges are disjoint.
            let out_rows = unsafe { ptr.slice(ilo * n, ihi * n) };
            bt_rows(kn, a, b, out_rows, k, n, ilo, ihi);
        });
    } else if n >= t {
        let ptr = SendPtr::new(out);
        pool.run_ranges(n, (PAR_MACS / (m * k).max(1)).max(1), |jlo, jhi| {
            // SAFETY: column ranges are disjoint.
            unsafe { bt_cols(kn, a, b, ptr, m, k, n, jlo, jhi) }
        });
    } else {
        bt_rows(kn, a, b, out, k, n, 0, m);
    }
}

/// [`matmul_bt_into_serial`] threaded over the process-global pool.
pub fn matmul_bt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_bt_into_impl(simd::active(), pool::global(), a, b, out, m, k, n);
}

/// [`matmul_at_into_serial`] threaded over an explicit pool: the output's
/// `k` rows are partitioned (each range owns `out[klo..khi]` and streams
/// `a`/`c` whole), preserving the ascending-`i` term order per element.
/// Bit-identical to the serial kernel.
pub fn matmul_at_into_with(
    pool: &Pool,
    a: &[f32],
    c: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_at_into_impl(simd::active(), pool, a, c, out, m, k, n);
}

/// [`matmul_at_into_with`] under an explicit [`SimdMode`].
pub fn matmul_at_into_with_mode(
    mode: SimdMode,
    pool: &Pool,
    a: &[f32],
    c: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_at_into_impl(simd::kernels_for(mode), pool, a, c, out, m, k, n);
}

fn matmul_at_into_impl(
    kn: &Kernels,
    pool: &Pool,
    a: &[f32],
    c: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm(a, c, out, m * k, m * n, k * n);
    let t = pool.threads();
    if t == 1 || m * k * n < PAR_MACS || k < t {
        return at_rows(kn, a, c, out, m, k, n, 0, k);
    }
    let ptr = SendPtr::new(out);
    pool.run_ranges(k, (PAR_MACS / (m * n).max(1)).max(1), |klo, khi| {
        // SAFETY: output-row ranges are disjoint.
        let out_rows = unsafe { ptr.slice(klo * n, khi * n) };
        at_rows(kn, a, c, out_rows, m, k, n, klo, khi);
    });
}

/// [`matmul_at_into_serial`] threaded over the process-global pool.
pub fn matmul_at_into(a: &[f32], c: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_at_into_impl(simd::active(), pool::global(), a, c, out, m, k, n);
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, " {:?}", self.data())
        } else {
            write!(f, " [{:.4}, {:.4}, …]", self.data[0], self.data[1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.sum(), 21.0);
        assert_eq!(t.max_abs(), 6.0);
        assert!(t.is_finite());
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn clone_is_shallow_and_cow_works() {
        let t = Tensor::zeros(vec![4]);
        let mut u = t.clone();
        u.make_mut()[0] = 7.0;
        assert_eq!(t.data()[0], 0.0, "original untouched");
        assert_eq!(u.data()[0], 7.0);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        // b [2,3], we compute a @ b^T.
        let b = Tensor::from_vec(vec![2, 3], vec![1., 0., 1., 0., 1., 0.]);
        let mut out = vec![0.0; 4];
        matmul_bt_into(a.data(), b.data(), &mut out, 2, 3, 2);
        assert_eq!(out, vec![4., 2., 10., 5.]);
    }

    #[test]
    fn matmul_at_matches() {
        // a [2,3], c [2,2]; out = a^T @ c is [3,2].
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let c = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.]);
        let mut out = vec![0.0; 6];
        matmul_at_into(a.data(), c.data(), &mut out, 2, 3, 2);
        assert_eq!(out, vec![1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn matmul_kouter_is_bit_identical_to_ikj() {
        // Irrational-ish values so any reassociation of the accumulation
        // would show up in the low bits; zeros exercise the skip path.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (m, k, n) = (5, 17, 13);
        let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
        let mut a = a.data().to_vec();
        a[3] = 0.0;
        a[k + 1] = 0.0;
        let b = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let mut ikj = vec![0.0f32; m * n];
        let mut kouter = vec![0.0f32; m * n];
        matmul_into(&a, b.data(), &mut ikj, m, k, n);
        matmul_kouter_into(&a, b.data(), &mut kouter, m, k, n);
        for (x, y) in ikj.iter().zip(&kouter) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn randn_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = Tensor::randn(vec![10_000], 1.0, &mut rng);
        let mean = t.sum() / 10_000.0;
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn reshape_shares_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshaped(vec![3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }
}
