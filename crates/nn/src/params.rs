//! Named parameter collections with binary save/load.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use crate::tensor::Tensor;

/// A named, ordered collection of trainable tensors.
///
/// Models own a `ParamSet`; each training step they register the tensors on
/// a tape (cheap: tensors are `Arc`-backed), run backward, and hand the
/// gradients to the optimizer which updates the set in place.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> ParamSet {
        ParamSet::default()
    }

    /// Register a parameter; returns its index.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn register(&mut self, name: impl Into<String>, tensor: Tensor) -> usize {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "duplicate parameter name {name:?}"
        );
        self.names.push(name);
        self.tensors.push(tensor);
        self.tensors.len() - 1
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::numel).sum()
    }

    /// The tensor at an index.
    pub fn tensor(&self, index: usize) -> &Tensor {
        &self.tensors[index]
    }

    /// Name at an index.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// All tensors (for optimizer construction).
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Mutable tensors (for optimizer updates).
    pub fn tensors_mut(&mut self) -> &mut [Tensor] {
        &mut self.tensors
    }

    /// Look up a parameter index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Replace a tensor (shape must match).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set(&mut self, index: usize, tensor: Tensor) {
        assert_eq!(
            self.tensors[index].shape(),
            tensor.shape(),
            "shape mismatch"
        );
        self.tensors[index] = tensor;
    }

    /// Serialize to a compact little-endian binary stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer (a `&mut` reference works).
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"EVAPARM1")?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        for (name, tensor) in self.names.iter().zip(&self.tensors) {
            let nb = name.as_bytes();
            w.write_all(&(nb.len() as u64).to_le_bytes())?;
            w.write_all(nb)?;
            w.write_all(&(tensor.shape().len() as u64).to_le_bytes())?;
            for &d in tensor.shape() {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for &v in tensor.data() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialize from [`ParamSet::save`] output.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on magic/format mismatch and propagates reader
    /// errors.
    pub fn load<R: Read>(mut r: R) -> io::Result<ParamSet> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"EVAPARM1" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut u64buf = [0u8; 8];
        let mut read_u64 = |r: &mut R| -> io::Result<u64> {
            r.read_exact(&mut u64buf)?;
            Ok(u64::from_le_bytes(u64buf))
        };
        let count = read_u64(&mut r)? as usize;
        let mut set = ParamSet::new();
        for _ in 0..count {
            let name_len = read_u64(&mut r)? as usize;
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let rank = read_u64(&mut r)? as usize;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(read_u64(&mut r)? as usize);
            }
            let numel: usize = shape.iter().product();
            let mut data = vec![0.0f32; numel];
            let mut fbuf = [0u8; 4];
            for slot in &mut data {
                r.read_exact(&mut fbuf)?;
                *slot = f32::from_le_bytes(fbuf);
            }
            set.register(name, Tensor::from_vec(shape, data));
        }
        Ok(set)
    }

    /// Copy values from another set, matching by name (shapes must agree on
    /// matched names). Returns how many tensors were copied.
    pub fn copy_matching(&mut self, other: &ParamSet) -> usize {
        let by_name: BTreeMap<&str, usize> = other
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut copied = 0;
        for i in 0..self.len() {
            if let Some(&j) = by_name.get(self.names[i].as_str()) {
                if other.tensors[j].shape() == self.tensors[i].shape() {
                    self.tensors[i] = other.tensors[j].clone();
                    copied += 1;
                }
            }
        }
        copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut p = ParamSet::new();
        let i = p.register("w", Tensor::zeros(vec![2, 3]));
        let j = p.register("b", Tensor::zeros(vec![3]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar_count(), 9);
        assert_eq!(p.index_of("w"), Some(i));
        assert_eq!(p.index_of("b"), Some(j));
        assert_eq!(p.name(i), "w");
        assert!(p.index_of("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut p = ParamSet::new();
        p.register("w", Tensor::zeros(vec![1]));
        p.register("w", Tensor::zeros(vec![1]));
    }

    #[test]
    fn save_load_round_trip() {
        let mut p = ParamSet::new();
        p.register(
            "alpha",
            Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 3.5, 0.25]),
        );
        p.register("beta", Tensor::from_vec(vec![3], vec![9.0, 8.0, 7.0]));
        let mut buf = Vec::new();
        p.save(&mut buf).unwrap();
        let q = ParamSet::load(buf.as_slice()).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.name(0), "alpha");
        assert_eq!(q.tensor(0).data(), p.tensor(0).data());
        assert_eq!(q.tensor(1).shape(), &[3]);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(ParamSet::load(&b"NOTPARMS"[..]).is_err());
        assert!(ParamSet::load(&b"short"[..]).is_err());
    }

    #[test]
    fn copy_matching_by_name() {
        let mut a = ParamSet::new();
        a.register("w", Tensor::zeros(vec![2]));
        a.register("extra", Tensor::zeros(vec![1]));
        let mut b = ParamSet::new();
        b.register("w", Tensor::from_vec(vec![2], vec![5.0, 6.0]));
        b.register("other", Tensor::from_vec(vec![1], vec![1.0]));
        let copied = a.copy_matching(&b);
        assert_eq!(copied, 1);
        assert_eq!(a.tensor(0).data(), &[5.0, 6.0]);
    }
}
