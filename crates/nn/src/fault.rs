//! Deterministic, seeded fault injection for chaos testing.
//!
//! Production robustness claims ("the service self-heals after worker
//! panics", "a torn write never corrupts an artifact") are only worth
//! anything if they can be *demonstrated*, which requires failures on
//! demand — and reproducible ones, or a chaos-test failure can never be
//! debugged. This module provides both:
//!
//! - A [`FaultPlan`] is parsed from the `EVA_FAULT_PLAN` environment
//!   variable (or [`Fault::parse`] directly in tests), e.g.
//!
//!   ```text
//!   EVA_FAULT_PLAN="io_write:p=0.05;worker_panic:nth=37;decode_slow:ms=200:every=3;seed=42"
//!   ```
//!
//!   Each `;`-separated clause names an injection point and a trigger:
//!   `p=F` (fire each hit with probability `F`, drawn from a seeded
//!   ChaCha8 stream), `nth=N` (fire exactly on the N-th hit, 1-based), or
//!   `every=N` (fire on every N-th hit). `times=K` caps total fires and
//!   `ms=N` parameterizes delay faults. A standalone `seed=N` clause
//!   seeds the probability streams (default 0).
//!
//! - Injection points are threaded through the stack's failure-critical
//!   seams (see [`FaultPoint`]); each is a single
//!   [`active()`] check — one relaxed atomic load — when no plan is
//!   installed, so the happy path stays zero-cost and bit-identical.
//!
//! - Determinism: hit counting and probability draws advance under one
//!   per-rule lock, so the verdict of the k-th hit at a point depends
//!   only on the plan and the seed — never on thread interleaving. The
//!   [`Fault::fired_hits`] log lets a chaos test assert that two runs of
//!   the same plan injected the identical sequence.
//!
//! The plan is process-global ([`global`]), lazily initialized from the
//! environment; tests [`install`] plans directly and [`clear`] them when
//! done (fault-driven tests must serialize on a lock — the injector is
//! process-wide by design, exactly like the real failures it simulates).

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Environment variable holding the fault plan.
pub const FAULT_PLAN_ENV: &str = "EVA_FAULT_PLAN";

/// Cap on the per-rule fired-hit log; chaos runs fire far fewer faults,
/// and an unbounded log must not become a leak in a long soak.
const FIRE_LOG_CAP: usize = 4096;

/// A named seam where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// [`crate::ckpt::atomic_write`] fails before writing its temp file
    /// (as if the filesystem refused the write).
    IoWrite,
    /// [`crate::ckpt::atomic_write`] fails after the temp file is written
    /// and fsynced but before the rename — a torn write. The target path
    /// is untouched, exactly like a crash at the commit point.
    IoRename,
    /// Artifact-directory loading fails before reading the manifest.
    ArtifactLoad,
    /// A batched decode step stalls for the rule's `ms` parameter before
    /// computing (outputs are unchanged — only latency is injected).
    DecodeSlow,
    /// A serve worker panics right after picking up a micro-batch, with
    /// requests in flight.
    WorkerPanic,
    /// A single SPICE fitness evaluation misbehaves: with `ms=N` it stalls
    /// that long before computing; without a delay the evaluation is
    /// reported unmeasurable (fitness `-inf`), like a sim that failed to
    /// converge. Hit once per candidate evaluation.
    SpiceEval,
    /// A discovery job's sizing stage faults at a GA generation boundary:
    /// with `ms=N` the generation stalls; without a delay the job thread
    /// panics (the job must still terminate with a typed event).
    SizeStep,
    /// A single SPICE fitness evaluation has its work budget exhausted
    /// before running: the classified evaluation path reports it as a
    /// deterministic budget failure (with `ms=N` the evaluation first
    /// stalls that long). Hit once per classified candidate evaluation.
    SimBudget,
}

impl FaultPoint {
    /// Every defined injection point.
    pub const ALL: [FaultPoint; 8] = [
        FaultPoint::IoWrite,
        FaultPoint::IoRename,
        FaultPoint::ArtifactLoad,
        FaultPoint::DecodeSlow,
        FaultPoint::WorkerPanic,
        FaultPoint::SpiceEval,
        FaultPoint::SizeStep,
        FaultPoint::SimBudget,
    ];

    /// The plan-syntax name of this point.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultPoint::IoWrite => "io_write",
            FaultPoint::IoRename => "io_rename",
            FaultPoint::ArtifactLoad => "artifact_load",
            FaultPoint::DecodeSlow => "decode_slow",
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::SpiceEval => "spice_eval",
            FaultPoint::SizeStep => "size_step",
            FaultPoint::SimBudget => "sim_budget",
        }
    }

    fn from_name(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.as_str() == name)
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// When a rule fires, relative to its hit counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire each hit independently with this probability, drawn from the
    /// rule's seeded ChaCha8 stream.
    Prob(f64),
    /// Fire exactly on the N-th hit (1-based), once.
    Nth(u64),
    /// Fire on every N-th hit (N, 2N, 3N, …).
    Every(u64),
}

/// One parsed plan clause: a point, a trigger, and parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Where the fault injects.
    pub point: FaultPoint,
    /// When it fires.
    pub trigger: Trigger,
    /// Cap on total fires (`None` = unlimited).
    pub times: Option<u64>,
    /// Delay parameter in milliseconds (used by delay faults).
    pub delay_ms: u64,
}

/// A malformed `EVA_FAULT_PLAN` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// The offending clause, verbatim.
    pub clause: String,
    /// What is wrong with it.
    pub detail: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed {FAULT_PLAN_ENV} clause {:?}: {}",
            self.clause, self.detail
        )
    }
}

impl std::error::Error for FaultPlanError {}

/// Mutable per-rule state. Hit counting, the probability draw, and the
/// fire decision all happen under this one lock so the k-th hit's verdict
/// is a pure function of (plan, seed, k) — thread interleaving can reorder
/// *which thread* observes hit k, never what hit k decides.
#[derive(Debug)]
struct RuleState {
    hits: u64,
    fires: u64,
    rng: ChaCha8Rng,
    fired_hits: Vec<u64>,
}

#[derive(Debug)]
struct RuntimeRule {
    rule: FaultRule,
    state: Mutex<RuleState>,
}

/// One injected fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultShot {
    /// The point that fired.
    pub point: FaultPoint,
    /// 1-based index of this fire at its rule.
    pub seq: u64,
    /// 1-based hit index the fire landed on.
    pub hit: u64,
    /// The rule's delay parameter.
    pub delay_ms: u64,
}

/// A parsed, seeded fault plan with its runtime counters. An empty plan
/// ([`Fault::none`]) is the no-op every helper short-circuits on.
#[derive(Debug)]
pub struct Fault {
    seed: u64,
    rules: Vec<RuntimeRule>,
}

impl Fault {
    /// The empty plan: nothing ever fires.
    pub fn none() -> Fault {
        Fault {
            seed: 0,
            rules: Vec::new(),
        }
    }

    /// Parse a plan string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] naming the first malformed clause:
    /// unknown point, unknown key, missing/duplicate trigger, or an
    /// out-of-range value.
    pub fn parse(plan: &str) -> Result<Fault, FaultPlanError> {
        let mut seed = 0u64;
        let mut rules: Vec<FaultRule> = Vec::new();
        for clause in plan.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(value) = clause.strip_prefix("seed=") {
                seed = value.trim().parse().map_err(|_| FaultPlanError {
                    clause: clause.to_owned(),
                    detail: format!("seed must be a u64, got {value:?}"),
                })?;
                continue;
            }
            rules.push(parse_rule(clause)?);
        }
        Ok(Fault::from_rules(seed, rules))
    }

    /// Build a plan from already-parsed rules. Each rule's probability
    /// stream is seeded from `seed` and the rule's position, so two plans
    /// with the same rules and seed replay identically.
    pub fn from_rules(seed: u64, rules: Vec<FaultRule>) -> Fault {
        let rules = rules
            .into_iter()
            .enumerate()
            .map(|(i, rule)| RuntimeRule {
                rule,
                state: Mutex::new(RuleState {
                    hits: 0,
                    fires: 0,
                    rng: ChaCha8Rng::seed_from_u64(
                        seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                    fired_hits: Vec::new(),
                }),
            })
            .collect();
        Fault { seed, rules }
    }

    /// Read `EVA_FAULT_PLAN` and parse it; unset or empty means the
    /// no-op plan.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan. Chaos injection is an explicit opt-in;
    /// silently ignoring a typo'd plan would report healthy runs that
    /// never injected anything. [`crate::fault::global`] is touched
    /// eagerly at service startup so this aborts before any traffic.
    pub fn from_env() -> Fault {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(plan) if !plan.trim().is_empty() => Fault::parse(&plan)
                .unwrap_or_else(|e| panic!("{FAULT_PLAN_ENV}={plan:?} did not parse: {e}")),
            _ => Fault::none(),
        }
    }

    /// The seed the probability streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any rule is present.
    pub fn is_active(&self) -> bool {
        !self.rules.is_empty()
    }

    /// The parsed rules, in plan order.
    pub fn rules(&self) -> Vec<FaultRule> {
        self.rules.iter().map(|r| r.rule.clone()).collect()
    }

    /// Record one hit at `point` and decide whether a fault fires.
    /// Every rule registered for the point observes the hit; the first
    /// rule that fires wins (its shot is returned).
    pub fn should_fire(&self, point: FaultPoint) -> Option<FaultShot> {
        let mut shot = None;
        for runtime in self.rules.iter().filter(|r| r.rule.point == point) {
            let mut state = runtime.state.lock().expect("fault rule lock");
            state.hits += 1;
            let hit = state.hits;
            let due = match runtime.rule.trigger {
                // Draw unconditionally so the stream position always
                // equals the hit count, even past the `times` cap.
                Trigger::Prob(p) => state.rng.gen::<f64>() < p,
                Trigger::Nth(n) => hit == n,
                Trigger::Every(n) => hit % n == 0,
            };
            let capped = runtime.rule.times.is_some_and(|t| state.fires >= t);
            if due && !capped {
                state.fires += 1;
                if state.fired_hits.len() < FIRE_LOG_CAP {
                    state.fired_hits.push(hit);
                }
                if shot.is_none() {
                    shot = Some(FaultShot {
                        point,
                        seq: state.fires,
                        hit,
                        delay_ms: runtime.rule.delay_ms,
                    });
                }
            }
        }
        shot
    }

    /// Total hits observed at `point`, summed over its rules.
    pub fn hits(&self, point: FaultPoint) -> u64 {
        self.for_point(point, |s| s.hits)
    }

    /// Total fires at `point`, summed over its rules.
    pub fn fires(&self, point: FaultPoint) -> u64 {
        self.for_point(point, |s| s.fires)
    }

    /// The 1-based hit indices at which `point` fired, in order, over all
    /// its rules (concatenated in rule order). Two runs of the same plan
    /// and workload produce the same log — the determinism contract chaos
    /// tests assert.
    pub fn fired_hits(&self, point: FaultPoint) -> Vec<u64> {
        let mut log = Vec::new();
        for runtime in self.rules.iter().filter(|r| r.rule.point == point) {
            log.extend_from_slice(&runtime.state.lock().expect("fault rule lock").fired_hits);
        }
        log
    }

    fn for_point(&self, point: FaultPoint, f: impl Fn(&RuleState) -> u64) -> u64 {
        self.rules
            .iter()
            .filter(|r| r.rule.point == point)
            .map(|r| f(&r.state.lock().expect("fault rule lock")))
            .sum()
    }
}

fn parse_rule(clause: &str) -> Result<FaultRule, FaultPlanError> {
    let err = |detail: String| FaultPlanError {
        clause: clause.to_owned(),
        detail,
    };
    let mut parts = clause.split(':');
    let name = parts.next().unwrap_or("").trim();
    let point = FaultPoint::from_name(name).ok_or_else(|| {
        err(format!(
            "unknown injection point {name:?} (known: {})",
            FaultPoint::ALL.map(FaultPoint::as_str).join(", ")
        ))
    })?;
    let mut trigger: Option<Trigger> = None;
    let mut times = None;
    let mut delay_ms = 0u64;
    for part in parts {
        let part = part.trim();
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err(format!("expected key=value, got {part:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        let parsed_u64 = || -> Result<u64, FaultPlanError> {
            value
                .parse::<u64>()
                .map_err(|_| err(format!("{key} must be a u64, got {value:?}")))
        };
        let next = match key {
            "p" => {
                let p: f64 = value
                    .parse()
                    .map_err(|_| err(format!("p must be a float, got {value:?}")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(err(format!("p must be in [0, 1], got {p}")));
                }
                Some(Trigger::Prob(p))
            }
            "nth" => {
                let n = parsed_u64()?;
                if n == 0 {
                    return Err(err("nth is 1-based; 0 never fires".to_owned()));
                }
                Some(Trigger::Nth(n))
            }
            "every" => {
                let n = parsed_u64()?;
                if n == 0 {
                    return Err(err("every must be >= 1".to_owned()));
                }
                Some(Trigger::Every(n))
            }
            "times" => {
                times = Some(parsed_u64()?);
                None
            }
            "ms" => {
                delay_ms = parsed_u64()?;
                None
            }
            other => return Err(err(format!("unknown key {other:?}"))),
        };
        if let Some(t) = next {
            if trigger.is_some() {
                return Err(err("more than one of p/nth/every".to_owned()));
            }
            trigger = Some(t);
        }
    }
    Ok(FaultRule {
        point,
        trigger: trigger.ok_or_else(|| err("missing trigger (one of p/nth/every)".to_owned()))?,
        times,
        delay_ms,
    })
}

/// `true` while a non-empty plan is installed. One relaxed load — this is
/// the whole cost of an injection point on the happy path.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<RwLock<Arc<Fault>>> = OnceLock::new();

fn cell() -> &'static RwLock<Arc<Fault>> {
    GLOBAL.get_or_init(|| {
        let fault = Arc::new(Fault::from_env());
        ACTIVE.store(fault.is_active(), Ordering::Release);
        RwLock::new(fault)
    })
}

/// The process-wide plan, lazily parsed from `EVA_FAULT_PLAN` on first
/// use. Touch this eagerly at startup (the serve service does) so a
/// malformed plan aborts before traffic instead of inside a worker.
pub fn global() -> Arc<Fault> {
    Arc::clone(&cell().read().expect("fault plan lock"))
}

/// Replace the process-wide plan (chaos tests install parsed plans
/// directly instead of mutating the environment). Returns the installed
/// handle so the caller can read its counters after the run.
pub fn install(fault: Fault) -> Arc<Fault> {
    let fault = Arc::new(fault);
    let cell = cell();
    *cell.write().expect("fault plan lock") = Arc::clone(&fault);
    ACTIVE.store(fault.is_active(), Ordering::Release);
    fault
}

/// Remove any installed plan (back to the zero-cost no-op).
pub fn clear() {
    install(Fault::none());
}

/// Whether a non-empty plan is installed. Initializes from the
/// environment on first call.
pub fn active() -> bool {
    let _ = cell();
    ACTIVE.load(Ordering::Relaxed)
}

/// Record a hit at `point` against the global plan; `None` when inactive
/// or the point's rules do not fire.
pub fn fires(point: FaultPoint) -> Option<FaultShot> {
    if !active() {
        return None;
    }
    global().should_fire(point)
}

/// Injected I/O failure for `point`, labelled with `what` (typically the
/// path) so chaos logs read like real failures.
pub fn io_error(point: FaultPoint, what: &str) -> Option<io::Error> {
    fires(point).map(|shot| {
        io::Error::new(
            io::ErrorKind::Other,
            format!("injected fault {point} #{} at {what}", shot.seq),
        )
    })
}

/// Stall the calling thread for the rule's `ms` parameter when a delay
/// fault fires at `point`. Latency only — never values.
pub fn sleep(point: FaultPoint) {
    if let Some(shot) = fires(point) {
        if shot.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shot.delay_ms));
        }
    }
}

/// Panic the calling thread when a fault fires at `point` — the message
/// carries the fire index so supervision tests can match restarts to
/// injections.
pub fn panic_if_due(point: FaultPoint) {
    if let Some(shot) = fires(point) {
        panic!("injected fault {point} #{} (hit {})", shot.seq, shot.hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let fault = Fault::parse(
            "io_write:p=0.05; worker_panic:nth=37 ;decode_slow:ms=200:every=3;seed=42",
        )
        .unwrap();
        assert_eq!(fault.seed(), 42);
        let rules = fault.rules();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].point, FaultPoint::IoWrite);
        assert_eq!(rules[0].trigger, Trigger::Prob(0.05));
        assert_eq!(rules[1].point, FaultPoint::WorkerPanic);
        assert_eq!(rules[1].trigger, Trigger::Nth(37));
        assert_eq!(rules[2].point, FaultPoint::DecodeSlow);
        assert_eq!(rules[2].trigger, Trigger::Every(3));
        assert_eq!(rules[2].delay_ms, 200);
    }

    #[test]
    fn every_point_parses_by_its_name() {
        for point in FaultPoint::ALL {
            let plan = format!("{}:nth=1", point.as_str());
            let fault = Fault::parse(&plan).unwrap();
            assert_eq!(fault.rules()[0].point, point);
        }
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for (plan, needle) in [
            ("no_such_point:p=0.5", "unknown injection point"),
            ("io_write", "missing trigger"),
            ("io_write:p=1.5", "in [0, 1]"),
            ("io_write:nth=0", "1-based"),
            ("io_write:every=0", ">= 1"),
            ("io_write:p=0.1:nth=2", "more than one"),
            ("io_write:frequency=2", "unknown key"),
            ("io_write:p", "key=value"),
            ("seed=banana", "u64"),
        ] {
            let err = Fault::parse(plan).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "plan {plan:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn empty_and_blank_plans_are_noops() {
        assert!(!Fault::parse("").unwrap().is_active());
        assert!(!Fault::parse(" ; ;; ").unwrap().is_active());
        assert!(!Fault::none().is_active());
        assert!(Fault::none().should_fire(FaultPoint::IoWrite).is_none());
    }

    #[test]
    fn nth_fires_exactly_once_on_its_hit() {
        let fault = Fault::parse("worker_panic:nth=3").unwrap();
        let fired: Vec<bool> = (0..6)
            .map(|_| fault.should_fire(FaultPoint::WorkerPanic).is_some())
            .collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(fault.hits(FaultPoint::WorkerPanic), 6);
        assert_eq!(fault.fires(FaultPoint::WorkerPanic), 1);
        assert_eq!(fault.fired_hits(FaultPoint::WorkerPanic), vec![3]);
    }

    #[test]
    fn every_with_times_cap() {
        let fault = Fault::parse("decode_slow:every=2:times=2:ms=7").unwrap();
        let shots: Vec<Option<FaultShot>> = (0..8)
            .map(|_| fault.should_fire(FaultPoint::DecodeSlow))
            .collect();
        let fired: Vec<bool> = shots.iter().map(Option::is_some).collect();
        // Fires on hits 2 and 4, then the cap stops hits 6 and 8.
        assert_eq!(
            fired,
            [false, true, false, true, false, false, false, false]
        );
        let shot = shots[1].unwrap();
        assert_eq!(shot.delay_ms, 7);
        assert_eq!(shot.seq, 1);
        assert_eq!(shot.hit, 2);
        assert_eq!(fault.fired_hits(FaultPoint::DecodeSlow), vec![2, 4]);
    }

    #[test]
    fn probability_stream_replays_bit_exactly() {
        let run = |plan: &str| -> Vec<u64> {
            let fault = Fault::parse(plan).unwrap();
            for _ in 0..500 {
                fault.should_fire(FaultPoint::IoWrite);
            }
            fault.fired_hits(FaultPoint::IoWrite)
        };
        let a = run("io_write:p=0.1;seed=9");
        let b = run("io_write:p=0.1;seed=9");
        assert_eq!(a, b, "same plan + seed must inject identically");
        assert!(!a.is_empty(), "p=0.1 over 500 hits fires at least once");
        let c = run("io_write:p=0.1;seed=10");
        assert_ne!(a, c, "a different seed draws a different stream");
    }

    #[test]
    fn p_zero_never_fires_and_p_one_always_fires() {
        let never = Fault::parse("io_write:p=0").unwrap();
        let always = Fault::parse("io_write:p=1").unwrap();
        for _ in 0..50 {
            assert!(never.should_fire(FaultPoint::IoWrite).is_none());
            assert!(always.should_fire(FaultPoint::IoWrite).is_some());
        }
    }

    #[test]
    fn multiple_rules_per_point_all_observe_hits() {
        let fault = Fault::parse("io_write:nth=2;io_write:nth=4").unwrap();
        let fired: Vec<bool> = (0..5)
            .map(|_| fault.should_fire(FaultPoint::IoWrite).is_some())
            .collect();
        assert_eq!(fired, [false, true, false, true, false]);
        assert_eq!(fault.fires(FaultPoint::IoWrite), 2);
    }

    #[test]
    fn helper_injectors_honor_global_install() {
        // The install/clear cycle is process-global; this is the only
        // test in this binary that installs a plan, and it uses a point
        // nothing in eva-nn's other tests hits.
        let handle = install(Fault::parse("decode_slow:every=1:ms=0").unwrap());
        assert!(active());
        assert!(fires(FaultPoint::DecodeSlow).is_some());
        sleep(FaultPoint::DecodeSlow); // ms=0: fires but does not stall
        assert!(fires(FaultPoint::IoWrite).is_none(), "other points unset");
        // Two hits so far: the explicit fires() probe and sleep().
        assert_eq!(handle.fires(FaultPoint::DecodeSlow), 2);
        clear();
        assert!(!active());
        assert!(fires(FaultPoint::DecodeSlow).is_none());
    }

    #[test]
    fn injected_io_error_names_point_and_target() {
        let fault = Fault::parse("io_write:nth=1").unwrap();
        let shot = fault.should_fire(FaultPoint::IoWrite).unwrap();
        let e = io::Error::new(
            io::ErrorKind::Other,
            format!("injected fault {} #{} at x", shot.point, shot.seq),
        );
        assert!(e.to_string().contains("injected fault io_write #1"));
    }

    #[test]
    fn panic_if_due_carries_fire_index() {
        let fault = Fault::parse("worker_panic:nth=1").unwrap();
        let shot = fault.should_fire(FaultPoint::WorkerPanic).unwrap();
        assert_eq!(shot.seq, 1);
        assert_eq!(shot.hit, 1);
    }
}
