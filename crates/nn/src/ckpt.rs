//! Crash-safe checkpoint primitives: atomic writes, CRC64 integrity,
//! RNG state capture, and the [`TrainCheckpoint`] container shared by
//! pretraining and RL fine-tuning.
//!
//! ## Durability protocol
//!
//! Every artifact file is written with [`atomic_write`]: the bytes go to a
//! same-directory `*.tmp` file, are fsynced, and are renamed over the final
//! path. A checkpoint directory is committed by writing its manifest
//! (`train_state.json`) **last** — the manifest records a CRC64 and byte
//! length for every payload file, so a crash at any point leaves either the
//! previous complete checkpoint or a directory whose manifest still
//! describes fully-written files. [`TrainCheckpoint::load`] re-hashes every
//! payload and rejects mismatches with a typed [`CkptError`] instead of
//! handing back garbage weights.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::fault;
use crate::optim::AdamW;
use crate::params::ParamSet;
use crate::tensor::Tensor;

/// Manifest file name; its presence marks a checkpoint as committed.
pub const TRAIN_MANIFEST_FILE: &str = "train_state.json";
/// Current on-disk format version for [`TrainCheckpoint`].
pub const TRAIN_FORMAT_VERSION: u32 = 1;

const PARAMS_BIN: &str = "params.bin";
const OPT_M_BIN: &str = "opt_m.bin";
const OPT_V_BIN: &str = "opt_v.bin";

/// Typed checkpoint/artifact failure. `load` paths return this instead of
/// panicking or silently accepting corrupt bytes.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A file is unreadable as its expected format (bad JSON, truncated
    /// tensor stream, missing manifest entry, wrong byte length).
    Corrupt {
        /// File the failure was detected in.
        file: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A payload's CRC64 disagrees with the manifest.
    Integrity {
        /// File whose checksum failed.
        file: String,
        /// Checksum recorded in the manifest.
        expected: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
    /// The manifest was written by a newer format than this build reads.
    Version {
        /// File carrying the version field.
        file: String,
        /// Version found on disk.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The checkpoint is internally consistent but does not match the
    /// run it is being restored into (shape/name/config mismatch).
    Mismatch {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Corrupt { file, detail } => {
                write!(f, "corrupt checkpoint file {file:?}: {detail}")
            }
            CkptError::Integrity {
                file,
                expected,
                actual,
            } => write!(
                f,
                "integrity failure in {file:?}: manifest CRC64 {expected:#018x}, \
                 on-disk bytes hash to {actual:#018x}"
            ),
            CkptError::Version {
                file,
                found,
                supported,
            } => write!(
                f,
                "{file:?} has format version {found}, but this build supports <= {supported}"
            ),
            CkptError::Mismatch { detail } => {
                write!(f, "checkpoint does not match this run: {detail}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> CkptError {
        CkptError::Io(e)
    }
}

/// CRC-64/XZ (reflected, polynomial `0xC96C5795D7870F42`, init/xorout all
/// ones) of `bytes`. Table-driven; the table is built on first use.
pub fn crc64(bytes: &[u8]) -> u64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        const POLY: u64 = 0xC96C_5795_D787_0F42;
        let mut table = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = !0u64;
    for &b in bytes {
        crc = table[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Write `bytes` to `path` atomically: same-directory temp file, fsync,
/// rename. Readers never observe a partially-written file; a crash leaves
/// either the old content or the new, never a mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(e) = fault::io_error(fault::FaultPoint::IoWrite, &path.display().to_string()) {
        return Err(e);
    }
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let write = (|| -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    })();
    // Torn-write injection: the temp file exists and is synced, but the
    // commit-point rename never happens — exactly a crash at this line.
    let renamed = write.and_then(|()| {
        match fault::io_error(fault::FaultPoint::IoRename, &path.display().to_string()) {
            Some(e) => Err(e),
            None => fs::rename(&tmp, path),
        }
    });
    if let Err(e) = renamed {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename itself. Directory fsync is not supported on every
    // platform/filesystem, so failures here are non-fatal.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Per-file integrity record stored in checkpoint/artifact manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileIntegrity {
    /// CRC-64/XZ of the file contents.
    pub crc64: u64,
    /// Byte length of the file.
    pub bytes: u64,
}

/// Read `dir/name`, checking its length and CRC64 against `entry`.
///
/// A payload the manifest promises but the directory lacks is an integrity
/// failure, not a generic I/O error: the manifest is the commit record, so
/// a missing file means the artifact is torn (e.g. a payload was deleted
/// after commit) and callers should treat it like a checksum mismatch.
pub fn read_verified(dir: &Path, name: &str, entry: &FileIntegrity) -> Result<Vec<u8>, CkptError> {
    let data = match fs::read(dir.join(name)) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(CkptError::Integrity {
                file: name.to_owned(),
                expected: entry.crc64,
                actual: crc64(&[]),
            });
        }
        Err(e) => return Err(e.into()),
    };
    if data.len() as u64 != entry.bytes {
        return Err(CkptError::Corrupt {
            file: name.to_owned(),
            detail: format!(
                "manifest records {} bytes, file has {}",
                entry.bytes,
                data.len()
            ),
        });
    }
    let actual = crc64(&data);
    if actual != entry.crc64 {
        return Err(CkptError::Integrity {
            file: name.to_owned(),
            expected: entry.crc64,
            actual,
        });
    }
    Ok(data)
}

/// Serializable [`ChaCha8Rng`] state (seed, stream, and word position), so
/// a resumed run continues the exact random stream of the original.
/// `word_pos` is a `u128` split into two `u64` halves because the manifest
/// is JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The 256-bit ChaCha seed.
    pub seed: [u8; 32],
    /// Stream id.
    pub stream: u64,
    /// Low 64 bits of the word position.
    pub word_pos_lo: u64,
    /// High 64 bits of the word position.
    pub word_pos_hi: u64,
}

impl RngState {
    /// Capture the full state of `rng`.
    pub fn capture(rng: &ChaCha8Rng) -> RngState {
        let word_pos = rng.get_word_pos();
        RngState {
            seed: rng.get_seed(),
            stream: rng.get_stream(),
            word_pos_lo: word_pos as u64,
            word_pos_hi: (word_pos >> 64) as u64,
        }
    }

    /// Reconstruct a generator that continues this captured stream.
    pub fn restore(&self) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::from_seed(self.seed);
        rng.set_stream(self.stream);
        rng.set_word_pos(u128::from(self.word_pos_lo) | (u128::from(self.word_pos_hi) << 64));
        rng
    }
}

/// Snapshot an optimizer's moments as [`ParamSet`]s named after the
/// parameters they track (the optimizer stores them positionally, in the
/// order of `names`).
///
/// # Panics
///
/// Panics if the optimizer does not track exactly `names.len()` params.
pub fn moments_as_paramsets(names: &ParamSet, opt: &AdamW) -> (ParamSet, ParamSet) {
    let (m, v) = opt.moments();
    assert_eq!(m.len(), names.len(), "optimizer tracks the named params");
    let mut set_m = ParamSet::new();
    let mut set_v = ParamSet::new();
    for i in 0..names.len() {
        set_m.register(names.name(i).to_owned(), m[i].clone());
        set_v.register(names.name(i).to_owned(), v[i].clone());
    }
    (set_m, set_v)
}

/// Rebuild positional moment vectors for `names` from a checkpoint's named
/// moment sets, rejecting missing names or shape drift with a typed error.
pub fn restore_moments(
    names: &ParamSet,
    ck: &TrainCheckpoint,
) -> Result<(Vec<Tensor>, Vec<Tensor>), CkptError> {
    let mut m = Vec::with_capacity(names.len());
    let mut v = Vec::with_capacity(names.len());
    for i in 0..names.len() {
        let name = names.name(i);
        let shape = names.tensor(i).shape();
        for (set, out, which) in [(&ck.opt_m, &mut m, "first"), (&ck.opt_v, &mut v, "second")] {
            let idx = set.index_of(name).ok_or_else(|| CkptError::Mismatch {
                detail: format!("checkpoint has no {which}-moment for parameter {name:?}"),
            })?;
            let tensor = set.tensor(idx);
            if tensor.shape() != shape {
                return Err(CkptError::Mismatch {
                    detail: format!(
                        "{which}-moment shape {:?} for {name:?} differs from parameter shape {:?}",
                        tensor.shape(),
                        shape
                    ),
                });
            }
            out.push(tensor.clone());
        }
    }
    Ok((m, v))
}

#[derive(Serialize, Deserialize)]
struct TrainManifest {
    format_version: u32,
    step: u64,
    opt_step: u64,
    rng: RngState,
    files: BTreeMap<String, FileIntegrity>,
    extra: serde_json::Value,
}

/// A complete training snapshot: model parameters, AdamW moments and step
/// counter, RNG state, a step counter, and trainer-specific `extra` state
/// (e.g. the shuffled batch order). Saving is atomic (manifest-last), and
/// loading verifies every payload's CRC64.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Trainer-defined progress counter (pretrain steps, RL epochs, ...).
    pub step: u64,
    /// Model parameters (plus any auxiliary heads, merged by name).
    pub params: ParamSet,
    /// AdamW first moments, named identically to the optimized params.
    pub opt_m: ParamSet,
    /// AdamW second moments, named identically to the optimized params.
    pub opt_v: ParamSet,
    /// AdamW update counter (drives bias correction).
    pub opt_step: u64,
    /// Training RNG state at snapshot time.
    pub rng: RngState,
    /// Trainer-specific state, validated by the trainer on resume.
    pub extra: serde_json::Value,
}

impl TrainCheckpoint {
    /// Whether `dir` holds a committed checkpoint (its manifest exists).
    pub fn exists(dir: &Path) -> bool {
        dir.join(TRAIN_MANIFEST_FILE).is_file()
    }

    /// Write the checkpoint to `dir` (created if missing). Payload files
    /// are written atomically first; the manifest commits the checkpoint
    /// last, so a crash mid-save leaves the previous checkpoint intact.
    pub fn save(&self, dir: &Path) -> Result<(), CkptError> {
        fs::create_dir_all(dir)?;
        let mut files = BTreeMap::new();
        for (name, set) in [
            (PARAMS_BIN, &self.params),
            (OPT_M_BIN, &self.opt_m),
            (OPT_V_BIN, &self.opt_v),
        ] {
            let mut buf = Vec::new();
            set.save(&mut buf)?;
            files.insert(
                name.to_owned(),
                FileIntegrity {
                    crc64: crc64(&buf),
                    bytes: buf.len() as u64,
                },
            );
            atomic_write(&dir.join(name), &buf)?;
        }
        let manifest = TrainManifest {
            format_version: TRAIN_FORMAT_VERSION,
            step: self.step,
            opt_step: self.opt_step,
            rng: self.rng.clone(),
            files,
            extra: self.extra.clone(),
        };
        let json = serde_json::to_vec_pretty(&manifest).map_err(|e| CkptError::Corrupt {
            file: TRAIN_MANIFEST_FILE.to_owned(),
            detail: format!("serialize: {e}"),
        })?;
        atomic_write(&dir.join(TRAIN_MANIFEST_FILE), &json)?;
        Ok(())
    }

    /// Load and fully verify a checkpoint from `dir`.
    pub fn load(dir: &Path) -> Result<TrainCheckpoint, CkptError> {
        let bytes = fs::read(dir.join(TRAIN_MANIFEST_FILE))?;
        let manifest: TrainManifest =
            serde_json::from_slice(&bytes).map_err(|e| CkptError::Corrupt {
                file: TRAIN_MANIFEST_FILE.to_owned(),
                detail: format!("parse: {e}"),
            })?;
        if manifest.format_version > TRAIN_FORMAT_VERSION {
            return Err(CkptError::Version {
                file: TRAIN_MANIFEST_FILE.to_owned(),
                found: manifest.format_version,
                supported: TRAIN_FORMAT_VERSION,
            });
        }
        let read_set = |name: &str| -> Result<ParamSet, CkptError> {
            let entry = manifest.files.get(name).ok_or_else(|| CkptError::Corrupt {
                file: TRAIN_MANIFEST_FILE.to_owned(),
                detail: format!("no integrity entry for {name:?}"),
            })?;
            let data = read_verified(dir, name, entry)?;
            ParamSet::load(data.as_slice()).map_err(|e| CkptError::Corrupt {
                file: name.to_owned(),
                detail: e.to_string(),
            })
        };
        Ok(TrainCheckpoint {
            step: manifest.step,
            params: read_set(PARAMS_BIN)?,
            opt_m: read_set(OPT_M_BIN)?,
            opt_v: read_set(OPT_V_BIN)?,
            opt_step: manifest.opt_step,
            rng: manifest.rng,
            extra: manifest.extra,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::RngCore;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eva_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_checkpoint() -> TrainCheckpoint {
        let mut params = ParamSet::default();
        params.register(
            "w".to_owned(),
            Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 0.5, 4.0]),
        );
        params.register("b".to_owned(), Tensor::from_vec(vec![2], vec![0.25, -0.75]));
        let mut opt_m = ParamSet::default();
        opt_m.register("w".to_owned(), Tensor::zeros(vec![2, 2]));
        opt_m.register("b".to_owned(), Tensor::from_vec(vec![2], vec![0.1, 0.2]));
        let opt_v = opt_m.clone();
        let rng = ChaCha8Rng::seed_from_u64(99);
        TrainCheckpoint {
            step: 17,
            params,
            opt_m,
            opt_v,
            opt_step: 17,
            rng: RngState::capture(&rng),
            extra: serde_json::json!({"kind": "test", "cursor": 3}),
        }
    }

    #[test]
    fn crc64_matches_reference_vector() {
        // CRC-64/XZ check value from the canonical catalogue.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("file.bin");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rng_state_round_trip_continues_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        rng.set_stream(3);
        for _ in 0..37 {
            rng.next_u64();
        }
        let state = RngState::capture(&rng);
        let mut restored = state.restore();
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn checkpoint_round_trip_is_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let ck = sample_checkpoint();
        ck.save(&dir).unwrap();
        assert!(TrainCheckpoint::exists(&dir));
        let back = TrainCheckpoint::load(&dir).unwrap();
        assert_eq!(back.step, ck.step);
        assert_eq!(back.opt_step, ck.opt_step);
        assert_eq!(back.rng, ck.rng);
        assert_eq!(back.extra, ck.extra);
        for (a, b) in [(&back.params, &ck.params), (&back.opt_m, &ck.opt_m)] {
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.name(i), b.name(i));
                assert_eq!(a.tensor(i).data(), b.tensor(i).data());
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_rejected_with_integrity_error() {
        let dir = tmp_dir("bitflip");
        sample_checkpoint().save(&dir).unwrap();
        let path = dir.join(PARAMS_BIN);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match TrainCheckpoint::load(&dir) {
            Err(CkptError::Integrity { file, .. }) => assert_eq!(file, PARAMS_BIN),
            other => panic!("expected Integrity error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_rejected_with_corrupt_error() {
        let dir = tmp_dir("truncate");
        sample_checkpoint().save(&dir).unwrap();
        let path = dir.join(OPT_M_BIN);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match TrainCheckpoint::load(&dir) {
            Err(CkptError::Corrupt { file, .. }) => assert_eq!(file, OPT_M_BIN),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_is_rejected() {
        let dir = tmp_dir("version");
        sample_checkpoint().save(&dir).unwrap();
        let path = dir.join(TRAIN_MANIFEST_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            &format!("\"format_version\": {TRAIN_FORMAT_VERSION}"),
            "\"format_version\": 9001",
            1,
        );
        assert_ne!(text, bumped, "manifest must carry the version field");
        fs::write(&path, bumped).unwrap();
        match TrainCheckpoint::load(&dir) {
            Err(CkptError::Version { found, .. }) => assert_eq!(found, 9001),
            other => panic!("expected Version error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_reports_io_error() {
        let dir = tmp_dir("missing");
        match TrainCheckpoint::load(&dir) {
            Err(CkptError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected Io error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
