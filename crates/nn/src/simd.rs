//! Runtime-dispatched SIMD inner kernels for the GEMM layer.
//!
//! The four GEMM kernels in [`crate::tensor`] funnel every hot inner loop
//! through two primitive shapes: a rank-1 update (`y[j] += av * x[j]`,
//! "axpy") and an ascending-`kk` dot product. This module provides those
//! primitives at three instruction levels — portable scalar, SSE2, and
//! AVX2(+FMA) — selected once per process by runtime CPU detection with an
//! `EVA_NN_SIMD` override, and hands the blocked kernel bodies a
//! [`Kernels`] table of function pointers.
//!
//! ## Accumulation-order contract
//!
//! - **axpy family** (`matmul`, `matmul_kouter`, `matmul_at`, and the int8
//!   `axpy_q8`): every output element receives exactly one
//!   `mul`-then-`add` per term, in the same ascending-`kk` order at every
//!   width. A SIMD lane computes `y[j] + av * x[j]` with the same two
//!   roundings as the scalar loop (no FMA contraction), so results are
//!   **bit-identical across scalar/SSE2/AVX2** and at every thread count.
//! - **dot family** (`matmul_bt`): the SIMD dot products keep one
//!   accumulator *per lane* and reduce horizontally at the end (AVX2
//!   additionally fuses each term with FMA). That reassociates the sum, so
//!   `bt` under SSE2/AVX2 is **not** bit-identical to scalar — it is
//!   gated by an error bound of `8 · k · ε · Σ|aᵢ·bᵢ|` per element in
//!   `tests/kernels.rs` instead. Within one mode the per-column arithmetic
//!   is fixed (the 4-wide tile is four copies of the single-column chain),
//!   so any fixed mode is still bit-identical at every thread count and
//!   across partitionings.
//!
//! The scalar table is byte-for-byte the pre-SIMD implementation and
//! remains the bit-identity reference (`EVA_NN_SIMD=off`). Bit-exact
//! reproducibility across *processes* (checkpoint resume, the batched ==
//! sequential decode equivalence) therefore additionally requires the same
//! effective SIMD mode on both sides.

use std::sync::OnceLock;

use crate::pool;

/// Requested SIMD dispatch mode (`EVA_NN_SIMD`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Best instruction set the CPU supports (the default).
    #[default]
    Auto,
    /// AVX2 + FMA kernels; falls back to [`SimdMode::Auto`] (with a
    /// one-time warning) if the CPU lacks them.
    Avx2,
    /// SSE2 kernels (x86_64 baseline).
    Sse2,
    /// Portable scalar kernels — the bit-identity reference.
    Off,
}

impl SimdMode {
    /// Parse an `EVA_NN_SIMD` value. `None`/empty means [`SimdMode::Auto`].
    pub fn parse(value: &str) -> Option<SimdMode> {
        match value.to_ascii_lowercase().as_str() {
            "" | "auto" => Some(SimdMode::Auto),
            "avx2" => Some(SimdMode::Avx2),
            "sse2" => Some(SimdMode::Sse2),
            "off" | "scalar" | "none" => Some(SimdMode::Off),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            SimdMode::Auto => "auto",
            SimdMode::Avx2 => "avx2",
            SimdMode::Sse2 => "sse2",
            SimdMode::Off => "off",
        }
    }
}

/// Interpret an `EVA_NN_SIMD` value, warning once (per process) on a
/// malformed one and falling back to [`SimdMode::Auto`] — the same
/// warn-once contract as `EVA_NN_THREADS` parsing in [`crate::pool`].
pub fn mode_from_env(value: Option<&str>) -> SimdMode {
    let Some(v) = value else {
        return SimdMode::Auto;
    };
    match SimdMode::parse(v) {
        Some(mode) => mode,
        None => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            pool::warn_env_once(&WARNED, || {
                format!("EVA_NN_SIMD={v:?} is not one of auto|avx2|sse2|off; using auto")
            });
            SimdMode::Auto
        }
    }
}

/// The inner-kernel function-pointer table the blocked GEMM bodies call.
///
/// A table is only ever constructed for instruction sets the running CPU
/// supports (see [`kernels_for`]), which is what makes the
/// `#[target_feature]` implementations sound to call through it.
pub struct Kernels {
    /// Resolved instruction set: `"scalar"`, `"sse2"`, or `"avx2"`.
    pub(crate) name: &'static str,
    /// `y[j] += av * x[j]` — exact (mul+add per element, no FMA).
    pub(crate) axpy: fn(f32, &[f32], &mut [f32]),
    /// `y[j] += av * (q[j] as f32)` — exact across modes (the i8→f32
    /// conversion is lossless, then mul+add as above).
    pub(crate) axpy_q8: fn(f32, &[i8], &mut [f32]),
    /// Four independent dot products sharing one stream of `a` loads;
    /// column `c`'s arithmetic is identical to `dot1(a, b_c)`.
    pub(crate) dot4: fn(&[f32], &[f32], &[f32], &[f32], &[f32]) -> [f32; 4],
    /// One ascending dot product.
    pub(crate) dot1: fn(&[f32], &[f32]) -> f32,
}

impl Kernels {
    /// Resolved instruction-set label (for benches and logs).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    axpy: axpy_scalar,
    axpy_q8: axpy_q8_scalar,
    dot4: dot4_scalar,
    dot1: dot1_scalar,
};

/// Whether `mode` can run natively on this CPU (always true for `Auto`
/// and `Off`). Used by tests and benches to skip unsupported sweeps.
pub fn supported(mode: SimdMode) -> bool {
    match mode {
        SimdMode::Auto | SimdMode::Off => true,
        #[cfg(target_arch = "x86_64")]
        SimdMode::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "x86_64")]
        SimdMode::Sse2 => true,
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The kernel table for `mode`. An explicitly requested mode the CPU
/// cannot run warns once and falls back to the best supported set, so a
/// stale `EVA_NN_SIMD=avx2` never aborts a deploy.
pub fn kernels_for(mode: SimdMode) -> &'static Kernels {
    match mode {
        SimdMode::Off => &SCALAR,
        SimdMode::Auto => detect_best(),
        requested => {
            if supported(requested) {
                #[cfg(target_arch = "x86_64")]
                {
                    return match requested {
                        SimdMode::Avx2 => &x86::AVX2,
                        SimdMode::Sse2 => &x86::SSE2,
                        _ => unreachable!("Auto/Off handled above"),
                    };
                }
            }
            static WARNED: std::sync::Once = std::sync::Once::new();
            pool::warn_env_once(&WARNED, || {
                format!(
                    "EVA_NN_SIMD={} is not supported by this CPU; using {}",
                    requested.name(),
                    detect_best().name
                )
            });
            detect_best()
        }
    }
}

/// Best instruction set the running CPU supports.
fn detect_best() -> &'static Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if supported(SimdMode::Avx2) {
            return &x86::AVX2;
        }
        return &x86::SSE2;
    }
    #[cfg(not(target_arch = "x86_64"))]
    &SCALAR
}

/// The process-wide active kernel table: `EVA_NN_SIMD` read once, then
/// resolved against CPU detection. All bare/`_with` GEMM entry points
/// dispatch through this.
pub fn active() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let raw = std::env::var("EVA_NN_SIMD").ok();
        kernels_for(mode_from_env(raw.as_deref()))
    })
}

/// Resolved label of the active table (`"scalar"`, `"sse2"`, `"avx2"`) —
/// what benches record next to their numbers.
pub fn active_name() -> &'static str {
    active().name()
}

// --- Portable scalar kernels (the reference implementations).

/// `y[j] += av * x[j]`, unrolled ×8 so the compiler vectorizes the hot
/// rank-1 update. Each `y[j]` gets exactly one fused-order mul-add, so
/// bits match the naive loop.
#[inline]
fn axpy_scalar(av: f32, x: &[f32], y: &mut [f32]) {
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact_mut(8);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        ys[0] += av * xs[0];
        ys[1] += av * xs[1];
        ys[2] += av * xs[2];
        ys[3] += av * xs[3];
        ys[4] += av * xs[4];
        ys[5] += av * xs[5];
        ys[6] += av * xs[6];
        ys[7] += av * xs[7];
    }
    for (xs, ys) in xc.remainder().iter().zip(yc.into_remainder()) {
        *ys += av * xs;
    }
}

/// `y[j] += av * (q[j] as f32)` — the int8 rank-1 update. The widening
/// conversion is exact, so this has the same rounding behavior (and the
/// same cross-mode bit-identity) as [`axpy_scalar`].
#[inline]
fn axpy_q8_scalar(av: f32, q: &[i8], y: &mut [f32]) {
    for (ys, qs) in y.iter_mut().zip(q) {
        *ys += av * f32::from(*qs);
    }
}

/// One ascending-`kk` dot product — byte-for-byte the serial `bt` chain.
#[inline]
fn dot1_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Four dot products sharing each `a` load; every accumulator is a single
/// ascending chain, identical to [`dot1_scalar`] on its column.
#[inline]
fn dot4_scalar(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (kk, &av) in a.iter().enumerate() {
        a0 += av * b0[kk];
        a1 += av * b1[kk];
        a2 += av * b2[kk];
        a3 += av * b3[kk];
    }
    [a0, a1, a2, a3]
}

// --- x86_64 kernels. SSE2 is unconditionally available on x86_64; the
// --- AVX2 table is only reachable after `is_x86_feature_detected!`
// --- confirms both avx2 and fma (see `kernels_for`), which is what makes
// --- the `#[target_feature]` functions sound behind plain fn pointers.

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{axpy_q8_scalar, Kernels};
    use std::arch::x86_64::*;

    pub(super) static SSE2: Kernels = Kernels {
        name: "sse2",
        axpy: axpy_sse2,
        // SSE2 has no packed i8→i32 sign extension (that's SSE4.1); the
        // scalar q8 update is already exact and cheap, so reuse it.
        axpy_q8: axpy_q8_scalar,
        dot4: dot4_sse2,
        dot1: dot1_sse2,
    };

    pub(super) static AVX2: Kernels = Kernels {
        name: "avx2",
        axpy: axpy_avx2,
        axpy_q8: axpy_q8_avx2,
        dot4: dot4_avx2,
        dot1: dot1_avx2,
    };

    /// 4-wide `y += av * x`. Explicit mul-then-add intrinsics: LLVM never
    /// contracts separate intrinsic calls into FMA, so each element sees
    /// the same two roundings as the scalar loop — bit-identical.
    fn axpy_sse2(av: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len().min(y.len());
        // SAFETY: SSE2 is baseline on x86_64; all loads/stores stay inside
        // `x[..n]` / `y[..n]`.
        unsafe {
            let avv = _mm_set1_ps(av);
            let mut j = 0;
            while j + 4 <= n {
                let xv = _mm_loadu_ps(x.as_ptr().add(j));
                let yv = _mm_loadu_ps(y.as_ptr().add(j));
                _mm_storeu_ps(y.as_mut_ptr().add(j), _mm_add_ps(yv, _mm_mul_ps(avv, xv)));
                j += 4;
            }
            while j < n {
                *y.get_unchecked_mut(j) += av * *x.get_unchecked(j);
                j += 1;
            }
        }
    }

    /// 4-wide dot with one packed accumulator, reduced low-lane-first; the
    /// scalar tail continues from the reduced sum. Reassociated relative
    /// to scalar — covered by the documented `bt` error bound.
    fn dot1_sse2(a: &[f32], b: &[f32]) -> f32 {
        let k = a.len().min(b.len());
        // SAFETY: SSE2 is baseline on x86_64; bounds as above.
        unsafe {
            let mut acc = _mm_setzero_ps();
            let mut j = 0;
            while j + 4 <= k {
                let av = _mm_loadu_ps(a.as_ptr().add(j));
                let bv = _mm_loadu_ps(b.as_ptr().add(j));
                acc = _mm_add_ps(acc, _mm_mul_ps(av, bv));
                j += 4;
            }
            let mut sum = hsum128(acc);
            while j < k {
                sum += *a.get_unchecked(j) * *b.get_unchecked(j);
                j += 1;
            }
            sum
        }
    }

    /// Four SSE2 dots sharing each `a` load. Per column the accumulator
    /// sequence, reduction, and tail are exactly [`dot1_sse2`]'s, so tiled
    /// and single-column evaluation agree bit-for-bit (what keeps `bt`
    /// partition-invariant within this mode).
    fn dot4_sse2(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        let k = a.len();
        // SAFETY: SSE2 is baseline on x86_64; the callers (tensor::bt_row)
        // pass b-slices of length `k`.
        unsafe {
            let (mut c0, mut c1, mut c2, mut c3) = (
                _mm_setzero_ps(),
                _mm_setzero_ps(),
                _mm_setzero_ps(),
                _mm_setzero_ps(),
            );
            let mut j = 0;
            while j + 4 <= k {
                let av = _mm_loadu_ps(a.as_ptr().add(j));
                c0 = _mm_add_ps(c0, _mm_mul_ps(av, _mm_loadu_ps(b0.as_ptr().add(j))));
                c1 = _mm_add_ps(c1, _mm_mul_ps(av, _mm_loadu_ps(b1.as_ptr().add(j))));
                c2 = _mm_add_ps(c2, _mm_mul_ps(av, _mm_loadu_ps(b2.as_ptr().add(j))));
                c3 = _mm_add_ps(c3, _mm_mul_ps(av, _mm_loadu_ps(b3.as_ptr().add(j))));
                j += 4;
            }
            let mut out = [hsum128(c0), hsum128(c1), hsum128(c2), hsum128(c3)];
            while j < k {
                let av = *a.get_unchecked(j);
                out[0] += av * *b0.get_unchecked(j);
                out[1] += av * *b1.get_unchecked(j);
                out[2] += av * *b2.get_unchecked(j);
                out[3] += av * *b3.get_unchecked(j);
                j += 1;
            }
            out
        }
    }

    /// Deterministic low-to-high reduction of a 4-lane register:
    /// `(l0+l2) + (l1+l3)`.
    #[inline]
    unsafe fn hsum128(v: __m128) -> f32 {
        let hi = _mm_movehl_ps(v, v); // lanes 2,3
        let s = _mm_add_ps(v, hi); // l0+l2, l1+l3
        let s1 = _mm_shuffle_ps(s, s, 0b01); // lane 1 of s
        _mm_cvtss_f32(_mm_add_ss(s, s1))
    }

    fn axpy_avx2(av: f32, x: &[f32], y: &mut [f32]) {
        // SAFETY: only installed in a table after avx2 detection.
        unsafe { axpy_avx2_impl(av, x, y) }
    }

    /// 8-wide `y += av * x`, mul-then-add (deliberately *not* FMA) so each
    /// element keeps the scalar rounding sequence — bit-identical.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_avx2_impl(av: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len().min(y.len());
        let avv = _mm256_set1_ps(av);
        let mut j = 0;
        while j + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(j));
            let yv = _mm256_loadu_ps(y.as_ptr().add(j));
            _mm256_storeu_ps(
                y.as_mut_ptr().add(j),
                _mm256_add_ps(yv, _mm256_mul_ps(avv, xv)),
            );
            j += 8;
        }
        while j < n {
            *y.get_unchecked_mut(j) += av * *x.get_unchecked(j);
            j += 1;
        }
    }

    fn axpy_q8_avx2(av: f32, q: &[i8], y: &mut [f32]) {
        // SAFETY: only installed in a table after avx2 detection.
        unsafe { axpy_q8_avx2_impl(av, q, y) }
    }

    /// 8-wide int8 rank-1 update: sign-extend i8→i32, convert to f32
    /// (both exact), then the same mul-then-add as [`axpy_avx2_impl`] —
    /// bit-identical to the scalar q8 kernel.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_q8_avx2_impl(av: f32, q: &[i8], y: &mut [f32]) {
        let n = q.len().min(y.len());
        let avv = _mm256_set1_ps(av);
        let mut j = 0;
        while j + 8 <= n {
            let q8 = _mm_loadl_epi64(q.as_ptr().add(j) as *const __m128i);
            let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
            let yv = _mm256_loadu_ps(y.as_ptr().add(j));
            _mm256_storeu_ps(
                y.as_mut_ptr().add(j),
                _mm256_add_ps(yv, _mm256_mul_ps(avv, qf)),
            );
            j += 8;
        }
        while j < n {
            *y.get_unchecked_mut(j) += av * f32::from(*q.get_unchecked(j));
            j += 1;
        }
    }

    fn dot1_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: only installed in a table after avx2+fma detection.
        unsafe { dot1_avx2_impl(a, b) }
    }

    /// 8-wide FMA dot with one packed accumulator; reassociated relative
    /// to scalar — covered by the documented `bt` error bound.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot1_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
        let k = a.len().min(b.len());
        let mut acc = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= k {
            let av = _mm256_loadu_ps(a.as_ptr().add(j));
            let bv = _mm256_loadu_ps(b.as_ptr().add(j));
            acc = _mm256_fmadd_ps(av, bv, acc);
            j += 8;
        }
        let mut sum = hsum256(acc);
        while j < k {
            sum += *a.get_unchecked(j) * *b.get_unchecked(j);
            j += 1;
        }
        sum
    }

    fn dot4_avx2(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        // SAFETY: only installed in a table after avx2+fma detection.
        unsafe { dot4_avx2_impl(a, b0, b1, b2, b3) }
    }

    /// Four AVX2 dots sharing each `a` load; per column identical to
    /// [`dot1_avx2_impl`], keeping `bt` partition-invariant in-mode.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot4_avx2_impl(
        a: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) -> [f32; 4] {
        let k = a.len();
        let (mut c0, mut c1, mut c2, mut c3) = (
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
        );
        let mut j = 0;
        while j + 8 <= k {
            let av = _mm256_loadu_ps(a.as_ptr().add(j));
            c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0.as_ptr().add(j)), c0);
            c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1.as_ptr().add(j)), c1);
            c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2.as_ptr().add(j)), c2);
            c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3.as_ptr().add(j)), c3);
            j += 8;
        }
        let mut out = [hsum256(c0), hsum256(c1), hsum256(c2), hsum256(c3)];
        while j < k {
            let av = *a.get_unchecked(j);
            out[0] += av * *b0.get_unchecked(j);
            out[1] += av * *b1.get_unchecked(j);
            out[2] += av * *b2.get_unchecked(j);
            out[3] += av * *b3.get_unchecked(j);
            j += 1;
        }
        out
    }

    /// Deterministic 8-lane reduction: halves first, then [`hsum128`].
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        hsum128(_mm_add_ps(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(SimdMode::parse("auto"), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse(""), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse("AVX2"), Some(SimdMode::Avx2));
        assert_eq!(SimdMode::parse("sse2"), Some(SimdMode::Sse2));
        assert_eq!(SimdMode::parse("off"), Some(SimdMode::Off));
        assert_eq!(SimdMode::parse("scalar"), Some(SimdMode::Off));
        assert_eq!(SimdMode::parse("avx512"), None);
        assert_eq!(mode_from_env(None), SimdMode::Auto);
        assert_eq!(mode_from_env(Some("off")), SimdMode::Off);
        // Malformed values warn once and fall back rather than abort.
        assert_eq!(mode_from_env(Some("fast")), SimdMode::Auto);
    }

    #[test]
    fn off_resolves_to_scalar_and_auto_to_a_supported_set() {
        assert_eq!(kernels_for(SimdMode::Off).name(), "scalar");
        let auto = kernels_for(SimdMode::Auto).name();
        assert!(["scalar", "sse2", "avx2"].contains(&auto), "{auto}");
    }

    #[test]
    fn axpy_is_bit_identical_across_every_supported_mode() {
        // Ragged length exercises both the vector body and the tail.
        let x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let base: Vec<f32> = (0..37).map(|i| (i as f32 * 0.11).cos()).collect();
        let av = 0.123_456_7f32;
        let mut want = base.clone();
        (SCALAR.axpy)(av, &x, &mut want);
        for mode in [SimdMode::Sse2, SimdMode::Avx2, SimdMode::Auto] {
            if !supported(mode) {
                continue;
            }
            let kn = kernels_for(mode);
            let mut got = base.clone();
            (kn.axpy)(av, &x, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "{} axpy {w} vs {g}", kn.name());
            }
        }
    }

    #[test]
    fn axpy_q8_is_bit_identical_across_every_supported_mode() {
        let q: Vec<i8> = (0..37).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let base: Vec<f32> = (0..37).map(|i| (i as f32 * 0.19).sin()).collect();
        let av = -1.618f32;
        let mut want = base.clone();
        (SCALAR.axpy_q8)(av, &q, &mut want);
        for mode in [SimdMode::Sse2, SimdMode::Avx2, SimdMode::Auto] {
            if !supported(mode) {
                continue;
            }
            let kn = kernels_for(mode);
            let mut got = base.clone();
            (kn.axpy_q8)(av, &q, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.to_bits(), g.to_bits(), "{} q8 {w} vs {g}", kn.name());
            }
        }
    }

    #[test]
    fn dot4_matches_dot1_within_each_mode() {
        // The bt partition-invariance hinge: a column must get the same
        // bits whether it lands in a 4-wide tile or the singles tail.
        let a: Vec<f32> = (0..29).map(|i| (i as f32 * 0.71).sin()).collect();
        let cols: Vec<Vec<f32>> = (0..4)
            .map(|c| (0..29).map(|i| ((i + c * 7) as f32 * 0.31).cos()).collect())
            .collect();
        for mode in [SimdMode::Off, SimdMode::Sse2, SimdMode::Avx2] {
            if !supported(mode) {
                continue;
            }
            let kn = kernels_for(mode);
            let tiled = (kn.dot4)(&a, &cols[0], &cols[1], &cols[2], &cols[3]);
            for (c, col) in cols.iter().enumerate() {
                let single = (kn.dot1)(&a, col);
                assert_eq!(
                    tiled[c].to_bits(),
                    single.to_bits(),
                    "{} col {c}: {} vs {single}",
                    kn.name(),
                    tiled[c]
                );
            }
        }
    }

    #[test]
    fn simd_dot_stays_within_the_documented_bound() {
        let a: Vec<f32> = (0..333).map(|i| (i as f32 * 0.123).sin() * 2.0).collect();
        let b: Vec<f32> = (0..333).map(|i| (i as f32 * 0.321).cos() * 2.0).collect();
        let want = dot1_scalar(&a, &b);
        let abs: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let bound = 8.0 * a.len() as f32 * f32::EPSILON * abs + f32::MIN_POSITIVE;
        for mode in [SimdMode::Sse2, SimdMode::Avx2] {
            if !supported(mode) {
                continue;
            }
            let got = (kernels_for(mode).dot1)(&a, &b);
            assert!(
                (got - want).abs() <= bound,
                "{}: {got} vs {want}, bound {bound}",
                mode.name()
            );
        }
    }
}
