//! Optimizers and learning-rate schedules.

use crate::tensor::Tensor;

/// AdamW with decoupled weight decay and optional global-norm gradient
/// clipping.
#[derive(Debug, Clone)]
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Clip gradients to this global L2 norm (disabled when `None`).
    pub clip_norm: Option<f32>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    step: u64,
}

impl AdamW {
    /// Create an optimizer for a fixed set of parameter shapes.
    pub fn new(lr: f32, params: &[Tensor]) -> AdamW {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            clip_norm: Some(1.0),
            m: params
                .iter()
                .map(|p| Tensor::zeros(p.shape().to_vec()))
                .collect(),
            v: params
                .iter()
                .map(|p| Tensor::zeros(p.shape().to_vec()))
                .collect(),
            step: 0,
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The first- and second-moment estimates, in parameter order. Exposed
    /// so checkpoints can snapshot full optimizer state.
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Overwrite the optimizer state (moments and update counter) from a
    /// checkpoint, so a resumed run continues bias correction and momentum
    /// bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if the moment counts or shapes mismatch the
    /// construction-time params.
    pub fn restore_state(&mut self, m: Vec<Tensor>, v: Vec<Tensor>, step: u64) {
        assert_eq!(m.len(), self.m.len(), "first-moment count");
        assert_eq!(v.len(), self.v.len(), "second-moment count");
        for (i, (mm, vv)) in m.iter().zip(&v).enumerate() {
            assert_eq!(
                mm.shape(),
                self.m[i].shape(),
                "first-moment shape for param {i}"
            );
            assert_eq!(
                vv.shape(),
                self.v[i].shape(),
                "second-moment shape for param {i}"
            );
        }
        self.m = m;
        self.v = v;
        self.step = step;
    }

    /// Apply one update. `grads[i]` may be `None` (parameter unused this
    /// step).
    ///
    /// # Panics
    ///
    /// Panics if lengths or shapes mismatch the construction-time params.
    pub fn step(&mut self, params: &mut [Tensor], grads: &[Option<&Tensor>]) {
        assert_eq!(params.len(), self.m.len(), "parameter count");
        assert_eq!(grads.len(), params.len(), "gradient count");
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);

        // Global-norm clipping factor.
        let mut clip_scale = 1.0f32;
        if let Some(max_norm) = self.clip_norm {
            let mut sq = 0.0f64;
            for g in grads.iter().flatten() {
                for &v in g.data() {
                    sq += f64::from(v) * f64::from(v);
                }
            }
            let norm = sq.sqrt() as f32;
            if norm > max_norm && norm > 0.0 {
                clip_scale = max_norm / norm;
            }
        }

        for (i, p) in params.iter_mut().enumerate() {
            let Some(g) = grads[i] else { continue };
            assert_eq!(g.shape(), p.shape(), "gradient shape for param {i}");
            let md = self.m[i].make_mut();
            let vd = self.v[i].make_mut();
            let pd = p.make_mut();
            for j in 0..pd.len() {
                let gj = g.data()[j] * clip_scale;
                md[j] = self.beta1 * md[j] + (1.0 - self.beta1) * gj;
                vd[j] = self.beta2 * vd[j] + (1.0 - self.beta2) * gj * gj;
                let mhat = md[j] / bc1;
                let vhat = vd[j] / bc2;
                pd[j] -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * pd[j]);
            }
        }
    }
}

/// Linear warmup followed by cosine decay to `min_factor × base`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineSchedule {
    /// Peak learning rate.
    pub base_lr: f32,
    /// Warmup steps.
    pub warmup: u64,
    /// Total steps in the schedule.
    pub total: u64,
    /// Floor, as a fraction of `base_lr`.
    pub min_factor: f32,
}

impl CosineSchedule {
    /// Learning rate at a step.
    pub fn lr(&self, step: u64) -> f32 {
        if self.warmup > 0 && step < self.warmup {
            return self.base_lr * (step + 1) as f32 / self.warmup as f32;
        }
        let span = self.total.saturating_sub(self.warmup).max(1);
        let t = (step.saturating_sub(self.warmup)).min(span) as f32 / span as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.base_lr * (self.min_factor + (1.0 - self.min_factor) * cos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adamw_reduces_quadratic_loss() {
        // Minimize f(p) = sum(p^2): gradient 2p.
        let mut params = vec![Tensor::from_vec(vec![3], vec![1.0, -2.0, 3.0])];
        let mut opt = AdamW::new(0.05, &params);
        opt.weight_decay = 0.0;
        for _ in 0..500 {
            let g: Vec<f32> = params[0].data().iter().map(|v| 2.0 * v).collect();
            let gt = Tensor::from_vec(vec![3], g);
            opt.step(&mut params, &[Some(&gt)]);
        }
        assert!(params[0].max_abs() < 1e-2, "{:?}", params[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn weight_decay_shrinks_untouched_direction() {
        let mut params = vec![Tensor::from_vec(vec![1], vec![1.0])];
        let mut opt = AdamW::new(0.1, &params);
        opt.weight_decay = 0.5;
        let zero = Tensor::zeros(vec![1]);
        for _ in 0..10 {
            opt.step(&mut params, &[Some(&zero)]);
        }
        assert!(params[0].data()[0] < 1.0, "decay applied");
    }

    #[test]
    fn clipping_bounds_update() {
        let mut params = vec![Tensor::zeros(vec![2])];
        let mut opt = AdamW::new(1.0, &params);
        opt.clip_norm = Some(1.0);
        opt.weight_decay = 0.0;
        let huge = Tensor::from_vec(vec![2], vec![1e6, 1e6]);
        opt.step(&mut params, &[Some(&huge)]);
        // Adam normalizes by sqrt(v), so the step is ~lr regardless, but
        // clipping must not blow up or NaN.
        assert!(params[0].is_finite());
    }

    #[test]
    fn none_grad_skips_param() {
        let mut params = vec![Tensor::from_vec(vec![1], vec![5.0])];
        let mut opt = AdamW::new(0.1, &params);
        opt.step(&mut params, &[None]);
        assert_eq!(params[0].data()[0], 5.0);
    }

    #[test]
    fn schedule_shape() {
        let s = CosineSchedule {
            base_lr: 1.0,
            warmup: 10,
            total: 110,
            min_factor: 0.1,
        };
        assert!(s.lr(0) < 0.2, "warmup starts low");
        assert!((s.lr(9) - 1.0).abs() < 1e-6, "peak after warmup");
        assert!(s.lr(60) < 1.0 && s.lr(60) > 0.1, "decaying");
        assert!((s.lr(110) - 0.1).abs() < 1e-5, "floor reached");
        assert!((s.lr(10_000) - 0.1).abs() < 1e-5, "stays at floor");
    }
}
