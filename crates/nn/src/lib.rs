//! # eva-nn
//!
//! A compact CPU tensor / reverse-mode autodiff library — the substrate for
//! EVA's decoder-only transformer, reward model, and PPO/DPO fine-tuning.
//! Built from scratch so the whole reproduction stays within the sanctioned
//! dependency set (no candle/burn/torch).
//!
//! - [`tensor::Tensor`] — dense row-major `f32` values, `Arc`-backed, plus
//!   the raw GEMM kernels ([`matmul_into`], [`matmul_kouter_into`],
//!   [`matmul_bt_into`], [`matmul_at_into`]) the batched decode path reuses
//!   against caller-owned scratch buffers. Each kernel comes in four
//!   flavors — bare (process-global pool), `_with` (explicit [`Pool`]),
//!   `_with_mode` (explicit [`SimdMode`]), `_serial` (scalar reference) —
//!   with the determinism contract spelled out in `tensor.rs`.
//! - [`simd`] — runtime-detected AVX2/FMA and SSE2 inner kernels behind a
//!   function-pointer table, selected by `EVA_NN_SIMD=auto|avx2|sse2|off`;
//!   the scalar table stays the bit-identity reference.
//! - [`quant`] — int8 per-output-channel symmetric weight quantization
//!   ([`QuantizedMatrix`], [`QuantizedParams`]) and the int8×f32→f32
//!   decode kernel [`matmul_q8_kouter_into`].
//! - [`pool`] — the persistent fork-join worker [`Pool`] behind the
//!   threaded kernels, sized by `EVA_NN_THREADS` (default: all cores,
//!   `1` = zero-overhead serial bypass).
//! - [`tape::Tape`] — define-by-run graph with exactly the op set a GPT-
//!   style model plus RLHF losses need (linear, embedding, batched matmul,
//!   head splitting, causal softmax, layer norm, GELU, cross entropy,
//!   per-token log-probs, segment sums, clipping, …). Every backward is
//!   finite-difference checked in `tests/gradcheck.rs`.
//! - [`optim::AdamW`] — with global-norm clipping and a cosine schedule.
//! - [`params::ParamSet`] — named parameters with binary checkpoints.
//! - [`ckpt`] — crash-safe persistence: atomic temp+fsync+rename writes,
//!   CRC64-verified manifests, and [`ckpt::TrainCheckpoint`] snapshots
//!   (params + optimizer moments + RNG state) for bit-exact resume.
//! - [`fault`] — seeded, deterministic fault injection (`EVA_FAULT_PLAN`)
//!   threaded through the write/decode/serve seams; zero-cost no-op when
//!   no plan is set.
//!
//! ## Example: fit a tiny regression
//!
//! ```
//! use eva_nn::{Tape, Tensor, AdamW};
//!
//! // Learn w ≈ 3 for y = w·x from a single example (x=2, y=6).
//! let mut w = vec![Tensor::from_vec(vec![1, 1], vec![0.0])];
//! let mut opt = AdamW::new(0.1, &w);
//! opt.weight_decay = 0.0;
//! for _ in 0..300 {
//!     let mut tape = Tape::new();
//!     let wv = tape.leaf(w[0].clone(), true);
//!     let x = tape.leaf(Tensor::from_vec(vec![1, 1], vec![2.0]), false);
//!     let y = tape.linear(x, wv, None);
//!     let target = tape.leaf(Tensor::from_vec(vec![1, 1], vec![6.0]), false);
//!     let err = tape.sub(y, target);
//!     let sq = tape.mul(err, err);
//!     let loss = tape.mean_all(sq);
//!     let grads = tape.backward(loss);
//!     opt.step(&mut w, &[grads.of(wv)]);
//! }
//! assert!((w[0].data()[0] - 3.0).abs() < 1e-2);
//! ```

pub mod ckpt;
pub mod fault;
pub mod optim;
pub mod params;
pub mod pool;
pub mod quant;
pub mod simd;
pub mod tape;
pub mod tensor;

pub use ckpt::{atomic_write, crc64, CkptError, FileIntegrity, RngState, TrainCheckpoint};
pub use optim::{AdamW, CosineSchedule};
pub use params::ParamSet;
pub use pool::{par_rows_mut, Pool};
pub use quant::{
    matmul_q8_kouter_into, matmul_q8_kouter_into_serial, matmul_q8_kouter_into_with,
    matmul_q8_kouter_into_with_mode, QuantizedMatrix, QuantizedParams,
};
pub use simd::SimdMode;
pub use tape::{Gradients, Tape, Value};
pub use tensor::{
    matmul_at_into, matmul_at_into_serial, matmul_at_into_with, matmul_at_into_with_mode,
    matmul_bt_into, matmul_bt_into_serial, matmul_bt_into_with, matmul_bt_into_with_mode,
    matmul_into, matmul_into_serial, matmul_into_with, matmul_into_with_mode, matmul_kouter_into,
    matmul_kouter_into_serial, matmul_kouter_into_with, matmul_kouter_into_with_mode, Tensor,
};
