//! # eva-nn
//!
//! A compact CPU tensor / reverse-mode autodiff library — the substrate for
//! EVA's decoder-only transformer, reward model, and PPO/DPO fine-tuning.
//! Built from scratch so the whole reproduction stays within the sanctioned
//! dependency set (no candle/burn/torch).
//!
//! - [`tensor::Tensor`] — dense row-major `f32` values, `Arc`-backed, plus
//!   the raw GEMM kernels ([`matmul_into`], [`matmul_kouter_into`]) the
//!   batched decode path reuses against caller-owned scratch buffers.
//! - [`tape::Tape`] — define-by-run graph with exactly the op set a GPT-
//!   style model plus RLHF losses need (linear, embedding, batched matmul,
//!   head splitting, causal softmax, layer norm, GELU, cross entropy,
//!   per-token log-probs, segment sums, clipping, …). Every backward is
//!   finite-difference checked in `tests/gradcheck.rs`.
//! - [`optim::AdamW`] — with global-norm clipping and a cosine schedule.
//! - [`params::ParamSet`] — named parameters with binary checkpoints.
//!
//! ## Example: fit a tiny regression
//!
//! ```
//! use eva_nn::{Tape, Tensor, AdamW};
//!
//! // Learn w ≈ 3 for y = w·x from a single example (x=2, y=6).
//! let mut w = vec![Tensor::from_vec(vec![1, 1], vec![0.0])];
//! let mut opt = AdamW::new(0.1, &w);
//! opt.weight_decay = 0.0;
//! for _ in 0..300 {
//!     let mut tape = Tape::new();
//!     let wv = tape.leaf(w[0].clone(), true);
//!     let x = tape.leaf(Tensor::from_vec(vec![1, 1], vec![2.0]), false);
//!     let y = tape.linear(x, wv, None);
//!     let target = tape.leaf(Tensor::from_vec(vec![1, 1], vec![6.0]), false);
//!     let err = tape.sub(y, target);
//!     let sq = tape.mul(err, err);
//!     let loss = tape.mean_all(sq);
//!     let grads = tape.backward(loss);
//!     opt.step(&mut w, &[grads.of(wv)]);
//! }
//! assert!((w[0].data()[0] - 3.0).abs() < 1e-2);
//! ```

pub mod optim;
pub mod params;
pub mod tape;
pub mod tensor;

pub use optim::{AdamW, CosineSchedule};
pub use params::ParamSet;
pub use tape::{Gradients, Tape, Value};
pub use tensor::{matmul_into, matmul_kouter_into, Tensor};
