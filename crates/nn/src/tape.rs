//! Reverse-mode automatic differentiation on a linear tape.
//!
//! A [`Tape`] is a define-by-run computation graph: every operation appends
//! a node holding its output [`Tensor`] and enough context to compute
//! vector–Jacobian products. [`Tape::backward`] walks the tape in reverse
//! and accumulates gradients for every node, which the optimizer then reads
//! for the parameter leaves.
//!
//! The op set is exactly what a decoder-only transformer plus PPO/DPO
//! losses need; each op's backward is verified against finite differences
//! in `tests/gradcheck.rs`.

use crate::pool::{self, par_rows_mut, SendPtr};
use crate::tensor::{matmul_at_into, matmul_bt_into, matmul_into, Tensor};

/// Minimum rows per parallel range for a row-parallel tape kernel of the
/// given row width — keeps tiny ops (and most unit tests) on the caller's
/// thread, where dispatch overhead would dominate.
fn par_min_rows(width: usize) -> usize {
    (16 * 1024 / width.max(1)).max(1)
}

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Value(usize);

impl Value {
    /// Raw node index (for debugging).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
enum Op {
    Leaf {
        requires_grad: bool,
    },
    Linear {
        x: Value,
        w: Value,
        b: Option<Value>,
    },
    Embedding {
        w: Value,
        ids: Vec<usize>,
    },
    Bmm {
        a: Value,
        b: Value,
    },
    Transpose12 {
        x: Value,
    },
    SplitHeads {
        x: Value,
        heads: usize,
    },
    MergeHeads {
        x: Value,
        heads: usize,
    },
    CausalSoftmax {
        x: Value,
        scale: f32,
    },
    LayerNorm {
        x: Value,
        gamma: Value,
        beta: Value,
    },
    Gelu {
        x: Value,
    },
    Add {
        a: Value,
        b: Value,
    },
    Sub {
        a: Value,
        b: Value,
    },
    Mul {
        a: Value,
        b: Value,
    },
    Scale {
        x: Value,
        c: f32,
    },
    AddScalar {
        x: Value,
    },
    Exp {
        x: Value,
    },
    LogSigmoid {
        x: Value,
    },
    Clamp {
        x: Value,
        lo: f32,
        hi: f32,
    },
    Minimum {
        a: Value,
        b: Value,
    },
    MulConst {
        x: Value,
        c: Tensor,
    },
    CrossEntropy {
        logits: Value,
        targets: Vec<usize>,
        mask: Vec<bool>,
    },
    LogProb {
        logits: Value,
        targets: Vec<usize>,
    },
    SegmentSum {
        x: Value,
        segments: Vec<usize>,
    },
    SelectRows {
        x: Value,
        idx: Vec<usize>,
    },
    MeanAll {
        x: Value,
    },
    SumAll {
        x: Value,
    },
    Reshape {
        x: Value,
    },
}

struct Node {
    value: Tensor,
    op: Op,
    /// Op-specific forward cache used by backward (e.g. layer-norm means /
    /// inverse stds, softmax probabilities).
    aux: Vec<f32>,
}

/// Gradients produced by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to a node, if it was reached.
    pub fn of(&self, v: Value) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(Option::as_ref)
    }
}

/// A reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value of a node.
    pub fn value(&self, v: Value) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Value {
        self.push_aux(value, op, Vec::new())
    }

    fn push_aux(&mut self, value: Tensor, op: Op, aux: Vec<f32>) -> Value {
        self.nodes.push(Node { value, op, aux });
        Value(self.nodes.len() - 1)
    }

    /// Add a leaf (input or parameter). Gradients are only accumulated into
    /// leaves with `requires_grad`.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Value {
        self.push(value, Op::Leaf { requires_grad })
    }

    /// `y = x @ w (+ b)`. `x` is `[..., din]` (leading dims flattened), `w`
    /// is `[din, dout]`, `b` is `[dout]`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn linear(&mut self, x: Value, w: Value, b: Option<Value>) -> Value {
        let xt = self.value(x);
        let wt = self.value(w);
        let din = *xt.shape().last().expect("x has a last dim");
        assert_eq!(wt.shape().len(), 2, "w is 2-D");
        assert_eq!(wt.shape()[0], din, "inner dims");
        let dout = wt.shape()[1];
        let rows = xt.numel() / din;
        let mut out = vec![0.0f32; rows * dout];
        matmul_into(xt.data(), wt.data(), &mut out, rows, din, dout);
        if let Some(bv) = b {
            let bt = self.value(bv);
            assert_eq!(bt.shape(), &[dout], "bias shape");
            let bd = bt.data();
            for r in 0..rows {
                for j in 0..dout {
                    out[r * dout + j] += bd[j];
                }
            }
        }
        let mut shape = xt.shape().to_vec();
        *shape.last_mut().expect("non-empty") = dout;
        self.push(Tensor::from_vec(shape, out), Op::Linear { x, w, b })
    }

    /// Row gather: `out[i] = w[ids[i]]` with `w` `[v, d]`, output `[n, d]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn embedding(&mut self, w: Value, ids: &[usize]) -> Value {
        let wt = self.value(w);
        assert_eq!(wt.shape().len(), 2, "embedding matrix is 2-D");
        let (v, d) = (wt.shape()[0], wt.shape()[1]);
        let wd = wt.data();
        let mut out = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < v, "embedding id {id} out of range {v}");
            out.extend_from_slice(&wd[id * d..id * d + d]);
        }
        self.push(
            Tensor::from_vec(vec![ids.len(), d], out),
            Op::Embedding {
                w,
                ids: ids.to_vec(),
            },
        )
    }

    /// Batched matmul: `[n,p,q] x [n,q,r] -> [n,p,r]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn bmm(&mut self, a: Value, b: Value) -> Value {
        let at = self.value(a);
        let bt = self.value(b);
        assert_eq!(at.shape().len(), 3, "a is 3-D");
        assert_eq!(bt.shape().len(), 3, "b is 3-D");
        let (n, p, q) = (at.shape()[0], at.shape()[1], at.shape()[2]);
        assert_eq!(bt.shape()[0], n, "batch dims");
        assert_eq!(bt.shape()[1], q, "inner dims");
        let r = bt.shape()[2];
        let mut out = vec![0.0f32; n * p * r];
        for i in 0..n {
            matmul_into(
                &at.data()[i * p * q..(i + 1) * p * q],
                &bt.data()[i * q * r..(i + 1) * q * r],
                &mut out[i * p * r..(i + 1) * p * r],
                p,
                q,
                r,
            );
        }
        self.push(Tensor::from_vec(vec![n, p, r], out), Op::Bmm { a, b })
    }

    /// Swap the last two axes of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the input is 3-D.
    pub fn transpose12(&mut self, x: Value) -> Value {
        let xt = self.value(x);
        assert_eq!(xt.shape().len(), 3, "transpose12 wants 3-D");
        let (n, p, q) = (xt.shape()[0], xt.shape()[1], xt.shape()[2]);
        let out = transpose12_raw(xt.data(), n, p, q);
        self.push(Tensor::from_vec(vec![n, q, p], out), Op::Transpose12 { x })
    }

    /// `[b,t,d] -> [b*h, t, d/h]`, grouping channels per head.
    ///
    /// # Panics
    ///
    /// Panics unless `d` divides by `heads`.
    pub fn split_heads(&mut self, x: Value, heads: usize) -> Value {
        let xt = self.value(x);
        assert_eq!(xt.shape().len(), 3, "split_heads wants 3-D");
        let (b, t, d) = (xt.shape()[0], xt.shape()[1], xt.shape()[2]);
        assert_eq!(d % heads, 0, "d divisible by heads");
        let dh = d / heads;
        let xd = xt.data();
        let mut out = vec![0.0f32; b * t * d];
        for bi in 0..b {
            for ti in 0..t {
                for hi in 0..heads {
                    let src = bi * t * d + ti * d + hi * dh;
                    let dst = (bi * heads + hi) * t * dh + ti * dh;
                    out[dst..dst + dh].copy_from_slice(&xd[src..src + dh]);
                }
            }
        }
        self.push(
            Tensor::from_vec(vec![b * heads, t, dh], out),
            Op::SplitHeads { x, heads },
        )
    }

    /// `[b*h, t, dh] -> [b, t, h*dh]`, inverse of [`Tape::split_heads`].
    ///
    /// # Panics
    ///
    /// Panics unless the leading dim divides by `heads`.
    pub fn merge_heads(&mut self, x: Value, heads: usize) -> Value {
        let xt = self.value(x);
        assert_eq!(xt.shape().len(), 3, "merge_heads wants 3-D");
        let (bh, t, dh) = (xt.shape()[0], xt.shape()[1], xt.shape()[2]);
        assert_eq!(bh % heads, 0, "batch divisible by heads");
        let b = bh / heads;
        let d = heads * dh;
        let xd = xt.data();
        let mut out = vec![0.0f32; b * t * d];
        for bi in 0..b {
            for ti in 0..t {
                for hi in 0..heads {
                    let src = (bi * heads + hi) * t * dh + ti * dh;
                    let dst = bi * t * d + ti * d + hi * dh;
                    out[dst..dst + dh].copy_from_slice(&xd[src..src + dh]);
                }
            }
        }
        self.push(
            Tensor::from_vec(vec![b, t, d], out),
            Op::MergeHeads { x, heads },
        )
    }

    /// Causal row softmax of attention scores `[n, t, t]`: position `i`
    /// attends to `j <= i`; scores are multiplied by `scale` first.
    ///
    /// # Panics
    ///
    /// Panics unless the input is 3-D with square trailing dims.
    pub fn causal_softmax(&mut self, x: Value, scale: f32) -> Value {
        let xt = self.value(x);
        assert_eq!(xt.shape().len(), 3, "causal_softmax wants 3-D");
        let (n, t, t2) = (xt.shape()[0], xt.shape()[1], xt.shape()[2]);
        assert_eq!(t, t2, "square attention");
        let xd = xt.data();
        let mut out = vec![0.0f32; n * t * t];
        // Rows (b, i) are independent; flat row r = b*t + i starts at r*t.
        par_rows_mut(pool::global(), &mut out, t, par_min_rows(t), |r, orow| {
            let i = r % t;
            let row = &xd[r * t..r * t + t];
            let lim = i + 1;
            let mut maxv = f32::NEG_INFINITY;
            for &v in &row[..lim] {
                maxv = maxv.max(v * scale);
            }
            let mut denom = 0.0f32;
            for j in 0..lim {
                let e = (row[j] * scale - maxv).exp();
                orow[j] = e;
                denom += e;
            }
            for o in &mut orow[..lim] {
                *o /= denom;
            }
        });
        self.push(
            Tensor::from_vec(vec![n, t, t], out),
            Op::CausalSoftmax { x, scale },
        )
    }

    /// Layer normalization over the last axis with affine parameters.
    ///
    /// # Panics
    ///
    /// Panics on parameter shape mismatch.
    pub fn layer_norm(&mut self, x: Value, gamma: Value, beta: Value) -> Value {
        const EPS: f32 = 1e-5;
        let xt = self.value(x);
        let d = *xt.shape().last().expect("x has last dim");
        assert_eq!(self.value(gamma).shape(), &[d], "gamma shape");
        assert_eq!(self.value(beta).shape(), &[d], "beta shape");
        let rows = xt.numel() / d;
        let xd = xt.data();
        let gd = self.value(gamma).data().to_vec();
        let bd = self.value(beta).data().to_vec();
        let mut out = vec![0.0f32; xt.numel()];
        let mut aux = vec![0.0f32; rows * 2]; // mean, inv_std per row
        let aux_ptr = SendPtr::new(&mut aux);
        par_rows_mut(pool::global(), &mut out, d, par_min_rows(d), |r, orow| {
            let row = &xd[r * d..r * d + d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            // SAFETY: row `r` is visited by exactly one range, so the aux
            // pair `[2r, 2r+2)` is written by exactly one thread.
            let a = unsafe { aux_ptr.slice(r * 2, r * 2 + 2) };
            a[0] = mean;
            a[1] = inv_std;
            for j in 0..d {
                orow[j] = (row[j] - mean) * inv_std * gd[j] + bd[j];
            }
        });
        let shape = xt.shape().to_vec();
        self.push_aux(
            Tensor::from_vec(shape, out),
            Op::LayerNorm { x, gamma, beta },
            aux,
        )
    }

    /// GELU activation (tanh approximation), elementwise.
    pub fn gelu(&mut self, x: Value) -> Value {
        let xt = self.value(x);
        let out: Vec<f32> = xt.data().iter().map(|&v| gelu_fwd(v)).collect();
        let shape = xt.shape().to_vec();
        self.push(Tensor::from_vec(shape, out), Op::Gelu { x })
    }

    fn binary(&mut self, a: Value, b: Value, f: impl Fn(f32, f32) -> f32, op: Op) -> Value {
        let at = self.value(a);
        let bt = self.value(b);
        assert_eq!(at.shape(), bt.shape(), "elementwise shapes must match");
        let out: Vec<f32> = at
            .data()
            .iter()
            .zip(bt.data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        let shape = at.shape().to_vec();
        self.push(Tensor::from_vec(shape, out), op)
    }

    /// Elementwise sum of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Value, b: Value) -> Value {
        self.binary(a, b, |x, y| x + y, Op::Add { a, b })
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        self.binary(a, b, |x, y| x - y, Op::Sub { a, b })
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: Value, b: Value) -> Value {
        self.binary(a, b, |x, y| x * y, Op::Mul { a, b })
    }

    /// Elementwise minimum (gradient flows to the smaller operand).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn minimum(&mut self, a: Value, b: Value) -> Value {
        self.binary(a, b, f32::min, Op::Minimum { a, b })
    }

    fn unary(&mut self, x: Value, f: impl Fn(f32) -> f32, op: Op) -> Value {
        let xt = self.value(x);
        let out: Vec<f32> = xt.data().iter().map(|&v| f(v)).collect();
        let shape = xt.shape().to_vec();
        self.push(Tensor::from_vec(shape, out), op)
    }

    /// Multiply by a constant.
    pub fn scale(&mut self, x: Value, c: f32) -> Value {
        self.unary(x, |v| v * c, Op::Scale { x, c })
    }

    /// Add a constant.
    pub fn add_scalar(&mut self, x: Value, c: f32) -> Value {
        self.unary(x, |v| v + c, Op::AddScalar { x })
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: Value) -> Value {
        self.unary(x, f32::exp, Op::Exp { x })
    }

    /// Elementwise `log σ(x)`, computed stably.
    pub fn log_sigmoid(&mut self, x: Value) -> Value {
        self.unary(x, |v| -softplus(-v), Op::LogSigmoid { x })
    }

    /// Clamp to `[lo, hi]` (zero gradient outside).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&mut self, x: Value, lo: f32, hi: f32) -> Value {
        assert!(lo <= hi, "clamp bounds");
        self.unary(x, |v| v.clamp(lo, hi), Op::Clamp { x, lo, hi })
    }

    /// Elementwise product with a constant tensor (e.g. a mask).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul_const(&mut self, x: Value, c: &Tensor) -> Value {
        let xt = self.value(x);
        assert_eq!(xt.shape(), c.shape(), "mul_const shape");
        let out: Vec<f32> = xt
            .data()
            .iter()
            .zip(c.data())
            .map(|(&a, &b)| a * b)
            .collect();
        let shape = xt.shape().to_vec();
        self.push(
            Tensor::from_vec(shape, out),
            Op::MulConst { x, c: c.clone() },
        )
    }

    /// Mean token-level cross entropy over unmasked positions: `logits` is
    /// `[n, v]`, `targets[i] < v`, positions with `mask[i] == false` are
    /// ignored. Returns a scalar.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or if every position is masked out.
    pub fn cross_entropy(&mut self, logits: Value, targets: &[usize], mask: &[bool]) -> Value {
        let lt = self.value(logits);
        assert_eq!(lt.shape().len(), 2, "logits are 2-D");
        let (n, v) = (lt.shape()[0], lt.shape()[1]);
        assert_eq!(targets.len(), n, "targets length");
        assert_eq!(mask.len(), n, "mask length");
        let count = mask.iter().filter(|&&m| m).count();
        assert!(
            count > 0,
            "cross entropy needs at least one active position"
        );
        let ld = lt.data();
        let mut aux = vec![0.0f32; n * v]; // softmax probabilities
        par_rows_mut(pool::global(), &mut aux, v, par_min_rows(v), |i, arow| {
            let row = &ld[i * v..i * v + v];
            let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0f32;
            for j in 0..v {
                let e = (row[j] - maxv).exp();
                arow[j] = e;
                denom += e;
            }
            for a in arow.iter_mut() {
                *a /= denom;
            }
        });
        // The f64 loss reduction stays serial in ascending `i` so the sum
        // is bit-identical at any thread count.
        let mut loss = 0.0f64;
        for i in 0..n {
            if mask[i] {
                loss -= f64::from(aux[i * v + targets[i]].max(1e-30).ln());
            }
        }
        let value = Tensor::scalar((loss / count as f64) as f32);
        self.push_aux(
            value,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                mask: mask.to_vec(),
            },
            aux,
        )
    }

    /// Per-row log probability of the target class: `logits` `[n, v]` →
    /// output `[n]` with `out[i] = log softmax(logits[i])[targets[i]]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn log_prob(&mut self, logits: Value, targets: &[usize]) -> Value {
        let lt = self.value(logits);
        assert_eq!(lt.shape().len(), 2, "logits are 2-D");
        let (n, v) = (lt.shape()[0], lt.shape()[1]);
        assert_eq!(targets.len(), n, "targets length");
        let ld = lt.data();
        let mut aux = vec![0.0f32; n * v];
        let mut out = vec![0.0f32; n];
        let out_ptr = SendPtr::new(&mut out);
        par_rows_mut(pool::global(), &mut aux, v, par_min_rows(v), |i, arow| {
            let row = &ld[i * v..i * v + v];
            let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0f32;
            for j in 0..v {
                let e = (row[j] - maxv).exp();
                arow[j] = e;
                denom += e;
            }
            for a in arow.iter_mut() {
                *a /= denom;
            }
            // SAFETY: `out[i]` belongs to exactly this row.
            unsafe {
                out_ptr.slice(i, i + 1)[0] = arow[targets[i]].max(1e-30).ln();
            }
        });
        self.push_aux(
            Tensor::from_vec(vec![n], out),
            Op::LogProb {
                logits,
                targets: targets.to_vec(),
            },
            aux,
        )
    }

    /// Sum elements into segments: `out[k] = Σ x[i] for segments[i] == k`.
    /// `x` is flat `[n]`; the number of segments is `max(segments)+1`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn segment_sum(&mut self, x: Value, segments: &[usize]) -> Value {
        let xt = self.value(x);
        assert_eq!(xt.numel(), segments.len(), "segments length");
        let k = segments.iter().copied().max().map_or(0, |m| m + 1);
        let mut out = vec![0.0f32; k.max(1)];
        for (i, &s) in segments.iter().enumerate() {
            out[s] += xt.data()[i];
        }
        self.push(
            Tensor::from_vec(vec![k.max(1)], out),
            Op::SegmentSum {
                x,
                segments: segments.to_vec(),
            },
        )
    }

    /// Select rows of a 2-D tensor: `out[i] = x[idx[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn select_rows(&mut self, x: Value, idx: &[usize]) -> Value {
        let xt = self.value(x);
        assert_eq!(xt.shape().len(), 2, "select_rows wants 2-D");
        let (n, d) = (xt.shape()[0], xt.shape()[1]);
        let xd = xt.data();
        let mut out = Vec::with_capacity(idx.len() * d);
        for &i in idx {
            assert!(i < n, "row {i} out of range {n}");
            out.extend_from_slice(&xd[i * d..i * d + d]);
        }
        self.push(
            Tensor::from_vec(vec![idx.len(), d], out),
            Op::SelectRows {
                x,
                idx: idx.to_vec(),
            },
        )
    }

    /// View with a new shape of equal element count (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics on element-count mismatch.
    pub fn reshape(&mut self, x: Value, shape: Vec<usize>) -> Value {
        let xt = self.value(x).reshaped(shape);
        self.push(xt, Op::Reshape { x })
    }

    /// Mean of all elements (scalar).
    pub fn mean_all(&mut self, x: Value) -> Value {
        let xt = self.value(x);
        let m = xt.sum() / xt.numel() as f32;
        self.push(Tensor::scalar(m), Op::MeanAll { x })
    }

    /// Sum of all elements (scalar).
    pub fn sum_all(&mut self, x: Value) -> Value {
        let xt = self.value(x);
        self.push(Tensor::scalar(xt.sum()), Op::SumAll { x })
    }

    /// Run backward from a scalar loss, returning gradients for every
    /// reachable node.
    ///
    /// # Panics
    ///
    /// Panics unless `loss` holds exactly one element.
    pub fn backward(&self, loss: Value) -> Gradients {
        assert_eq!(self.value(loss).numel(), 1, "backward needs a scalar loss");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..self.nodes.len()).rev() {
            let Some(gy) = grads[idx].take() else {
                continue;
            };
            let node = &self.nodes[idx];
            // Re-stash (callers may read any node's grad afterwards).
            let gy_ref = gy.clone();
            grads[idx] = Some(gy);
            let gy = gy_ref;
            match &node.op {
                Op::Leaf { .. } => {}
                Op::Linear { x, w, b } => {
                    let xt = self.value(*x);
                    let wt = self.value(*w);
                    let din = wt.shape()[0];
                    let dout = wt.shape()[1];
                    let rows = xt.numel() / din;
                    // dx = gy @ w^T
                    let mut dx = vec![0.0f32; rows * din];
                    matmul_bt_into(gy.data(), wt.data(), &mut dx, rows, dout, din);
                    accumulate(&mut grads, *x, Tensor::from_vec(xt.shape().to_vec(), dx));
                    // dw = x^T @ gy
                    let mut dw = vec![0.0f32; din * dout];
                    matmul_at_into(xt.data(), gy.data(), &mut dw, rows, din, dout);
                    accumulate(&mut grads, *w, Tensor::from_vec(vec![din, dout], dw));
                    if let Some(bv) = b {
                        let mut db = vec![0.0f32; dout];
                        for r in 0..rows {
                            for j in 0..dout {
                                db[j] += gy.data()[r * dout + j];
                            }
                        }
                        accumulate(&mut grads, *bv, Tensor::from_vec(vec![dout], db));
                    }
                }
                Op::Embedding { w, ids } => {
                    let wt = self.value(*w);
                    let (v, d) = (wt.shape()[0], wt.shape()[1]);
                    let mut dw = vec![0.0f32; v * d];
                    for (i, &id) in ids.iter().enumerate() {
                        for j in 0..d {
                            dw[id * d + j] += gy.data()[i * d + j];
                        }
                    }
                    accumulate(&mut grads, *w, Tensor::from_vec(vec![v, d], dw));
                }
                Op::Bmm { a, b } => {
                    let at = self.value(*a);
                    let bt = self.value(*b);
                    let (n, p, q) = (at.shape()[0], at.shape()[1], at.shape()[2]);
                    let r = bt.shape()[2];
                    let mut da = vec![0.0f32; n * p * q];
                    let mut db = vec![0.0f32; n * q * r];
                    for i in 0..n {
                        let gyb = &gy.data()[i * p * r..(i + 1) * p * r];
                        // da = gy @ b^T
                        matmul_bt_into(
                            gyb,
                            &bt.data()[i * q * r..(i + 1) * q * r],
                            &mut da[i * p * q..(i + 1) * p * q],
                            p,
                            r,
                            q,
                        );
                        // db = a^T @ gy
                        matmul_at_into(
                            &at.data()[i * p * q..(i + 1) * p * q],
                            gyb,
                            &mut db[i * q * r..(i + 1) * q * r],
                            p,
                            q,
                            r,
                        );
                    }
                    accumulate(&mut grads, *a, Tensor::from_vec(vec![n, p, q], da));
                    accumulate(&mut grads, *b, Tensor::from_vec(vec![n, q, r], db));
                }
                Op::Transpose12 { x } => {
                    let xt = self.value(*x);
                    let (n, p, q) = (xt.shape()[0], xt.shape()[1], xt.shape()[2]);
                    // gy is [n, q, p]; transpose back.
                    let dx = transpose12_raw(gy.data(), n, q, p);
                    accumulate(&mut grads, *x, Tensor::from_vec(vec![n, p, q], dx));
                }
                Op::SplitHeads { x, heads } => {
                    let xt = self.value(*x);
                    let (b, t, d) = (xt.shape()[0], xt.shape()[1], xt.shape()[2]);
                    let dh = d / heads;
                    let mut dx = vec![0.0f32; b * t * d];
                    for bi in 0..b {
                        for ti in 0..t {
                            for hi in 0..*heads {
                                let src = (bi * heads + hi) * t * dh + ti * dh;
                                let dst = bi * t * d + ti * d + hi * dh;
                                dx[dst..dst + dh].copy_from_slice(&gy.data()[src..src + dh]);
                            }
                        }
                    }
                    accumulate(&mut grads, *x, Tensor::from_vec(vec![b, t, d], dx));
                }
                Op::MergeHeads { x, heads } => {
                    let xt = self.value(*x);
                    let (bh, t, dh) = (xt.shape()[0], xt.shape()[1], xt.shape()[2]);
                    let b = bh / heads;
                    let d = heads * dh;
                    let mut dx = vec![0.0f32; bh * t * dh];
                    for bi in 0..b {
                        for ti in 0..t {
                            for hi in 0..*heads {
                                let src = bi * t * d + ti * d + hi * dh;
                                let dst = (bi * heads + hi) * t * dh + ti * dh;
                                dx[dst..dst + dh].copy_from_slice(&gy.data()[src..src + dh]);
                            }
                        }
                    }
                    accumulate(&mut grads, *x, Tensor::from_vec(vec![bh, t, dh], dx));
                }
                Op::CausalSoftmax { x, scale } => {
                    let y = &node.value;
                    let (n, t, _) = (y.shape()[0], y.shape()[1], y.shape()[2]);
                    let yd = y.data();
                    let gd = gy.data();
                    let scale = *scale;
                    let mut dx = vec![0.0f32; n * t * t];
                    par_rows_mut(pool::global(), &mut dx, t, par_min_rows(t), |r, dxr| {
                        let base = r * t;
                        let lim = r % t + 1;
                        let mut dot = 0.0f32;
                        for j in 0..lim {
                            dot += gd[base + j] * yd[base + j];
                        }
                        for j in 0..lim {
                            dxr[j] = scale * yd[base + j] * (gd[base + j] - dot);
                        }
                    });
                    accumulate(&mut grads, *x, Tensor::from_vec(vec![n, t, t], dx));
                }
                Op::LayerNorm { x, gamma, beta } => {
                    let xt = self.value(*x);
                    let d = *xt.shape().last().expect("last dim");
                    let rows = xt.numel() / d;
                    let gd = self.value(*gamma).data().to_vec();
                    let xd = xt.data();
                    let gyd = gy.data();
                    let mut dx = vec![0.0f32; xt.numel()];
                    let mut dgamma = vec![0.0f32; d];
                    let mut dbeta = vec![0.0f32; d];
                    let aux = &node.aux;
                    // dx rows are independent (each re-derives its own
                    // reduction terms), so they parallelize freely.
                    par_rows_mut(pool::global(), &mut dx, d, par_min_rows(d), |r, dxr| {
                        let mean = aux[r * 2];
                        let inv_std = aux[r * 2 + 1];
                        let row = &xd[r * d..r * d + d];
                        let gyr = &gyd[r * d..r * d + d];
                        let mut sum_g = 0.0f32;
                        let mut sum_gx = 0.0f32;
                        for j in 0..d {
                            let xhat = (row[j] - mean) * inv_std;
                            let gj = gyr[j] * gd[j];
                            sum_g += gj;
                            sum_gx += gj * xhat;
                        }
                        let inv_d = 1.0 / d as f32;
                        for j in 0..d {
                            let xhat = (row[j] - mean) * inv_std;
                            let gj = gyr[j] * gd[j];
                            dxr[j] = inv_std * (gj - inv_d * sum_g - xhat * inv_d * sum_gx);
                        }
                    });
                    // dgamma/dbeta reduce *across* rows — splitting that sum
                    // over threads would reassociate it, so it stays serial
                    // in ascending `r` (bit-identical at any thread count).
                    for r in 0..rows {
                        let mean = aux[r * 2];
                        let inv_std = aux[r * 2 + 1];
                        let row = &xd[r * d..r * d + d];
                        let gyr = &gyd[r * d..r * d + d];
                        for j in 0..d {
                            let xhat = (row[j] - mean) * inv_std;
                            dgamma[j] += gyr[j] * xhat;
                            dbeta[j] += gyr[j];
                        }
                    }
                    accumulate(&mut grads, *x, Tensor::from_vec(xt.shape().to_vec(), dx));
                    accumulate(&mut grads, *gamma, Tensor::from_vec(vec![d], dgamma));
                    accumulate(&mut grads, *beta, Tensor::from_vec(vec![d], dbeta));
                }
                Op::Gelu { x } => {
                    let xt = self.value(*x);
                    let dx: Vec<f32> = xt
                        .data()
                        .iter()
                        .zip(gy.data())
                        .map(|(&v, &g)| g * gelu_bwd(v))
                        .collect();
                    accumulate(&mut grads, *x, Tensor::from_vec(xt.shape().to_vec(), dx));
                }
                Op::Add { a, b } => {
                    accumulate(&mut grads, *a, gy.clone());
                    accumulate(&mut grads, *b, gy);
                }
                Op::Sub { a, b } => {
                    accumulate(&mut grads, *a, gy.clone());
                    let neg: Vec<f32> = gy.data().iter().map(|v| -v).collect();
                    accumulate(&mut grads, *b, Tensor::from_vec(gy.shape().to_vec(), neg));
                }
                Op::Mul { a, b } => {
                    let at = self.value(*a);
                    let bt = self.value(*b);
                    let da: Vec<f32> = gy
                        .data()
                        .iter()
                        .zip(bt.data())
                        .map(|(&g, &v)| g * v)
                        .collect();
                    let db: Vec<f32> = gy
                        .data()
                        .iter()
                        .zip(at.data())
                        .map(|(&g, &v)| g * v)
                        .collect();
                    accumulate(&mut grads, *a, Tensor::from_vec(at.shape().to_vec(), da));
                    accumulate(&mut grads, *b, Tensor::from_vec(bt.shape().to_vec(), db));
                }
                Op::Minimum { a, b } => {
                    let at = self.value(*a);
                    let bt = self.value(*b);
                    let mut da = vec![0.0f32; at.numel()];
                    let mut db = vec![0.0f32; bt.numel()];
                    for i in 0..at.numel() {
                        if at.data()[i] <= bt.data()[i] {
                            da[i] = gy.data()[i];
                        } else {
                            db[i] = gy.data()[i];
                        }
                    }
                    accumulate(&mut grads, *a, Tensor::from_vec(at.shape().to_vec(), da));
                    accumulate(&mut grads, *b, Tensor::from_vec(bt.shape().to_vec(), db));
                }
                Op::Scale { x, c } => {
                    let dx: Vec<f32> = gy.data().iter().map(|v| v * c).collect();
                    accumulate(&mut grads, *x, Tensor::from_vec(gy.shape().to_vec(), dx));
                }
                Op::AddScalar { x } => {
                    accumulate(&mut grads, *x, gy);
                }
                Op::Exp { x } => {
                    let y = &node.value;
                    let dx: Vec<f32> = gy
                        .data()
                        .iter()
                        .zip(y.data())
                        .map(|(&g, &v)| g * v)
                        .collect();
                    accumulate(&mut grads, *x, Tensor::from_vec(y.shape().to_vec(), dx));
                }
                Op::LogSigmoid { x } => {
                    let xt = self.value(*x);
                    // d/dx log σ(x) = σ(-x).
                    let dx: Vec<f32> = xt
                        .data()
                        .iter()
                        .zip(gy.data())
                        .map(|(&v, &g)| g * sigmoid(-v))
                        .collect();
                    accumulate(&mut grads, *x, Tensor::from_vec(xt.shape().to_vec(), dx));
                }
                Op::Clamp { x, lo, hi } => {
                    let xt = self.value(*x);
                    let dx: Vec<f32> = xt
                        .data()
                        .iter()
                        .zip(gy.data())
                        .map(|(&v, &g)| if v >= *lo && v <= *hi { g } else { 0.0 })
                        .collect();
                    accumulate(&mut grads, *x, Tensor::from_vec(xt.shape().to_vec(), dx));
                }
                Op::MulConst { x, c } => {
                    let dx: Vec<f32> = gy
                        .data()
                        .iter()
                        .zip(c.data())
                        .map(|(&g, &v)| g * v)
                        .collect();
                    accumulate(&mut grads, *x, Tensor::from_vec(c.shape().to_vec(), dx));
                }
                Op::CrossEntropy {
                    logits,
                    targets,
                    mask,
                } => {
                    let lt = self.value(*logits);
                    let (n, v) = (lt.shape()[0], lt.shape()[1]);
                    let count = mask.iter().filter(|&&m| m).count() as f32;
                    let g = gy.item() / count;
                    let mut dl = vec![0.0f32; n * v];
                    let aux = &node.aux;
                    par_rows_mut(pool::global(), &mut dl, v, par_min_rows(v), |i, dli| {
                        if !mask[i] {
                            return;
                        }
                        for j in 0..v {
                            let p = aux[i * v + j];
                            let onehot = if j == targets[i] { 1.0 } else { 0.0 };
                            dli[j] = g * (p - onehot);
                        }
                    });
                    accumulate(&mut grads, *logits, Tensor::from_vec(vec![n, v], dl));
                }
                Op::LogProb { logits, targets } => {
                    let lt = self.value(*logits);
                    let (n, v) = (lt.shape()[0], lt.shape()[1]);
                    let mut dl = vec![0.0f32; n * v];
                    let aux = &node.aux;
                    let gyd = gy.data();
                    par_rows_mut(pool::global(), &mut dl, v, par_min_rows(v), |i, dli| {
                        let gi = gyd[i];
                        if gi == 0.0 {
                            return;
                        }
                        for j in 0..v {
                            let p = aux[i * v + j];
                            let onehot = if j == targets[i] { 1.0 } else { 0.0 };
                            dli[j] = gi * (onehot - p);
                        }
                    });
                    accumulate(&mut grads, *logits, Tensor::from_vec(vec![n, v], dl));
                }
                Op::SegmentSum { x, segments } => {
                    let xt = self.value(*x);
                    let dx: Vec<f32> = segments.iter().map(|&s| gy.data()[s]).collect();
                    accumulate(&mut grads, *x, Tensor::from_vec(xt.shape().to_vec(), dx));
                }
                Op::SelectRows { x, idx } => {
                    let xt = self.value(*x);
                    let (n, d) = (xt.shape()[0], xt.shape()[1]);
                    let mut dx = vec![0.0f32; n * d];
                    for (i, &row) in idx.iter().enumerate() {
                        for j in 0..d {
                            dx[row * d + j] += gy.data()[i * d + j];
                        }
                    }
                    accumulate(&mut grads, *x, Tensor::from_vec(vec![n, d], dx));
                }
                Op::MeanAll { x } => {
                    let xt = self.value(*x);
                    let g = gy.item() / xt.numel() as f32;
                    accumulate(&mut grads, *x, Tensor::full(xt.shape().to_vec(), g));
                }
                Op::SumAll { x } => {
                    let xt = self.value(*x);
                    accumulate(&mut grads, *x, Tensor::full(xt.shape().to_vec(), gy.item()));
                }
                Op::Reshape { x } => {
                    let xt = self.value(*x);
                    accumulate(&mut grads, *x, gy.reshaped(xt.shape().to_vec()));
                }
            }
        }
        // Honor `requires_grad`: constants report no gradient.
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Leaf {
                requires_grad: false,
            } = node.op
            {
                grads[idx] = None;
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Value, g: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => {
            let e = existing.make_mut();
            for (ev, gv) in e.iter_mut().zip(g.data()) {
                *ev += gv;
            }
        }
        slot @ None => *slot = Some(g),
    }
}

fn transpose12_raw(x: &[f32], n: usize, p: usize, q: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * p * q];
    for b in 0..n {
        for i in 0..p {
            for j in 0..q {
                out[b * p * q + j * p + i] = x[b * p * q + i * q + j];
            }
        }
    }
    out
}

fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        0.0
    } else {
        (1.0 + x.exp()).ln()
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_linear() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]), false);
        let w = tape.leaf(Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]), true);
        let b = tape.leaf(Tensor::from_vec(vec![2], vec![0.5, -0.5]), true);
        let y = tape.linear(x, w, Some(b));
        assert_eq!(tape.value(y).data(), &[1.5, 1.5]);
    }

    #[test]
    fn backward_through_linear_chain() {
        // loss = mean(x @ w); dw should be x repeated / numel.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1, 2], vec![3.0, 4.0]), false);
        let w = tape.leaf(Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]), true);
        let y = tape.linear(x, w, None);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        let dw = grads.of(w).unwrap();
        assert_eq!(dw.data(), &[1.5, 1.5, 2.0, 2.0]);
    }

    #[test]
    fn causal_softmax_rows_sum_to_one_in_visible_range() {
        let mut tape = Tape::new();
        let x = tape.leaf(
            Tensor::from_vec(vec![1, 3, 3], (0..9).map(|i| i as f32).collect()),
            false,
        );
        let y = tape.causal_softmax(x, 1.0);
        let yd = tape.value(y).data().to_vec();
        // Row 0: only position 0 visible.
        assert!((yd[0] - 1.0).abs() < 1e-6);
        assert_eq!(yd[1], 0.0);
        // Row 2: all three visible, sums to 1.
        let s: f32 = yd[6..9].iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn split_merge_heads_inverse() {
        let mut tape = Tape::new();
        let data: Vec<f32> = (0..2 * 3 * 4).map(|i| i as f32).collect();
        let x = tape.leaf(Tensor::from_vec(vec![2, 3, 4], data.clone()), false);
        let s = tape.split_heads(x, 2);
        let m = tape.merge_heads(s, 2);
        assert_eq!(tape.value(m).data(), data.as_slice());
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut tape = Tape::new();
        let w = tape.leaf(
            Tensor::from_vec(vec![3, 2], vec![0., 1., 10., 11., 20., 21.]),
            true,
        );
        let e = tape.embedding(w, &[2, 0]);
        assert_eq!(tape.value(e).data(), &[20., 21., 0., 1.]);
        let loss = tape.sum_all(e);
        let g = tape.backward(loss);
        assert_eq!(g.of(w).unwrap().data(), &[1., 1., 0., 0., 1., 1.]);
    }

    #[test]
    fn cross_entropy_matches_hand_calc() {
        let mut tape = Tape::new();
        // Uniform logits over 4 classes -> loss = ln(4).
        let l = tape.leaf(Tensor::zeros(vec![2, 4]), true);
        let loss = tape.cross_entropy(l, &[1, 2], &[true, true]);
        assert!((tape.value(loss).item() - 4.0f32.ln()).abs() < 1e-6);
        let g = tape.backward(loss);
        let dl = g.of(l).unwrap();
        // Gradient: (p - onehot)/2 with p = 0.25.
        assert!((dl.data()[0] - 0.125).abs() < 1e-6);
        assert!((dl.data()[1] + 0.375).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_respects_mask() {
        let mut tape = Tape::new();
        let l = tape.leaf(Tensor::zeros(vec![2, 4]), true);
        let loss = tape.cross_entropy(l, &[1, 2], &[true, false]);
        let g = tape.backward(loss);
        let dl = g.of(l).unwrap();
        assert!(
            dl.data()[4..].iter().all(|&v| v == 0.0),
            "masked row has no grad"
        );
    }

    #[test]
    fn log_prob_is_log_softmax_at_target() {
        let mut tape = Tape::new();
        let l = tape.leaf(Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]), true);
        let lp = tape.log_prob(l, &[2]);
        let denom: f32 = (1f32).exp() + (2f32).exp() + (3f32).exp();
        let expect = (3f32).exp().ln() - denom.ln();
        assert!((tape.value(lp).data()[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn segment_sum_groups() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![5], vec![1., 2., 3., 4., 5.]), true);
        let s = tape.segment_sum(x, &[0, 0, 1, 1, 1]);
        assert_eq!(tape.value(s).data(), &[3., 12.]);
        let loss = tape.sum_all(s);
        let g = tape.backward(loss);
        assert_eq!(g.of(x).unwrap().data(), &[1., 1., 1., 1., 1.]);
    }

    #[test]
    fn minimum_routes_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![2], vec![1.0, 5.0]), true);
        let b = tape.leaf(Tensor::from_vec(vec![2], vec![2.0, 4.0]), true);
        let m = tape.minimum(a, b);
        let loss = tape.sum_all(m);
        let g = tape.backward(loss);
        assert_eq!(g.of(a).unwrap().data(), &[1.0, 0.0]);
        assert_eq!(g.of(b).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn grad_accumulates_on_reuse() {
        // y = x + x: dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![2], vec![1.0, 2.0]), true);
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss);
        assert_eq!(g.of(x).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(vec![3]), true);
        let _ = tape.backward(x);
    }
}
