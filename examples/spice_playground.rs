//! The simulator substrate as a standalone tool: build a five-transistor
//! OTA, print its operating point, Bode response, and the transient of a
//! buck converter cell.
//!
//! Run with: `cargo run --release -p eva-core --example spice_playground`

use eva_circuit::{CircuitPin, DeviceKind, PinRole, TopologyBuilder};
use eva_spice::{
    ac_sweep, dc_operating_point, elaborate, log_sweep, measure_converter, measure_opamp, Sizing,
    Stimulus, Tech,
};

fn main() {
    let tech = Tech::default();

    // --- Five-transistor OTA.
    let mut b = TopologyBuilder::new();
    let m1 = b.add(DeviceKind::Nmos);
    let m2 = b.add(DeviceKind::Nmos);
    let mt = b.add(DeviceKind::Nmos);
    let m3 = b.add(DeviceKind::Pmos);
    let m4 = b.add(DeviceKind::Pmos);
    use PinRole::*;
    b.wire(b.pin(m1, Gate), CircuitPin::Vin(1)).unwrap();
    b.wire(b.pin(m2, Gate), CircuitPin::Vin(2)).unwrap();
    b.wire(b.pin(m1, Source), b.pin(mt, Drain)).unwrap();
    b.wire(b.pin(m2, Source), b.pin(mt, Drain)).unwrap();
    b.wire(b.pin(mt, Gate), CircuitPin::Vbias(1)).unwrap();
    b.wire(b.pin(mt, Source), CircuitPin::Vss).unwrap();
    for m in [m1, m2, mt] {
        b.wire(b.pin(m, Bulk), CircuitPin::Vss).unwrap();
    }
    b.wire(b.pin(m3, Drain), b.pin(m1, Drain)).unwrap();
    b.wire(b.pin(m3, Gate), b.pin(m1, Drain)).unwrap();
    b.wire(b.pin(m4, Gate), b.pin(m1, Drain)).unwrap();
    b.wire(b.pin(m3, Source), CircuitPin::Vdd).unwrap();
    b.wire(b.pin(m4, Source), CircuitPin::Vdd).unwrap();
    b.wire(b.pin(m3, Bulk), CircuitPin::Vdd).unwrap();
    b.wire(b.pin(m4, Bulk), CircuitPin::Vdd).unwrap();
    b.wire(b.pin(m4, Drain), b.pin(m2, Drain)).unwrap();
    b.wire(b.pin(m4, Drain), CircuitPin::Vout(1)).unwrap();
    let ota = b.build().unwrap();

    println!("=== Five-transistor OTA ===");
    let sizing = Sizing::default_for(&ota);
    let netlist = elaborate(&ota, &sizing, &Stimulus::default()).unwrap();
    let op = dc_operating_point(&netlist, &tech).unwrap();
    println!(
        "DC operating point ({} Newton iterations):",
        op.iterations()
    );
    for node in 0..netlist.node_count() {
        println!(
            "  v({}) = {:+.4} V",
            netlist.node_name(node),
            op.voltage(node)
        );
    }

    let out = netlist.port_node(CircuitPin::Vout(1)).unwrap();
    let freqs = log_sweep(10.0, 1e9, 9);
    let ac = ac_sweep(&netlist, &tech, &op, &freqs).unwrap();
    println!("\nBode magnitude at VOUT1:");
    for (f, m) in freqs.iter().zip(ac.magnitude(out)) {
        let db = 20.0 * m.max(1e-12).log10();
        let bars = ((db + 20.0).max(0.0) / 2.0) as usize;
        println!("  {f:>10.0} Hz  {db:>7.2} dB  {}", "#".repeat(bars));
    }
    let metrics = measure_opamp(&ota, &sizing, &Stimulus::default(), &tech).unwrap();
    println!(
        "\ngain {:.1}x, f3dB {:.2e} Hz, UGB {:.2e} Hz, power {:.2} µW, FoM {:.1}",
        metrics.dc_gain,
        metrics.bw_3db,
        metrics.unity_gain_freq,
        metrics.power * 1e6,
        metrics.fom
    );

    // --- Buck converter cell.
    println!("\n=== PMOS buck cell ===");
    let mut b = TopologyBuilder::new();
    let sw = b.add(DeviceKind::Pmos);
    b.wire(b.pin(sw, Gate), CircuitPin::Clk(1)).unwrap();
    b.wire(b.pin(sw, Source), CircuitPin::Vdd).unwrap();
    b.wire(b.pin(sw, Bulk), CircuitPin::Vdd).unwrap();
    let l = b.add(DeviceKind::Inductor);
    b.wire(b.pin(l, Plus), b.pin(sw, Drain)).unwrap();
    b.wire(b.pin(l, Minus), CircuitPin::Vout(1)).unwrap();
    let d = b.add(DeviceKind::Diode);
    b.wire(b.pin(d, Anode), CircuitPin::Vss).unwrap();
    b.wire(b.pin(d, Cathode), b.pin(sw, Drain)).unwrap();
    let c = b.add(DeviceKind::Capacitor);
    b.wire(b.pin(c, Plus), CircuitPin::Vout(1)).unwrap();
    b.wire(b.pin(c, Minus), CircuitPin::Vss).unwrap();
    let buck = b.build().unwrap();

    let mut sizing = Sizing::default_for(&buck);
    for dev in buck.devices() {
        match dev.kind {
            DeviceKind::Pmos => {
                sizing.set(dev, eva_spice::DeviceParams::Mos { w: 2e-3, l: 0.2e-6 });
            }
            DeviceKind::Inductor => {
                sizing.set(dev, eva_spice::DeviceParams::Inductor { henries: 4.7e-6 });
            }
            DeviceKind::Capacitor => {
                sizing.set(dev, eva_spice::DeviceParams::Capacitor { farads: 10e-9 });
            }
            _ => {}
        }
    }
    let metrics = measure_converter(&buck, &sizing, &Stimulus::converter(), &tech, 0.5).unwrap();
    println!(
        "Vout {:.3} V (ratio {:.2}), efficiency {:.1}%, FoM {:.2}",
        metrics.vout,
        metrics.ratio,
        metrics.efficiency * 100.0,
        metrics.fom
    );
}
