//! Explore the generated topology corpus: per-family counts, validity, an
//! example Eulerian serialization, and the data-driven tokenizer vocabulary.
//!
//! Run with: `cargo run --release -p eva-core --example dataset_explorer`

use eva_circuit::EulerianSequence;
use eva_dataset::{expand, Corpus, CorpusOptions};
use eva_tokenizer::Tokenizer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    println!("Building the full 11-family corpus …");
    let t0 = std::time::Instant::now();
    let corpus = Corpus::build(&CorpusOptions::default());
    println!(
        "  {} unique valid topologies in {:?}\n",
        corpus.len(),
        t0.elapsed()
    );

    println!(
        "{:<18} {:>6} {:>10} {:>10}",
        "family", "count", "devices", "edges"
    );
    for (ty, n) in corpus.type_histogram() {
        let members = corpus.of_type(ty);
        let avg_dev: f64 = members
            .iter()
            .map(|e| e.topology.device_count() as f64)
            .sum::<f64>()
            / members.len() as f64;
        let avg_edge: f64 = members
            .iter()
            .map(|e| e.topology.edge_count() as f64)
            .sum::<f64>()
            / members.len() as f64;
        println!(
            "{:<18} {:>6} {:>10.1} {:>10.1}",
            ty.to_string(),
            n,
            avg_dev,
            avg_edge
        );
    }

    // Sequence expansion + tokenizer, exactly as pretraining sees it.
    let records = expand(&corpus.entries()[..50.min(corpus.len())], 3, &mut rng);
    let token_lists: Vec<Vec<String>> = records.iter().map(|r| r.sequence.tokens()).collect();
    let tokenizer = Tokenizer::fit(token_lists.iter().map(|v| v.as_slice()));
    println!(
        "\nExpanded {} topologies → {} sequences; vocabulary {} tokens",
        50.min(corpus.len()),
        records.len(),
        tokenizer.vocab_size()
    );

    // Show one serialization round trip.
    let entry = &corpus.entries()[0];
    println!("\nExample: {} ({})", entry.variant, entry.circuit_type);
    println!("{}", entry.topology);
    let seq = EulerianSequence::from_topology(&entry.topology, &mut rng).unwrap();
    println!("Eulerian walk ({} tokens):\n  {}", seq.len(), seq);
    let back = seq.to_topology().unwrap();
    assert_eq!(back, entry.topology, "serialization is lossless");
    println!("\nDecoded back to an identical topology ✓");
}
