//! Targeted power-converter discovery with DPO — the second FoM column of
//! Table II in miniature: label a small converter set (the paper uses 362
//! labels), fine-tune with preference pairs, and compare converter FoM@10
//! before/after fine-tuning.
//!
//! Run with: `cargo run --release -p eva-core --example power_converter_dpo`

use eva_core::{Eva, EvaOptions, PretrainConfig};
use eva_dataset::{CircuitType, CorpusOptions};
use eva_eval::{fom_at_k, GaConfig};
use eva_rl::{DpoConfig, RankClass};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let options = EvaOptions {
        // Memorization-leaning demo scale (see quickstart/EXPERIMENTS.md).
        corpus: CorpusOptions {
            target_size: 80,
            decorate: false,
            validate: true,
            families: Some(vec![CircuitType::PowerConverter, CircuitType::ScSampler]),
        },
        sequences_per_topology: 2,
        n_layers: 2,
        n_heads: 2,
        d_model: 64,
        max_seq_cap: None,
        pretrain: PretrainConfig {
            steps: 900,
            batch_size: 8,
            lr: 1e-3,
            warmup: 30,
        },
    };

    println!("Preparing + pretraining on converter-heavy corpus …");
    let mut eva = Eva::prepare(&options, &mut rng);
    let losses = eva.pretrain(&options.pretrain, &mut rng);
    println!("  loss {:.2} → {:.2}", losses[0], losses.last().unwrap());

    println!("Labeling converters (transient simulation per candidate) …");
    let data = eva.finetune_data(CircuitType::PowerConverter, 80, &mut rng);
    let counts = data.class_counts();
    println!(
        "  high {} / low {} / irrelevant {} / invalid {} (threshold {:.2})",
        counts[0], counts[1], counts[2], counts[3], data.fom_threshold
    );
    for s in data.of_class(RankClass::HighPerformance).iter().take(3) {
        println!("  high-performance example: {} tokens", s.tokens.len());
    }

    println!("DPO fine-tuning …");
    let (policy, stats) = eva.finetune_dpo(&data, 50, DpoConfig::default(), &mut rng);
    if let (Some(first), Some(last)) = (stats.first(), stats.last()) {
        println!(
            "  loss {:.3} → {:.3}, final train-pair accuracy {:.2}",
            first.loss, last.loss, last.accuracy
        );
    }

    let ga = GaConfig {
        population: 12,
        generations: 6,
        threads: 4,
        ..GaConfig::default()
    };
    println!("\nConverter FoM@10:");
    for (name, model) in [
        ("EVA (Pretrain)", eva.model().clone()),
        ("EVA (Pretrain+DPO)", policy),
    ] {
        let mut generator = eva.generator(name, &model, 362);
        generator.temperature = 0.7;
        generator.top_k = Some(8);
        let mut grng = ChaCha8Rng::seed_from_u64(77);
        match fom_at_k(
            &mut generator,
            10,
            CircuitType::PowerConverter,
            &ga,
            &mut grng,
        ) {
            Some(f) => println!("  {name:<22} FoM@10 = {f:.2}"),
            None => println!("  {name:<22} FoM@10 = (no valid converter in 10 attempts)"),
        }
    }
}
