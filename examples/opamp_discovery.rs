//! Targeted Op-Amp discovery: pretrain, fine-tune with DPO toward
//! high-FoM Op-Amps, then spend exactly 10 generation attempts and report
//! the best GA-sized figure of merit — the paper's discovery-efficiency
//! protocol in miniature.
//!
//! Run with: `cargo run --release -p eva-core --example opamp_discovery`

use eva_core::{Eva, EvaOptions, PretrainConfig};
use eva_dataset::{CircuitType, CorpusOptions};
use eva_eval::{fom_at_k, GaConfig};
use eva_rl::DpoConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let options = EvaOptions {
        // Memorization-leaning demo scale (see quickstart/EXPERIMENTS.md).
        corpus: CorpusOptions {
            target_size: 50,
            decorate: false,
            validate: true,
            families: Some(vec![CircuitType::OpAmp, CircuitType::Bandgap]),
        },
        sequences_per_topology: 2,
        n_layers: 2,
        n_heads: 2,
        d_model: 64,
        max_seq_cap: None,
        pretrain: PretrainConfig {
            steps: 1500,
            batch_size: 8,
            lr: 1e-3,
            warmup: 30,
        },
    };

    println!("Preparing + pretraining …");
    let mut eva = Eva::prepare(&options, &mut rng);
    let losses = eva.pretrain(&options.pretrain, &mut rng);
    println!(
        "  corpus {}, loss {:.2} → {:.2}",
        eva.corpus().len(),
        losses[0],
        losses.last().unwrap()
    );

    println!("Labeling a small Op-Amp fine-tuning set …");
    let data = eva.finetune_data(CircuitType::OpAmp, 120, &mut rng);
    println!(
        "  classes (high/low/irrelevant/invalid): {:?}, FoM threshold {:.1}",
        data.class_counts(),
        data.fom_threshold
    );

    println!("DPO fine-tuning …");
    let (policy, stats) = eva.finetune_dpo(&data, 60, DpoConfig::default(), &mut rng);
    if let (Some(first), Some(last)) = (stats.first(), stats.last()) {
        println!("  DPO loss {:.3} → {:.3}", first.loss, last.loss);
    }

    let ga = GaConfig {
        population: 16,
        generations: 8,
        threads: 4,
        ..GaConfig::default()
    };

    println!("\nDiscovery efficiency (10 attempts each):");
    for (name, model, temp) in [
        ("EVA (Pretrain)", eva.model().clone(), 0.7),
        ("EVA (Pretrain+DPO)", policy, 0.7),
    ] {
        let mut generator = eva.generator(name, &model, 0);
        generator.temperature = temp;
        generator.top_k = Some(8);
        let mut grng = ChaCha8Rng::seed_from_u64(99);
        let fom = fom_at_k(&mut generator, 10, CircuitType::OpAmp, &ga, &mut grng);
        match fom {
            Some(f) => println!("  {name:<22} FoM@10 = {f:.1}"),
            None => println!("  {name:<22} FoM@10 = (no valid Op-Amp in 10 attempts)"),
        }
    }
}
