//! Quickstart: build a small corpus, pretrain EVA briefly, generate
//! circuits, and inspect one as a SPICE netlist.
//!
//! Run with: `cargo run --release -p eva-core --example quickstart`

use eva_core::{Eva, EvaOptions, PretrainConfig};
use eva_dataset::{CircuitType, CorpusOptions};
use eva_eval::TopologyGenerator;
use eva_spice::{check_validity, elaborate, Sizing, Stimulus};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // 1. A small two-family corpus and a compact model. The demo leans
    // toward the memorization end of the data/augmentation tradeoff (few
    // permutations per topology) so a CPU-minute of training visibly
    // produces valid circuits; see EXPERIMENTS.md for the scaling story.
    let options = EvaOptions {
        corpus: CorpusOptions {
            target_size: 60,
            decorate: false,
            validate: true,
            families: Some(vec![CircuitType::Ldo, CircuitType::Bandgap]),
        },
        sequences_per_topology: 2,
        n_layers: 2,
        n_heads: 2,
        d_model: 64,
        max_seq_cap: None,
        pretrain: PretrainConfig {
            steps: 900,
            batch_size: 8,
            lr: 1e-3,
            warmup: 20,
        },
    };
    println!("Preparing corpus + model …");
    let mut eva = Eva::prepare(&options, &mut rng);
    println!(
        "  {} topologies → {} training sequences, vocab {}",
        eva.corpus().len(),
        eva.train_sequence_count(),
        eva.tokenizer().vocab_size()
    );

    // 2. Pretrain with the Eq. 1 language-modeling objective.
    println!("Pretraining {} steps …", options.pretrain.steps);
    let losses = eva.pretrain(&options.pretrain, &mut rng);
    println!(
        "  loss {:.2} → {:.2}",
        losses.first().copied().unwrap_or(f32::NAN),
        losses.last().copied().unwrap_or(f32::NAN)
    );

    // 3. Generate circuits from scratch, starting at the VSS token.
    let model = eva.model().clone();
    let mut generator = eva.generator("EVA (Pretrain)", &model, 0);
    generator.temperature = 0.7;
    generator.top_k = Some(8);
    let mut valid = Vec::new();
    for _ in 0..60 {
        if let Some(topology) = generator.generate(&mut rng) {
            if check_validity(&topology).is_valid() {
                valid.push(topology);
            }
        }
    }
    println!("Generated 60 samples → {} valid circuits", valid.len());

    // 4. Inspect the first valid one as a SPICE netlist.
    if let Some(topology) = valid.first() {
        println!(
            "\nFirst valid circuit ({} devices):",
            topology.device_count()
        );
        println!("{topology}");
        let sizing = Sizing::default_for(topology);
        match elaborate(topology, &sizing, &Stimulus::default()) {
            Ok(netlist) => println!("SPICE netlist:\n{}", netlist.to_spice()),
            Err(e) => println!("(elaboration failed: {e})"),
        }
    } else {
        println!("(no valid circuit this run — try more pretraining steps)");
    }
}
