//! Import an external SPICE netlist, solve it, and sweep it — the
//! interoperability path: EVA's oracle works on netlists from anywhere,
//! not only on its own generated topologies.
//!
//! Run with: `cargo run --release -p eva-core --example netlist_import`

use eva_spice::{ac_sweep, dc_operating_point, from_spice, log_sweep, Tech};

const NETLIST: &str = r"
* Two-stage RC-coupled NMOS amplifier, hand-written SPICE
.model mynmos nmos (level=1)
VDD vdd 0 DC 1.8
VIN in 0 DC 0.65 AC 1
M1 d1 in 0 0 mynmos W=20u L=1u
RD1 vdd d1 8k
CC d1 g2 100n
RB1 vdd g2 900k
RB2 g2 0 560k
M2 d2 g2 0 0 mynmos W=20u L=1u
RD2 vdd d2 8k
CL d2 0 1p
.end
";

fn main() {
    let netlist = from_spice(NETLIST).expect("netlist parses");
    println!(
        "Parsed {} elements over {} nodes.",
        netlist.elements().len(),
        netlist.node_count()
    );

    let tech = Tech::default();
    let op = dc_operating_point(&netlist, &tech).expect("bias point");
    println!("\nBias point:");
    for node in 1..netlist.node_count() {
        println!(
            "  v({:<4}) = {:+.4} V",
            netlist.node_name(node),
            op.voltage(node)
        );
    }

    let out = (0..netlist.node_count())
        .find(|&i| netlist.node_name(i) == "d2")
        .expect("output node");
    let freqs = log_sweep(10.0, 1e9, 9);
    let ac = ac_sweep(&netlist, &tech, &op, &freqs).expect("ac");
    println!("\nTwo-stage gain at d2:");
    for (f, m) in freqs.iter().zip(ac.magnitude(out)) {
        println!("  {f:>10.0} Hz  {:>8.2} dB", 20.0 * m.max(1e-12).log10());
    }
}
