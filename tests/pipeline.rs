//! Cross-crate integration tests: the full EVA pipeline at miniature scale
//! — corpus → serialization → tokenizer → pretraining → fine-tuning →
//! generation → evaluation — plus the substrate handshakes between crates.

use eva_core::{Eva, EvaOptions, PretrainConfig};
use eva_dataset::{CircuitType, Corpus, CorpusOptions};
use eva_eval::{evaluate_generation, TypeClassifier};
use eva_rl::{DpoConfig, PpoConfig, RankClass};
use eva_tokenizer::Tokenizer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_options() -> EvaOptions {
    EvaOptions {
        corpus: CorpusOptions {
            target_size: 50,
            decorate: false,
            validate: true,
            families: Some(vec![CircuitType::Ldo, CircuitType::Bandgap]),
        },
        sequences_per_topology: 2,
        n_layers: 2,
        n_heads: 2,
        d_model: 32,
        max_seq_cap: None,
        pretrain: PretrainConfig {
            steps: 60,
            batch_size: 4,
            lr: 1e-3,
            warmup: 5,
        },
    }
}

#[test]
fn corpus_sequences_tokenizer_round_trip() {
    // Every corpus entry must survive serialization → tokenization →
    // decoding with identical electrical structure.
    let corpus = Corpus::build(&CorpusOptions {
        target_size: 30,
        decorate: false,
        validate: true,
        families: Some(vec![CircuitType::Bandgap, CircuitType::ScSampler]),
    });
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let records = eva_dataset::expand(corpus.entries(), 2, &mut rng);
    let token_lists: Vec<Vec<String>> = records.iter().map(|r| r.sequence.tokens()).collect();
    let tokenizer = Tokenizer::fit(token_lists.iter().map(|v| v.as_slice()));
    for record in &records {
        let ids = tokenizer
            .encode_sequence(&record.sequence)
            .expect("in-vocabulary");
        let seq = tokenizer.to_sequence(&ids).expect("decodable");
        let topo = seq.to_topology().expect("valid walk");
        assert_eq!(topo.canonical_hash(), record.source_hash);
    }
}

#[test]
fn corpus_entries_are_simulatable_and_measurable() {
    // The dataset, validity oracle and measurement stack agree: every
    // validated corpus entry simulates, and relevant ones measure.
    let corpus = Corpus::build(&CorpusOptions {
        target_size: 20,
        decorate: false,
        validate: true,
        families: Some(vec![CircuitType::Ldo]),
    });
    let mut measured = 0;
    for e in corpus.entries() {
        assert!(
            eva_spice::check_validity(&e.topology).is_valid(),
            "{}",
            e.variant
        );
        if eva_dataset::measure_fom(&e.topology, CircuitType::Ldo).is_some() {
            measured += 1;
        }
    }
    assert!(
        measured * 2 >= corpus.len(),
        "most validated LDOs measure: {measured}/{}",
        corpus.len()
    );
}

#[test]
fn pretrain_then_generate_then_evaluate() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut eva = Eva::prepare(&tiny_options(), &mut rng);
    eva.pretrain(&tiny_options().pretrain, &mut rng);

    let classifier = TypeClassifier::fit(eva.reference_entries());
    let model = eva.model().clone();
    let generator = eva.generator("EVA (tiny)", &model, 0);
    let mut grng = ChaCha8Rng::seed_from_u64(4);
    let report = evaluate_generation(
        generator,
        12,
        eva.reference_entries(),
        &classifier,
        &mut grng,
    );
    assert_eq!(report.requested, 12);
    assert!(report.validity >= 0.0 && report.validity <= 1.0);
    // The report is structurally sound even if the tiny model is weak.
    if report.validity == 0.0 {
        assert_eq!(report.versatility, 0);
        assert!(report.mmd.is_none());
    }
}

#[test]
fn finetune_data_feeds_both_ppo_and_dpo() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut eva = Eva::prepare(&tiny_options(), &mut rng);
    eva.pretrain(
        &PretrainConfig {
            steps: 30,
            batch_size: 4,
            lr: 1e-3,
            warmup: 3,
        },
        &mut rng,
    );
    let data = eva.finetune_data(CircuitType::Ldo, 24, &mut rng);
    assert!(!data.samples.is_empty());
    assert!(data
        .samples
        .iter()
        .any(|s| s.class == RankClass::Irrelevant));

    // Reward model trains on the labels.
    let rm = eva.train_reward_model(&data, 1, &mut rng);

    // One PPO epoch runs end-to-end.
    let ppo = PpoConfig {
        epochs: 1,
        ppo_epochs: 1,
        batch_size: 2,
        minibatch_size: 2,
        max_len: 32,
        ..PpoConfig::default()
    };
    let (_policy, stats) = eva.finetune_ppo(&rm, ppo, &mut rng);
    assert_eq!(stats.len(), 1);
    assert!(stats[0].total_loss.is_finite());

    // DPO runs end-to-end on pairs from the same labels.
    let dpo = DpoConfig {
        epochs: 1,
        minibatch_size: 2,
        ..DpoConfig::default()
    };
    let (_policy, steps) = eva.finetune_dpo(&data, 6, dpo, &mut rng);
    assert!(!steps.is_empty());
    assert!(steps.iter().all(|s| s.loss.is_finite()));
}

#[test]
fn baselines_run_under_the_shared_protocol() {
    let corpus = Corpus::build(&CorpusOptions {
        target_size: 300,
        decorate: false,
        validate: false,
        families: None,
    });
    let classifier = TypeClassifier::fit(corpus.entries());
    let mut rng = ChaCha8Rng::seed_from_u64(6);

    let ac = eva_baselines::AnalogCoder::new(corpus.entries());
    let report = evaluate_generation(ac, 30, corpus.entries(), &classifier, &mut rng);
    // Retrieval methods: essentially nothing novel, so MMD reports 0.
    assert!(report.novelty < 0.15, "{report:?}");
    if report.novelty == 0.0 {
        assert_eq!(report.mmd, Some(0.0));
    }

    let gnn = eva_baselines::CktGnn::new();
    let report2 = evaluate_generation(gnn, 30, corpus.entries(), &classifier, &mut rng);
    assert!(report2.novelty > 0.5, "CktGNN discovers: {report2:?}");
}
